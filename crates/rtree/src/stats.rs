//! Access metering: node-access counters and the LRU buffer pool.
//!
//! The paper evaluates server cost as **NA** (node accesses — every node
//! the query touches) and **PA** (page accesses — NA filtered through an
//! LRU buffer sized as a fraction of the tree, 10% in the experiments).
//! The distinction matters: the headline result of Figs. 27/28/34/35 is
//! that the *extra* queries issued to build validity regions hit pages
//! that the initial query already faulted in, so their PA cost nearly
//! vanishes.

use crate::node::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative access counters. Read with [`crate::RTree::stats`], or
/// scoped as a delta with [`crate::RTree::with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Nodes read (every node visit, buffered or not).
    pub node_accesses: u64,
    /// Buffer misses. Equal to `node_accesses` when no buffer is
    /// attached.
    pub page_faults: u64,
}

impl Stats {
    /// Element-wise sum.
    pub fn merged(self, other: Stats) -> Stats {
        Stats {
            node_accesses: self.node_accesses + other.node_accesses,
            page_faults: self.page_faults + other.page_faults,
        }
    }

    /// Element-wise difference from an `earlier` snapshot of the same
    /// counters. Saturating: should the counters ever run backwards
    /// (a snapshot racing a counter reset), the delta clamps to zero
    /// instead of wrapping.
    pub fn delta_since(self, earlier: Stats) -> Stats {
        Stats {
            node_accesses: self.node_accesses.saturating_sub(earlier.node_accesses),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
        }
    }
}

/// Interior-mutable counter pair used by the tree (`&self` queries).
///
/// Atomics (relaxed) rather than `Cell` so a read-only tree can be
/// shared across threads (`Arc<RTree>` in `lbq-serve`); uncontended
/// relaxed increments cost the same as the former `Cell` bumps.
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    pub node_accesses: AtomicU64,
    pub page_faults: AtomicU64,
}

impl StatsCell {
    pub(crate) fn snapshot(&self) -> Stats {
        Stats {
            node_accesses: self.node_accesses.load(Ordering::Relaxed),
            page_faults: self.page_faults.load(Ordering::Relaxed),
        }
    }
}

/// A simulated LRU buffer pool over node pages.
///
/// Capacity is in pages. `touch` returns `true` on a *fault* (the page
/// was not resident). Recency is tracked with a logical clock and
/// eviction scans for the minimum stamp — O(capacity), which is
/// microseconds for the few hundred page buffers the experiments use,
/// and keeps the structure trivially correct.
#[derive(Debug)]
pub struct LruBuffer {
    capacity: usize,
    clock: u64,
    resident: HashMap<NodeId, u64>,
    faults: u64,
    hits: u64,
}

impl LruBuffer {
    /// Creates a buffer holding `capacity` pages (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity: capacity.max(1),
            clock: 0,
            resident: HashMap::new(),
            faults: 0,
            hits: 0,
        }
    }

    /// Registers an access to `page`; returns `true` if it faulted.
    pub fn touch(&mut self, page: NodeId) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(stamp) = self.resident.get_mut(&page) {
            *stamp = clock;
            self.hits += 1;
            return false;
        }
        self.faults += 1;
        if self.resident.len() >= self.capacity {
            // Evict the least recently used page.
            let victim = *self
                .resident
                .iter()
                .min_by_key(|(_, &stamp)| stamp)
                .map(|(id, _)| id)
                // lbq-check: allow(no-unwrap-core) — guarded by the full check
                .expect("buffer non-empty when full");
            self.resident.remove(&victim);
        }
        self.resident.insert(page, clock);
        true
    }

    /// Number of pages the buffer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Total faults since creation/clear.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Total hits since creation/clear.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Empties the buffer and zeroes its counters (a "cold restart").
    pub fn clear(&mut self) {
        self.resident.clear();
        self.faults = 0;
        self.hits = 0;
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_then_hits() {
        let mut b = LruBuffer::new(2);
        assert!(b.touch(1)); // fault
        assert!(b.touch(2)); // fault
        assert!(!b.touch(1)); // hit
        assert_eq!(b.faults(), 2);
        assert_eq!(b.hits(), 1);
        assert_eq!(b.resident_count(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut b = LruBuffer::new(2);
        b.touch(1);
        b.touch(2);
        b.touch(1); // 2 is now LRU
        assert!(b.touch(3)); // evicts 2
        assert!(!b.touch(1)); // 1 still resident
        assert!(b.touch(2)); // 2 was evicted → fault
    }

    #[test]
    fn capacity_one_thrashes() {
        let mut b = LruBuffer::new(1);
        for _ in 0..3 {
            assert!(b.touch(1) || b.resident_count() == 1);
            b.touch(2);
        }
        // Alternating 1,2 with capacity 1: every access after the first
        // to a different page faults.
        b.clear();
        assert!(b.touch(1));
        assert!(b.touch(2));
        assert!(b.touch(1));
        assert_eq!(b.faults(), 3);
    }

    #[test]
    fn clear_resets() {
        let mut b = LruBuffer::new(4);
        b.touch(1);
        b.touch(2);
        b.clear();
        assert_eq!(b.faults(), 0);
        assert_eq!(b.resident_count(), 0);
        assert!(b.touch(1)); // cold again
    }

    #[test]
    fn zero_capacity_clamped() {
        let b = LruBuffer::new(0);
        assert_eq!(b.capacity(), 1);
    }

    #[test]
    fn stats_merge() {
        let a = Stats {
            node_accesses: 3,
            page_faults: 1,
        };
        let b = Stats {
            node_accesses: 5,
            page_faults: 2,
        };
        assert_eq!(
            a.merged(b),
            Stats {
                node_accesses: 8,
                page_faults: 3
            }
        );
    }
}
