//! Small utilities shared by the tree algorithms.

use crate::node::NodeId;
use std::cmp::Ordering;

/// Arena index of a node id. `u32 → usize` is lossless on every
/// platform this crate supports (the arena itself could not be addressed
/// otherwise); routing every hop through this helper keeps the
/// `lossy-cast` lint meaningful at the remaining sites.
#[inline]
pub(crate) fn idx(id: NodeId) -> usize {
    // lbq-check: allow(lossy-cast) — u32 → usize is widening here
    id as usize
}

/// Node id for an arena slot index. The arena is bounded far below
/// `u32::MAX` nodes (≈4 G pages ≈ 16 TB at the paper's 4 KB page size),
/// so overflow means a bug, and the conversion is checked exactly once —
/// here.
#[inline]
pub(crate) fn node_id(i: usize) -> NodeId {
    // lbq-check: allow(no-unwrap-core) — arena cannot reach u32::MAX slots
    i.try_into().expect("node arena exceeded u32::MAX slots")
}

/// A totally ordered `f64` wrapper for priority queues.
///
/// All values produced by the tree (distances, influence times) are
/// finite or `+∞`; NaNs indicate a bug upstream, so construction asserts
/// against them in debug builds and `cmp` treats NaN as greatest to stay
/// total in release builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps `v`, debug-asserting it is not NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN entered a priority queue");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or_else(|| {
            // NaN sorts last; keeps the order total without panicking in
            // release builds.
            match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => unreachable!(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        let mut v = vec![OrdF64::new(3.0), OrdF64::new(-1.0), OrdF64::new(2.5)];
        v.sort();
        assert_eq!(
            v,
            vec![OrdF64::new(-1.0), OrdF64::new(2.5), OrdF64::new(3.0)]
        );
    }

    #[test]
    fn infinity_sorts_last() {
        let mut v = [OrdF64::new(f64::INFINITY), OrdF64::new(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64::new(0.0));
    }

    #[test]
    fn usable_in_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for x in [4.0, 1.0, 3.0] {
            h.push(Reverse(OrdF64::new(x)));
        }
        assert_eq!(h.pop().unwrap().0 .0, 1.0);
        assert_eq!(h.pop().unwrap().0 .0, 3.0);
        assert_eq!(h.pop().unwrap().0 .0, 4.0);
    }
}
