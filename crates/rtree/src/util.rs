//! Small utilities shared by the tree algorithms.

use crate::node::NodeId;
use std::cmp::Ordering;

/// Arena index of a node id. `u32 → usize` is lossless on every
/// platform this crate supports (the arena itself could not be addressed
/// otherwise); routing every hop through this helper keeps the
/// `lossy-cast` lint meaningful at the remaining sites.
#[inline]
pub(crate) fn idx(id: NodeId) -> usize {
    // lbq-check: allow(lossy-cast) — u32 → usize is widening here
    id as usize
}

/// Node id for an arena slot index. The arena is bounded far below
/// `u32::MAX` nodes (≈4 G pages ≈ 16 TB at the paper's 4 KB page size),
/// so overflow means a bug, and the conversion is checked exactly once —
/// here.
#[inline]
pub(crate) fn node_id(i: usize) -> NodeId {
    // lbq-check: allow(no-unwrap-core) — arena cannot reach u32::MAX slots
    i.try_into().expect("node arena exceeded u32::MAX slots")
}

/// Gated leaf-scan distance prepass over a column-mirrored leaf (see
/// `LeafSoa`): calls `f(j, d2)` for every item index `j` with squared
/// distance `d2 <= gate` from `q`, in item order.
///
/// The distances are computed a cache-width chunk at a time over the
/// branch-free column slices — a loop the compiler auto-vectorizes.
/// The arithmetic is `(xs[j] − q.x)² + (ys[j] − q.y)²`, which is
/// bit-identical to `q.dist_sq(item.point)`: IEEE negation is exact, so
/// `(a − b)² == (b − a)²` bit-for-bit, and the mul/add association
/// matches `Point::dist_sq`.
///
/// The prepass folds the gate comparison into a 64-bit survivor mask
/// (one chunk, one word), so the drain visits only the passing items
/// via `trailing_zeros` instead of branching once per item — the win
/// when most items fail the gate, which is the profile of both the kNN
/// candidate gate and the TPNN reach gate (~1 in 9 items pass).
///
/// Callers must pass a gate that is *loosest at scan entry*: both users
/// only ever tighten their bound mid-scan (a kNN candidate set's worst
/// distance and a TPNN horizon shrink monotonically), and they re-check
/// the current bound per item, so pre-filtering with the entry value
/// drops only items every later bound also rejects — bit-identity with
/// the unmasked scan follows.
#[inline]
pub(crate) fn for_each_d2_within(
    xs: &[f64],
    ys: &[f64],
    q: lbq_geom::Point,
    gate: f64,
    mut f: impl FnMut(usize, f64),
) {
    const CHUNK: usize = 64;
    let mut d2 = [0.0f64; CHUNK];
    let n = xs.len();
    let mut base = 0usize;
    while base < n {
        let m = CHUNK.min(n - base);
        let mut mask = 0u64;
        for j in 0..m {
            let i = base + j;
            let (vx, vy) = (xs[i] - q.x, ys[i] - q.y);
            let d = vx * vx + vy * vy;
            d2[j] = d;
            mask |= u64::from(d <= gate) << j;
        }
        while mask != 0 {
            // lbq-check: allow(lossy-cast) — trailing_zeros of a u64 is < 64
            let j = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            f(base + j, d2[j]);
        }
        base += m;
    }
}

/// Child-bound prepass over an internal node's column-mirrored child
/// MBRs: calls `f(j, mindist²)` for every child index `j`, in child
/// order. Same chunked shape as [`for_each_d2_within`] (ungated — child
/// bounds feed a priority queue, not a survivor filter); the arithmetic is the
/// `(lo − p).max(0).max(p − hi)` clamp chain of `Rect::mindist_sq`,
/// op-for-op, so the values are bit-identical to the row layout.
#[inline]
pub(crate) fn for_each_mindist_sq(
    cols: (&[f64], &[f64], &[f64], &[f64]),
    q: lbq_geom::Point,
    mut f: impl FnMut(usize, f64),
) {
    let (xmin, ymin, xmax, ymax) = cols;
    const CHUNK: usize = 64;
    let mut md = [0.0f64; CHUNK];
    let n = xmin.len();
    let mut base = 0usize;
    while base < n {
        let m = CHUNK.min(n - base);
        for (j, d) in md[..m].iter_mut().enumerate() {
            let i = base + j;
            let dx = (xmin[i] - q.x).max(0.0).max(q.x - xmax[i]);
            let dy = (ymin[i] - q.y).max(0.0).max(q.y - ymax[i]);
            *d = dx * dx + dy * dy;
        }
        for (j, &d) in md[..m].iter().enumerate() {
            f(base + j, d);
        }
        base += m;
    }
}

/// Rect-to-rect variant of [`for_each_mindist_sq`]: `f(j, mindist²)`
/// between each column-mirrored child MBR and the query rectangle `g`,
/// matching `Rect::mindist_sq_rect` bit-for-bit.
#[inline]
pub(crate) fn for_each_mindist_sq_rect(
    cols: (&[f64], &[f64], &[f64], &[f64]),
    g: &lbq_geom::Rect,
    mut f: impl FnMut(usize, f64),
) {
    let (xmin, ymin, xmax, ymax) = cols;
    const CHUNK: usize = 64;
    let mut md = [0.0f64; CHUNK];
    let n = xmin.len();
    let mut base = 0usize;
    while base < n {
        let m = CHUNK.min(n - base);
        for (j, d) in md[..m].iter_mut().enumerate() {
            let i = base + j;
            let dx = (xmin[i] - g.xmax).max(0.0).max(g.xmin - xmax[i]);
            let dy = (ymin[i] - g.ymax).max(0.0).max(g.ymin - ymax[i]);
            *d = dx * dx + dy * dy;
        }
        for (j, &d) in md[..m].iter().enumerate() {
            f(base + j, d);
        }
        base += m;
    }
}

/// A totally ordered `f64` wrapper for priority queues.
///
/// All values produced by the tree (distances, influence times) are
/// finite or `+∞`; NaNs indicate a bug upstream, so construction asserts
/// against them in debug builds and `cmp` treats NaN as greatest to stay
/// total in release builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps `v`, debug-asserting it is not NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "NaN entered a priority queue");
        OrdF64(v)
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or_else(|| {
            // NaN sorts last; keeps the order total without panicking in
            // release builds.
            match (self.0.is_nan(), other.0.is_nan()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                (false, false) => unreachable!(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64() {
        let mut v = vec![OrdF64::new(3.0), OrdF64::new(-1.0), OrdF64::new(2.5)];
        v.sort();
        assert_eq!(
            v,
            vec![OrdF64::new(-1.0), OrdF64::new(2.5), OrdF64::new(3.0)]
        );
    }

    #[test]
    fn infinity_sorts_last() {
        let mut v = [OrdF64::new(f64::INFINITY), OrdF64::new(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64::new(0.0));
    }

    #[test]
    fn usable_in_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        for x in [4.0, 1.0, 3.0] {
            h.push(Reverse(OrdF64::new(x)));
        }
        assert_eq!(h.pop().unwrap().0 .0, 1.0);
        assert_eq!(h.pop().unwrap().0 .0, 3.0);
        assert_eq!(h.pop().unwrap().0 .0, 4.0);
    }
}
