//! R\*-tree insertion (ChooseSubtree, forced reinsertion, the R\* split)
//! and deletion with tree condensing `[BKSS90]`.

use crate::node::{Entry, Item, Node, NodeId};
use crate::tree::RTree;
use crate::util::idx;
use lbq_geom::{Point, Rect};

/// Maximum tree height supported by the per-level reinsertion flags.
/// With a fan-out ≥ 4 this allows ≥ 4³² ≈ 10¹⁹ items.
const MAX_LEVELS: usize = 32;

/// Result of a recursive insertion step, bubbled toward the root.
enum Propagate {
    /// Nothing further to do; ancestors only refresh MBRs.
    Done,
    /// The child split; the new sibling entry must be added to the
    /// parent (or become part of a new root).
    Split(Entry),
    /// Forced reinsertion: these entries were evicted from a node at
    /// `level` and must be re-inserted from the top.
    Reinsert(Vec<Entry>, u32),
}

impl RTree {
    /// Inserts a data point. Amortized O(log n) node touches;
    /// construction is unmetered (the paper measures query cost on
    /// pre-built trees).
    pub fn insert(&mut self, item: Item) {
        assert!(item.point.is_finite(), "cannot index a non-finite point");
        let mut reinserted = [false; MAX_LEVELS];
        self.insert_from_root(Entry::Leaf(item), 0, &mut reinserted);
        self.len += 1;
        // lbq-check: allow(lossy-cast) — MAX_LEVELS is the constant 32
        debug_assert!(self.nodes[idx(self.root)].level < MAX_LEVELS as u32);
        // Full validation on every insert would make debug test runs
        // O(n²); amortize by validating at powers of two.
        if self.len.is_power_of_two() {
            self.debug_validate();
        }
    }

    /// Inserts `entry` into some node at `target_level`, handling root
    /// splits and re-insertion cascades.
    fn insert_from_root(
        &mut self,
        entry: Entry,
        target_level: u32,
        reinserted: &mut [bool; MAX_LEVELS],
    ) {
        match self.insert_rec(self.root, entry, target_level, reinserted) {
            Propagate::Done => {}
            Propagate::Split(sibling) => self.grow_root(sibling),
            Propagate::Reinsert(entries, level) => {
                for e in entries {
                    self.insert_from_root(e, level, reinserted);
                }
            }
        }
    }

    /// Adds a level: the old root and `sibling` become children of a new
    /// root.
    fn grow_root(&mut self, sibling: Entry) {
        let old_root = self.root;
        let old_mbr = self
            .node(old_root)
            .mbr()
            // lbq-check: allow(no-unwrap-core) — a node only splits on overflow
            .expect("split root cannot be empty");
        let level = self.node(old_root).level + 1;
        let mut root = Node::new_internal(level);
        root.push_entry(Entry::Child {
            mbr: old_mbr,
            node: old_root,
        });
        root.push_entry(sibling);
        self.root = self.alloc(root);
    }

    fn insert_rec(
        &mut self,
        node_id: NodeId,
        entry: Entry,
        target_level: u32,
        reinserted: &mut [bool; MAX_LEVELS],
    ) -> Propagate {
        let node_level = self.node(node_id).level;
        if node_level == target_level {
            self.node_mut(node_id).push_entry(entry);
        } else {
            let idx = self.choose_subtree(node_id, &entry.mbr());
            let child = self.node(node_id).children[idx];
            let result = self.insert_rec(child, entry, target_level, reinserted);
            // The child changed shape whatever happened; refresh its MBR.
            let child_mbr = self
                .node(child)
                .mbr()
                // lbq-check: allow(no-unwrap-core) — insertion only adds entries
                .expect("child emptied during insert");
            self.node_mut(node_id).mbrs[idx] = child_mbr;
            match result {
                Propagate::Done => {}
                Propagate::Reinsert(..) => return result,
                Propagate::Split(sibling) => self.node_mut(node_id).push_entry(sibling),
            }
        }

        if self.node(node_id).len() <= self.config.max_entries {
            return Propagate::Done;
        }
        // Overflow treatment (R* OT1): the first overflow at each level
        // of one logical insertion triggers forced reinsertion; later
        // overflows (and the root) split.
        // lbq-check: allow(lossy-cast) — u32 → usize is widening here
        let lvl = node_level as usize;
        if node_id != self.root && self.config.reinsert_count > 0 && !reinserted[lvl] {
            reinserted[lvl] = true;
            let evicted = self.forced_reinsert(node_id);
            return Propagate::Reinsert(evicted, node_level);
        }
        Propagate::Split(self.split_node(node_id))
    }

    /// R\* ChooseSubtree. At the level just above the leaves the child
    /// minimizing *overlap* enlargement wins (evaluated on the
    /// `CANDIDATES` children of least area enlargement, as in the
    /// original paper); higher up, least *area* enlargement wins. Ties
    /// break by smaller area, then by index for determinism.
    fn choose_subtree(&self, node_id: NodeId, mbr: &Rect) -> usize {
        const CANDIDATES: usize = 32;
        let node = self.node(node_id);
        debug_assert!(!node.is_leaf());
        let scored = |i: usize| {
            let r = node.mbrs[i];
            let area = r.area();
            let enlarged = r.union(mbr).area() - area;
            (enlarged, area)
        };
        if node.level > 1 {
            return (0..node.children.len())
                .min_by(|&a, &b| {
                    let (ea, aa) = scored(a);
                    let (eb, ab) = scored(b);
                    ea.total_cmp(&eb).then(aa.total_cmp(&ab))
                })
                // lbq-check: allow(no-unwrap-core) — internal nodes are non-empty
                .expect("internal node has entries");
        }
        // Children are leaves: rank by area enlargement, evaluate overlap
        // enlargement on the best few.
        let mut order: Vec<usize> = (0..node.children.len()).collect();
        order.sort_by(|&a, &b| {
            let (ea, aa) = scored(a);
            let (eb, ab) = scored(b);
            ea.total_cmp(&eb).then(aa.total_cmp(&ab))
        });
        order.truncate(CANDIDATES);
        let overlap_of = |i: usize, shape: &Rect| -> f64 {
            node.mbrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, r)| r.overlap_area(shape))
                .sum()
        };
        *order
            .iter()
            .min_by(|&&a, &&b| {
                let ra = node.mbrs[a];
                let rb = node.mbrs[b];
                let da = overlap_of(a, &ra.union(mbr)) - overlap_of(a, &ra);
                let db = overlap_of(b, &rb.union(mbr)) - overlap_of(b, &rb);
                let (ea, aa) = scored(a);
                let (eb, ab) = scored(b);
                da.total_cmp(&db)
                    .then(ea.total_cmp(&eb))
                    .then(aa.total_cmp(&ab))
            })
            // lbq-check: allow(no-unwrap-core) — order starts with ≥ 1 index
            .expect("candidate list non-empty")
    }

    /// Evicts the `reinsert_count` entries whose centers are farthest
    /// from the node's MBR center, returning them closest-first (the R\*
    /// "close reinsert" variant, which the original paper found best).
    fn forced_reinsert(&mut self, node_id: NodeId) -> Vec<Entry> {
        let p = self.config.reinsert_count;
        let center = self
            .node(node_id)
            .mbr()
            // lbq-check: allow(no-unwrap-core) — reinsertion implies overflow
            .expect("overflowing node is non-empty")
            .center();
        let node = self.node_mut(node_id);
        let mut entries = node.take_entries();
        entries.sort_by(|a, b| {
            let da = a.mbr().center().dist_sq(center);
            let db = b.mbr().center().dist_sq(center);
            da.total_cmp(&db)
        });
        let keep = entries.len() - p;
        // Tail = farthest entries; reverse so the closest evictee is
        // re-inserted first.
        let mut evicted = entries.split_off(keep);
        evicted.reverse();
        node.set_entries(entries);
        evicted
    }

    /// The R\* split. Returns the parent entry for the newly allocated
    /// sibling; `node_id` keeps the first group.
    fn split_node(&mut self, node_id: NodeId) -> Entry {
        let level = self.node(node_id).level;
        let mut entries = self.node_mut(node_id).take_entries();
        let m = self.config.min_entries;
        let total = entries.len();
        debug_assert!(total == self.config.max_entries + 1);

        // ChooseSplitAxis: the axis (and sort key: lower vs upper
        // coordinate) minimizing the summed margins of all candidate
        // distributions.
        let mut best: Option<(f64, usize, bool)> = None; // (margin, axis, by_upper)
        for axis in 0..2 {
            for by_upper in [false, true] {
                sort_entries(&mut entries, axis, by_upper);
                let (lo_bbs, hi_bbs) = prefix_suffix_bbs(&entries);
                let mut margin_sum = 0.0;
                for k in m..=(total - m) {
                    margin_sum += lo_bbs[k - 1].margin() + hi_bbs[k].margin();
                }
                if best.is_none_or(|(bm, _, _)| margin_sum < bm) {
                    best = Some((margin_sum, axis, by_upper));
                }
            }
        }
        // lbq-check: allow(no-unwrap-core) — the loop above always sets `best`
        let (_, axis, by_upper) = best.expect("at least one axis evaluated");
        sort_entries(&mut entries, axis, by_upper);

        // ChooseSplitIndex: among distributions on the chosen axis, pick
        // minimal overlap, ties by minimal total area.
        let (lo_bbs, hi_bbs) = prefix_suffix_bbs(&entries);
        let mut split_at = m;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for k in m..=(total - m) {
            let a = lo_bbs[k - 1];
            let b = hi_bbs[k];
            let key = (a.overlap_area(&b), a.area() + b.area());
            if key < best_key {
                best_key = key;
                split_at = k;
            }
        }

        let second = entries.split_off(split_at);
        self.node_mut(node_id).set_entries(entries);
        let sibling = Node::from_entries(level, second);
        // lbq-check: allow(no-unwrap-core) — both split groups hold ≥ min entries
        let mbr = sibling.mbr().expect("split group non-empty");
        // `alloc` needs &mut self; build the node first.
        let node = self.alloc(sibling);
        Entry::Child { mbr, node }
    }

    /// Removes the item with the given point and id. Returns `true` when
    /// found. Under-full nodes are dissolved and their entries
    /// re-inserted (the classic CondenseTree), and a single-child root is
    /// collapsed.
    pub fn delete(&mut self, point: Point, id: u64) -> bool {
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        let found = self.delete_rec(self.root, point, id, &mut orphans);
        if !found {
            debug_assert!(orphans.is_empty());
            return false;
        }
        self.len -= 1;
        // Collapse a root that lost all but one child (repeatedly, in
        // case orphan reinsertion is still pending below).
        loop {
            let root = self.node(self.root);
            if !root.is_leaf() && root.len() == 1 {
                let child = root.children[0];
                let old = self.root;
                self.root = child;
                self.dealloc(old);
            } else {
                break;
            }
        }
        let mut reinserted = [false; MAX_LEVELS];
        for (entry, level) in orphans {
            self.insert_from_root(entry, level, &mut reinserted);
        }
        self.debug_validate();
        true
    }

    /// Depth-first search for the item; returns whether it was removed
    /// below `node_id`. Dissolving children are appended to `orphans`.
    fn delete_rec(
        &mut self,
        node_id: NodeId,
        point: Point,
        id: u64,
        orphans: &mut Vec<(Entry, u32)>,
    ) -> bool {
        if self.node(node_id).is_leaf() {
            let node = self.node_mut(node_id);
            let before = node.items.len();
            node.items
                .retain(|item| !(item.id == id && item.point == point));
            return node.items.len() < before;
        }
        let candidates: Vec<(usize, NodeId)> = {
            let node = self.node(node_id);
            node.mbrs
                .iter()
                .zip(&node.children)
                .enumerate()
                .filter(|(_, (mbr, _))| mbr.contains(point))
                .map(|(i, (_, &child))| (i, child))
                .collect()
        };
        for (idx, child) in candidates {
            if !self.delete_rec(child, point, id, orphans) {
                continue;
            }
            let child_len = self.node(child).len();
            if child_len < self.config.min_entries {
                // Dissolve the child: detach it and queue its entries.
                let level = self.node(child).level;
                let entries = self.node_mut(child).take_entries();
                orphans.extend(entries.into_iter().map(|e| (e, level)));
                self.node_mut(node_id).remove_child(idx);
                self.dealloc(child);
            } else if let Some(mbr) = self.node(child).mbr() {
                self.node_mut(node_id).mbrs[idx] = mbr;
            }
            return true;
        }
        false
    }
}

/// Sorts entries by MBR lower (or upper) coordinate on `axis`, tie-broken
/// by the other bound for determinism.
fn sort_entries(entries: &mut [Entry], axis: usize, by_upper: bool) {
    entries.sort_by(|a, b| {
        let (ra, rb) = (a.mbr(), b.mbr());
        let key = |r: &Rect| -> (f64, f64) {
            match (axis, by_upper) {
                (0, false) => (r.xmin, r.xmax),
                (0, true) => (r.xmax, r.xmin),
                (1, false) => (r.ymin, r.ymax),
                (_, _) => (r.ymax, r.ymin),
            }
        };
        let (a1, a2) = key(&ra);
        let (b1, b2) = key(&rb);
        a1.total_cmp(&b1).then(a2.total_cmp(&b2))
    });
}

/// For a sorted entry slice, returns `(prefix, suffix)` where
/// `prefix[i]` bounds entries `0..=i` and `suffix[i]` bounds `i..`.
fn prefix_suffix_bbs(entries: &[Entry]) -> (Vec<Rect>, Vec<Rect>) {
    let n = entries.len();
    let mut prefix = Vec::with_capacity(n);
    let mut bb = entries[0].mbr();
    prefix.push(bb);
    for e in &entries[1..] {
        bb.expand_to_rect(&e.mbr());
        prefix.push(bb);
    }
    let mut suffix = vec![entries[n - 1].mbr(); n];
    for i in (0..n - 1).rev() {
        let mut bb = entries[i].mbr();
        bb.expand_to_rect(&suffix[i + 1]);
        suffix[i] = bb;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use crate::{Item, RTree, RTreeConfig};
    use lbq_geom::Point;

    /// Deterministic pseudo-random point stream (splitmix64-based).
    fn points(n: usize, seed: u64) -> Vec<Item> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect()
    }

    #[test]
    fn insert_preserves_invariants() {
        let mut t = RTree::new(RTreeConfig::tiny());
        for (i, item) in points(500, 42).into_iter().enumerate() {
            t.insert(item);
            if i % 50 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 500);
        assert!(t.height() >= 3, "tiny fan-out must force a deep tree");
        assert_eq!(t.iter_items().count(), 500);
    }

    #[test]
    fn duplicate_points_coexist() {
        let mut t = RTree::new(RTreeConfig::tiny());
        let p = Point::new(0.5, 0.5);
        for i in 0..40 {
            t.insert(Item::new(p, i));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 40);
    }

    #[test]
    fn delete_roundtrip() {
        let mut t = RTree::new(RTreeConfig::tiny());
        let items = points(300, 7);
        for &item in &items {
            t.insert(item);
        }
        // Delete every other item.
        for item in items.iter().step_by(2) {
            assert!(t.delete(item.point, item.id), "must find {item:?}");
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 150);
        // Remaining items all retrievable.
        let left: std::collections::HashSet<u64> = t.iter_items().map(|i| i.id).collect();
        for (i, item) in items.iter().enumerate() {
            assert_eq!(left.contains(&item.id), i % 2 == 1);
        }
        // Deleting a missing item is a no-op.
        assert!(!t.delete(items[0].point, items[0].id));
        assert_eq!(t.len(), 150);
    }

    #[test]
    fn delete_everything_collapses_tree() {
        let mut t = RTree::new(RTreeConfig::tiny());
        let items = points(120, 99);
        for &item in &items {
            t.insert(item);
        }
        for &item in &items {
            assert!(t.delete(item.point, item.id));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
        // The tree remains usable.
        t.insert(Item::new(Point::new(0.1, 0.2), 1000));
        assert_eq!(t.len(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn no_reinsert_config_still_valid() {
        let mut cfg = RTreeConfig::tiny();
        cfg.reinsert_count = 0;
        let mut t = RTree::new(cfg);
        for item in points(400, 5) {
            t.insert(item);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn clustered_duplicates_and_collinear_points() {
        // Pathological inputs: all on a line, many duplicates.
        let mut t = RTree::new(RTreeConfig::tiny());
        let mut id = 0;
        for i in 0..60 {
            t.insert(Item::new(Point::new(i as f64, 0.0), id));
            id += 1;
            t.insert(Item::new(Point::new((i / 10) as f64, 0.0), id));
            id += 1;
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 120);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let mut t = RTree::new(RTreeConfig::tiny());
        t.insert(Item::new(Point::new(f64::NAN, 0.0), 0));
    }
}
