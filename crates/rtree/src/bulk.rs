//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The experiments build trees over up to a million points; STR packs
//! them in O(n log n) instead of a million R\* inserts. The pack fill is
//! kept below capacity (70% by default) so the resulting node count —
//! and therefore the buffer-pool geometry and NA/PA figures — matches a
//! tree grown by insertion, which is what the paper used.

use crate::node::{Entry, Item, Node};
use crate::tree::RTree;
use crate::RTreeConfig;
use lbq_geom::Point;

/// Default pack fill: fraction of `max_entries` used per node.
pub const DEFAULT_BULK_FILL: f64 = 0.7;

impl RTree {
    /// Builds a tree from `items` with the default fill factor.
    pub fn bulk_load(items: Vec<Item>, config: RTreeConfig) -> RTree {
        Self::bulk_load_with_fill(items, config, DEFAULT_BULK_FILL)
    }

    /// Builds a tree from `items`, packing each node to
    /// `fill × max_entries` (clamped to `[min_entries, max_entries]`).
    pub fn bulk_load_with_fill(items: Vec<Item>, config: RTreeConfig, fill: f64) -> RTree {
        for item in &items {
            assert!(item.point.is_finite(), "cannot index a non-finite point");
        }
        let mut tree = RTree::new(config);
        if items.is_empty() {
            return tree;
        }
        // lbq-check: allow(lossy-cast) — fill ∈ (0, 1], product is small
        let node_cap = ((config.max_entries as f64 * fill).round() as usize)
            .clamp(config.min_entries.max(2), config.max_entries);
        tree.len = items.len();
        // The empty bootstrap root is replaced by the packed tree;
        // recycle its page so node_count stays exact.
        tree.dealloc(0);

        // Level 0: tile the points into leaves.
        let leaf_entries: Vec<Entry> = items.into_iter().map(Entry::Leaf).collect();
        let mut level_nodes = pack_level(&mut tree, leaf_entries, 0, node_cap);

        // Upper levels: tile the child entries until one node remains.
        let mut level = 1;
        while level_nodes.len() > 1 {
            level_nodes = pack_level(&mut tree, level_nodes, level, node_cap);
            level += 1;
        }
        tree.root = level_nodes[0].child();
        tree.debug_validate();
        tree
    }
}

/// Packs `entries` into nodes of `cap` entries at `level` using STR
/// tiling, returning the parent entries for the new nodes.
fn pack_level(tree: &mut RTree, mut entries: Vec<Entry>, level: u32, cap: usize) -> Vec<Entry> {
    let n = entries.len();
    if n <= cap {
        // Single node (possibly the root; roots may be under-filled).
        let node = Node::from_entries(level, entries);
        // lbq-check: allow(no-unwrap-core) — pack_level is never called empty
        let mbr = node.mbr().expect("non-empty pack");
        let id = tree.alloc(node);
        return vec![Entry::Child { mbr, node: id }];
    }
    let node_count = n.div_ceil(cap);
    // lbq-check: allow(lossy-cast) — √node_count is small and non-negative
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let slice_size = slice_count.max(1) * cap;

    let center = |e: &Entry| -> Point { e.mbr().center() };
    entries.sort_by(|a, b| center(a).x.total_cmp(&center(b).x));

    let min = tree.config.min_entries;
    let max = tree.config.max_entries;
    let mut out = Vec::with_capacity(node_count);
    let mut rest = entries;
    while !rest.is_empty() {
        // A slice must keep at least `min` entries behind it (or take
        // everything) so every slice can be chunked legally.
        let mut take = slice_size.min(rest.len());
        if rest.len() - take > 0 && rest.len() - take < min {
            take = rest.len();
        }
        let mut slice: Vec<Entry> = rest.drain(..take).collect();
        slice.sort_by(|a, b| center(a).y.total_cmp(&center(b).y));
        let mut remaining = slice;
        while !remaining.is_empty() {
            let take = chunk_size(remaining.len(), cap, min, max);
            let group: Vec<Entry> = remaining.drain(..take).collect();
            let node = Node::from_entries(level, group);
            // lbq-check: allow(no-unwrap-core) — chunk_size returns ≥ 1
            let mbr = node.mbr().expect("non-empty group");
            let id = tree.alloc(node);
            out.push(Entry::Child { mbr, node: id });
        }
    }
    out
}

/// Next chunk size, targeting `target` per node but flexing within the
/// legal `[min, max]` range so no trailing group is ever starved.
///
/// Requires `max + 1 ≥ 2·min` (guaranteed by the 40% R\* fill rule).
fn chunk_size(remaining: usize, target: usize, min: usize, max: usize) -> usize {
    if remaining <= target {
        remaining
    } else if remaining - target >= min {
        target
    } else if remaining <= max {
        // The tail would starve; absorb everything into one legal node.
        remaining
    } else {
        // Leave exactly `min` behind; the current chunk stays ≤ max
        // because remaining < target + min ≤ max + min.
        remaining - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Item, RTree, RTreeConfig};
    use lbq_geom::{Point, Rect};

    fn grid_items(side: usize) -> Vec<Item> {
        let mut v = Vec::new();
        for i in 0..side {
            for j in 0..side {
                v.push(Item::new(
                    Point::new(i as f64, j as f64),
                    (i * side + j) as u64,
                ));
            }
        }
        v
    }

    #[test]
    fn empty_and_tiny_loads() {
        let t = RTree::bulk_load(vec![], RTreeConfig::tiny());
        assert!(t.is_empty());
        t.check_invariants().unwrap();

        let t = RTree::bulk_load(
            vec![Item::new(Point::new(1.0, 2.0), 9)],
            RTreeConfig::tiny(),
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_preserves_all_items_and_invariants() {
        let items = grid_items(40); // 1600 points
        let t = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 1600);
        let ids: std::collections::HashSet<u64> = t.iter_items().map(|i| i.id).collect();
        assert_eq!(ids.len(), 1600);
        assert!(t.height() >= 3);
    }

    #[test]
    fn bulk_tree_queryable_and_mutable() {
        let items = grid_items(20);
        let mut t = RTree::bulk_load(items, RTreeConfig::tiny());
        // Query.
        let hits = t.window(&Rect::new(0.0, 0.0, 4.0, 4.0));
        assert_eq!(hits.len(), 25);
        // Mutate after bulk load.
        t.insert(Item::new(Point::new(100.0, 100.0), 10_000));
        assert!(t.delete(Point::new(0.0, 0.0), 0));
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 400);
    }

    #[test]
    fn fill_factor_controls_node_count() {
        let items = grid_items(60); // 3600 points
        let loose = RTree::bulk_load_with_fill(items.clone(), RTreeConfig::tiny(), 0.5);
        let dense = RTree::bulk_load_with_fill(items, RTreeConfig::tiny(), 1.0);
        loose.check_invariants().unwrap();
        dense.check_invariants().unwrap();
        assert!(loose.node_count() > dense.node_count());
    }

    #[test]
    fn chunk_never_starves_tail() {
        // target 6, min 3, max 8.
        assert_eq!(chunk_size(5, 6, 3, 8), 5); // fits in one
        assert_eq!(chunk_size(12, 6, 3, 8), 6); // clean target chunk
        assert_eq!(chunk_size(8, 6, 3, 8), 8); // tail would starve → absorb
        assert_eq!(chunk_size(7, 6, 3, 8), 7); // same
                                               // target 4, min 3, max 8: remaining 5 must be absorbed (3+2 illegal).
        assert_eq!(chunk_size(5, 4, 3, 8), 5);
        // Too big to absorb: leave exactly min behind.
        assert_eq!(chunk_size(10, 8, 3, 8), 7);
        // Exhaustive feasibility: chunking any size ≥ min terminates with
        // all chunks in [min, max].
        for target in 3..=8usize {
            for mut n in 3..200usize {
                loop {
                    let c = chunk_size(n, target, 3, 8);
                    assert!((3..=8).contains(&c), "n={n} target={target} c={c}");
                    n -= c;
                    if n == 0 {
                        break;
                    }
                    assert!(n >= 3, "starved tail {n} for target {target}");
                }
            }
        }
    }

    #[test]
    fn bulk_matches_insert_contents() {
        let items = grid_items(15);
        let bulk = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let mut incr = RTree::new(RTreeConfig::tiny());
        for &i in &items {
            incr.insert(i);
        }
        let a: std::collections::BTreeSet<u64> = bulk.iter_items().map(|i| i.id).collect();
        let b: std::collections::BTreeSet<u64> = incr.iter_items().map(|i| i.id).collect();
        assert_eq!(a, b);
    }
}
