//! Hilbert space-filling curve keys.
//!
//! The locality pipeline (DESIGN.md §12) orders three things by the
//! same curve: leaf items inside a [`crate::RTree::repack`]ed arena,
//! sibling subtrees inside internal nodes, and the query stream of a
//! served batch (`lbq-serve` sorts each batch by the Hilbert key of the
//! query focus before chunking it into locality tiles). The Hilbert
//! curve is the standard choice because consecutive keys are always
//! **grid neighbors** (unlike the Z-order curve, which jumps), so
//! key-adjacent queries touch overlapping R-tree subtrees and
//! key-adjacent leaves hold spatially adjacent points.
//!
//! The implementation is the classical iterative rotate-and-flip
//! mapping on a `2^order × 2^order` grid (Hamilton's compact form):
//! [`xy2d`] folds a cell into its curve position, [`d2xy`] unfolds it.
//! Both are exact inverses for every `order ≤ 31`.

use lbq_geom::{Point, Rect};

/// Grid order used for continuous-coordinate keys: the universe is
/// quantized to a `2^16 × 2^16` lattice, giving 32-bit keys with
/// sub-page spatial resolution for every dataset the workloads use.
pub const KEY_ORDER: u32 = 16;

/// Curve position of grid cell `(x, y)` on a `2^order` grid.
///
/// `x` and `y` must be `< 2^order`. The result is `< 4^order`.
pub fn xy2d(order: u32, mut x: u32, mut y: u32) -> u64 {
    debug_assert!(order >= 1 && order <= 31);
    debug_assert!(x < (1u32 << order) && y < (1u32 << order));
    let n: u32 = 1 << order;
    let mut d: u64 = 0;
    let mut s: u32 = n / 2;
    while s > 0 {
        let rx = u32::from(x & s != 0);
        let ry = u32::from(y & s != 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant so the sub-curve enters/exits correctly.
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Grid cell `(x, y)` of curve position `d` on a `2^order` grid —
/// the exact inverse of [`xy2d`].
pub fn d2xy(order: u32, d: u64) -> (u32, u32) {
    debug_assert!(order >= 1 && order <= 31);
    debug_assert!(d < (1u64 << (2 * order)));
    let (mut x, mut y) = (0u32, 0u32);
    let mut t = d;
    let mut s: u32 = 1;
    while s < (1 << order) {
        // lbq-check: allow(lossy-cast) — masked to the low bit right here
        let rx = 1 & (t / 2) as u32;
        // lbq-check: allow(lossy-cast) — masked to the low bit right here
        let ry = 1 & ((t as u32) ^ rx);
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// Hilbert key of a continuous point inside `universe`, on the
/// [`KEY_ORDER`] lattice. Points outside the universe clamp to its
/// boundary; a degenerate (zero-extent) universe maps everything to
/// cell 0 on that axis. Equal points always produce equal keys, so a
/// **stable** sort by this key preserves the input order of duplicates.
pub fn hilbert_key(p: Point, universe: &Rect) -> u64 {
    let side = (1u32 << KEY_ORDER) - 1;
    let quant = |v: f64, lo: f64, extent: f64| -> u32 {
        if extent <= 0.0 || !v.is_finite() {
            return 0;
        }
        let t = ((v - lo) / extent).clamp(0.0, 1.0);
        // lbq-check: allow(lossy-cast) — t ∈ [0, 1], product ≤ side
        (t * f64::from(side)).round() as u32
    };
    let x = quant(p.x, universe.xmin, universe.width());
    let y = quant(p.y, universe.ymin, universe.height());
    xy2d(KEY_ORDER, x, y)
}

/// The universe footprint of a Hilbert *tile*: the set of points whose
/// [`hilbert_key`] has `tile` as its top `tile_bits` bits.
///
/// The iterative mapping transforms the high bits of a cell coordinate
/// independently of the low bits (the quadrant flips complement and
/// swap whole bit prefixes), so the top `tile_bits` bits of a
/// [`KEY_ORDER`] key equal `xy2d(tile_bits / 2, x >> s, y >> s)` with
/// `s = KEY_ORDER - tile_bits / 2` — one aligned square block of the
/// coarse grid. `tile_bits` must be even and at most `2 * KEY_ORDER`.
///
/// Because [`hilbert_key`] quantizes by *rounding* onto the
/// `2^KEY_ORDER - 1` scale, a grid cell `g` covers the continuous
/// interval `[(g - ½) / side, (g + ½) / side]`; the returned rect is
/// that exact preimage, clamped to the universe. This is the footprint
/// the hot-tile index fetches sites from (`lbq-serve`), and the shape
/// `lbq-obs` heatmap slots aggregate over.
pub fn tile_rect(universe: &Rect, tile: u32, tile_bits: u32) -> Rect {
    debug_assert!(tile_bits >= 2 && tile_bits <= 2 * KEY_ORDER && tile_bits % 2 == 0);
    let order = tile_bits / 2;
    debug_assert!(u64::from(tile) < (1u64 << tile_bits));
    let (cx, cy) = d2xy(order, u64::from(tile));
    let span = 1u32 << (KEY_ORDER - order);
    let side = f64::from((1u32 << KEY_ORDER) - 1);
    let lo = |c: u32| (f64::from(c * span) - 0.5).max(0.0) / side;
    let hi = |c: u32| ((f64::from((c + 1) * span - 1) + 0.5) / side).min(1.0);
    let (w, h) = (universe.width(), universe.height());
    Rect::new(
        universe.xmin + lo(cx) * w,
        universe.ymin + lo(cy) * h,
        universe.xmin + hi(cx) * w,
        universe.ymin + hi(cy) * h,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_exact_small_orders() {
        // Exhaustive over the whole grid for orders 1..=5: d2xy ∘ xy2d
        // is the identity in both directions.
        for order in 1..=5u32 {
            let side = 1u32 << order;
            for x in 0..side {
                for y in 0..side {
                    let d = xy2d(order, x, y);
                    assert_eq!(d2xy(order, d), (x, y), "order {order} cell ({x},{y})");
                }
            }
            for d in 0..u64::from(side) * u64::from(side) {
                let (x, y) = d2xy(order, d);
                assert_eq!(xy2d(order, x, y), d, "order {order} d {d}");
            }
        }
    }

    #[test]
    fn round_trip_at_key_order() {
        // Spot checks at the production order, including the corners.
        let side = 1u32 << KEY_ORDER;
        for &(x, y) in &[
            (0, 0),
            (side - 1, 0),
            (0, side - 1),
            (side - 1, side - 1),
            (12345, 54321),
            (side / 2, side / 3),
        ] {
            let d = xy2d(KEY_ORDER, x, y);
            assert_eq!(d2xy(KEY_ORDER, d), (x, y));
        }
    }

    #[test]
    fn consecutive_keys_are_grid_neighbors() {
        // The defining Hilbert property: |d2xy(d+1) - d2xy(d)| is one
        // grid step (Manhattan distance exactly 1), for the entire
        // curve at small orders and a sampled window at KEY_ORDER.
        for order in 1..=6u32 {
            let cells = 1u64 << (2 * order);
            let mut prev = d2xy(order, 0);
            for d in 1..cells {
                let cur = d2xy(order, d);
                let step = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
                assert_eq!(step, 1, "order {order}: jump at d={d}");
                prev = cur;
            }
        }
        let mut prev = d2xy(KEY_ORDER, 1 << 20);
        for d in (1 << 20) + 1..(1 << 20) + 4096 {
            let cur = d2xy(KEY_ORDER, d);
            assert_eq!(prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1), 1);
            prev = cur;
        }
    }

    #[test]
    fn continuous_key_respects_universe_and_clamps() {
        let u = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Same cell → same key; outside points clamp to the boundary.
        assert_eq!(
            hilbert_key(Point::new(3.0, 7.0), &u),
            hilbert_key(Point::new(3.0, 7.0), &u)
        );
        assert_eq!(
            hilbert_key(Point::new(-5.0, -5.0), &u),
            hilbert_key(Point::new(0.0, 0.0), &u)
        );
        assert_eq!(
            hilbert_key(Point::new(99.0, 99.0), &u),
            hilbert_key(Point::new(10.0, 10.0), &u)
        );
        // Degenerate universe: everything lands on one cell.
        let line = Rect::new(2.0, 5.0, 2.0, 5.0);
        assert_eq!(
            hilbert_key(Point::new(2.0, 5.0), &line),
            hilbert_key(Point::new(7.0, 9.0), &line)
        );
    }

    #[test]
    fn nearby_points_have_nearby_keys_on_average() {
        // Locality sanity: pairs at distance 1/256 of the universe have
        // far smaller mean key distance than random pairs.
        let u = Rect::new(0.0, 0.0, 1.0, 1.0);
        let mut s = 0x5EEDu64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let (mut near_sum, mut far_sum) = (0u64, 0u64);
        const PAIRS: u64 = 4000;
        for _ in 0..PAIRS {
            let p = Point::new(next() * 0.99, next() * 0.99);
            let q = Point::new(p.x + 1.0 / 256.0, p.y);
            let r = Point::new(next(), next());
            near_sum += hilbert_key(p, &u).abs_diff(hilbert_key(q, &u));
            far_sum += hilbert_key(p, &u).abs_diff(hilbert_key(r, &u));
        }
        assert!(
            near_sum * 8 < far_sum,
            "near pairs {near_sum} should be ≪ random pairs {far_sum}"
        );
    }

    #[test]
    fn stable_sort_on_duplicate_points_preserves_input_order() {
        // The repack and tile sorts rely on slice::sort_by_key being
        // stable: duplicate points (equal keys) must keep their
        // original relative order, so repeated repacks are idempotent
        // and tiled batches reproduce the untiled response order.
        let u = Rect::new(0.0, 0.0, 1.0, 1.0);
        let dup = Point::new(0.25, 0.75);
        let mut tagged: Vec<(Point, usize)> = vec![
            (Point::new(0.9, 0.1), 0),
            (dup, 1),
            (Point::new(0.1, 0.1), 2),
            (dup, 3),
            (dup, 4),
            (Point::new(0.5, 0.5), 5),
            (dup, 6),
        ];
        tagged.sort_by_key(|(p, _)| hilbert_key(*p, &u));
        let dup_order: Vec<usize> = tagged
            .iter()
            .filter(|(p, _)| *p == dup)
            .map(|(_, tag)| *tag)
            .collect();
        assert_eq!(
            dup_order,
            vec![1, 3, 4, 6],
            "stable sort must not reorder duplicates"
        );
    }

    #[test]
    fn tile_rect_is_the_key_prefix_preimage() {
        // Both directions, for every order-6 tile (the heatmap / hot
        // tier granularity): points sampled strictly inside the rect
        // key back to the tile, and random points land inside the rect
        // of their own key's tile.
        let universe = Rect::new(-3.0, 1.0, 5.0, 7.0);
        const TILE_BITS: u32 = 12;
        let shift = 2 * KEY_ORDER - TILE_BITS;
        for tile in 0..(1u32 << TILE_BITS) {
            let r = tile_rect(&universe, tile, TILE_BITS);
            for (fx, fy) in [(0.3, 0.3), (0.3, 0.7), (0.7, 0.3), (0.7, 0.7), (0.5, 0.5)] {
                let p = Point::new(r.xmin + fx * r.width(), r.ymin + fy * r.height());
                let key = hilbert_key(p, &universe);
                // lbq-check: allow(lossy-cast) -- top 12 bits fit in u32
                assert_eq!((key >> shift) as u32, tile, "tile {tile} probe ({fx},{fy})");
            }
        }
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let tx = (state >> 11) as f64 / (1u64 << 53) as f64;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ty = (state >> 11) as f64 / (1u64 << 53) as f64;
            let p = Point::new(
                universe.xmin + tx * universe.width(),
                universe.ymin + ty * universe.height(),
            );
            let key = hilbert_key(p, &universe);
            // lbq-check: allow(lossy-cast) -- top 12 bits fit in u32
            let tile = (key >> shift) as u32;
            let r = tile_rect(&universe, tile, TILE_BITS);
            assert!(
                p.x >= r.xmin - 1e-12
                    && p.x <= r.xmax + 1e-12
                    && p.y >= r.ymin - 1e-12
                    && p.y <= r.ymax + 1e-12,
                "point {p:?} escaped tile_rect({tile}) = {r:?}"
            );
        }
    }
}
