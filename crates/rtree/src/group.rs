//! Shared-frontier multi-query kNN.
//!
//! `lbq-serve` dispatches queries in Hilbert-sorted *tiles* (DESIGN.md
//! §12), so the cache-miss kNN queries reaching the tree arrive in
//! spatially tight groups. [`RTree::knn_group_in`] answers such a tile
//! in **one traversal**: a single best-first frontier ordered by the
//! rect-to-rect bound `mindist²(node, groupMBR)`
//! ([`lbq_geom::Rect::mindist_sq_rect`]), with one bounded candidate
//! array per query. Every leaf the frontier reaches is scanned once and
//! offered to all queries, so node pages shared between neighboring
//! queries are read once instead of once per query.
//!
//! ## Admissibility (why results are bit-identical)
//!
//! For every query `q` in the group rect `G` and every node MBR `E`,
//! `mindist²(E, G) ≤ mindist²(E, q)` — the group bound never exceeds a
//! per-query bound. A node is pruned only when its group bound strictly
//! exceeds `max_worst = max_i worst_i` (the largest of the per-query
//! k-th distances, `+∞` while any query is under-filled); for each
//! query `i` that implies `mindist²(E, qᵢ) > worst_i`, which is exactly
//! the single-query prune. Since the candidate sets resolve distance
//! ties by id (a total order — see [`crate::QueryScratch`]), the
//! surviving k of each query is a function of the point set alone, and
//! the group answer equals [`RTree::knn_in`]'s bit for bit.
//!
//! ## Spread fallback
//!
//! Sharing pays only while the tile is tight: `max_worst` is governed by
//! the *widest* query, so a spread-out tile drags the whole frontier
//! through the union of all search regions. The entry point probes the
//! first query with a standard kNN, whose k-th distance `r` estimates
//! every query's pruning radius. Per-query descent explores `m` disks of
//! area `≈ πr²`; the shared frontier explores one region of diameter
//! `≈ diag + 2r`, so sharing breaks even near `diag ≈ 2(√m − 1)·r`. The
//! heuristic keeps a safety margin under that — shared iff
//! `diag² ≤ m·r²` — and falls back to per-query descent (same
//! [`RTree::knn_core`], same results) beyond it.

use crate::node::Item;
use crate::probe::QueryProbe;
use crate::scratch::{CandidateSet, QueryScratch};
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::{Point, Rect};
use std::cmp::Reverse;

impl RTree {
    /// Allocating convenience for [`RTree::knn_group_in`].
    pub fn knn_group(&self, queries: &[Point], k: usize) -> Vec<(Item, f64)> {
        let mut scratch = QueryScratch::new();
        self.knn_group_in(queries, k, &mut scratch).to_vec()
    }

    /// k-NN of every query point in one shared traversal (module docs).
    ///
    /// Returns the per-query results concatenated with uniform stride
    /// `m = k.min(self.len())`: entries `[i*m, (i+1)*m)` are exactly
    /// `self.knn_in(queries[i], k, …)`, bit for bit — items in
    /// ascending `(distance, id)` order. The slice borrows the scratch
    /// and is valid until its next use.
    pub fn knn_group_in<'s>(
        &self,
        queries: &[Point],
        k: usize,
        scratch: &'s mut QueryScratch,
    ) -> &'s [(Item, f64)] {
        let _stage = lbq_obs::stage_timer(lbq_obs::Stage::GroupKnn);
        let mut span = lbq_obs::span("rtree-knn-group");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let shared = self.knn_group_probed(queries, k, scratch, &mut probe);
        span.record("queries", queries.len());
        span.record("k", k);
        span.record("shared", shared);
        span.record("results", scratch.out_nn.len());
        self.finish_query_span(&mut span, &probe, before);
        &scratch.out_nn
    }

    /// Body of the group search; returns `true` when the shared
    /// frontier ran, `false` when it fell back to per-query descent.
    fn knn_group_probed(
        &self,
        queries: &[Point],
        k: usize,
        scratch: &mut QueryScratch,
        probe: &mut QueryProbe,
    ) -> bool {
        scratch.out_nn.clear();
        if k == 0 || self.is_empty() || queries.is_empty() {
            return false;
        }
        let m = queries.len();
        if scratch.group_cands.len() < m {
            scratch.group_cands.resize_with(m, CandidateSet::default);
        }
        let (queue, group) = (&mut scratch.queue, &mut scratch.group_cands);

        // Probe the first query with a standard descent; its k-th
        // distance is the tile's pruning radius estimate.
        self.knn_core(queries[0], k, queue, &mut group[0], probe);
        // lbq-check: allow(no-unwrap-core) — queries[0] was probed above
        let group_rect = Rect::bounding(queries).expect("queries is non-empty");
        let r_sq = group[0].worst(); // +∞ when k ≥ len (full scan anyway)
        let diag_sq =
            group_rect.width() * group_rect.width() + group_rect.height() * group_rect.height();
        let shared = m > 1 && diag_sq <= r_sq * m as f64;

        if shared {
            // One frontier for the whole tile. The probe's candidates
            // are reset along with everyone else's: each query's set
            // must see every item exactly once (CandidateSet dedups by
            // eviction order, not identity).
            for c in group[..m].iter_mut() {
                c.reset(k);
            }
            queue.clear();
            queue.push(Reverse((OrdF64::new(0.0), self.root)));
            while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
                probe.pop();
                let max_worst = group[..m]
                    .iter()
                    .map(CandidateSet::worst)
                    .fold(0.0_f64, f64::max);
                // Strict, like the single-query prune: an equal-bound
                // node can still hold an id-tie-break winner.
                if lb > max_worst {
                    break;
                }
                self.access(node_id);
                let node = self.node(node_id);
                probe.visit(node.level);
                if node.is_leaf() {
                    match self.leaf_coords(node_id) {
                        // Packed arena: per query, one vectorized
                        // distance prepass over the column mirror.
                        // Candidate sets are independent, so flipping
                        // the loop nest query-outer leaves each set's
                        // offer sequence (leaf item order) unchanged.
                        Some((xs, ys)) => {
                            for (c, &q) in group[..m].iter_mut().zip(queries) {
                                // Entry worst is the loosest gate this
                                // member's scan will see (it only
                                // shrinks); the per-item check re-applies
                                // the current one (see
                                // `for_each_d2_within`).
                                let gate = if c.full() { c.worst() } else { f64::INFINITY };
                                crate::util::for_each_d2_within(xs, ys, q, gate, |j, d2| {
                                    if !c.full() || d2 <= c.worst() {
                                        c.consider(d2, node.items[j]);
                                    }
                                });
                            }
                        }
                        None => {
                            for &item in &node.items {
                                for (c, &q) in group[..m].iter_mut().zip(queries) {
                                    c.consider(q.dist_sq(item.point), item);
                                }
                            }
                        }
                    }
                } else {
                    match self.child_mbr_cols(node_id) {
                        Some(cols) => {
                            crate::util::for_each_mindist_sq_rect(cols, &group_rect, |j, lb| {
                                if lb <= max_worst {
                                    queue.push(Reverse((OrdF64::new(lb), node.children[j])));
                                }
                            })
                        }
                        None => {
                            for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                                let lb = mbr.mindist_sq_rect(&group_rect);
                                if lb <= max_worst {
                                    queue.push(Reverse((OrdF64::new(lb), child)));
                                }
                            }
                        }
                    }
                }
            }
        } else {
            // Per-query descent, reusing the probe's result for query 0.
            for (c, &q) in group[1..m].iter_mut().zip(&queries[1..]) {
                self.knn_core(q, k, queue, c, probe);
            }
        }

        let stride = k.min(self.len());
        for c in group[..m].iter() {
            debug_assert_eq!(c.slots().len(), stride);
            scratch
                .out_nn
                .extend(c.slots().iter().map(|c| (c.item, c.dist_sq.sqrt())));
        }
        shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Item, RTreeConfig};

    fn rand_items(n: usize, seed: u64) -> Vec<Item> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect()
    }

    /// Group answer must equal the concatenated per-query answers with
    /// every bit in place.
    fn assert_group_matches(tree: &RTree, queries: &[Point], k: usize) {
        let mut scratch = QueryScratch::new();
        let got = tree.knn_group(queries, k);
        let stride = k.min(tree.len());
        assert_eq!(got.len(), stride * queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let want = tree.knn_in(q, k, &mut scratch);
            let tile = &got[i * stride..(i + 1) * stride];
            assert_eq!(tile.len(), want.len(), "query {i}");
            for (a, b) in tile.iter().zip(want) {
                assert_eq!(a.0.id, b.0.id, "query {i}");
                assert_eq!(a.0.point.x.to_bits(), b.0.point.x.to_bits());
                assert_eq!(a.0.point.y.to_bits(), b.0.point.y.to_bits());
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "query {i} distance bits");
            }
        }
    }

    #[test]
    fn tight_tile_matches_per_query() {
        let tree = RTree::bulk_load(rand_items(4000, 31), RTreeConfig::tiny());
        let queries: Vec<Point> = (0..16)
            .map(|i| Point::new(50.0 + (i % 4) as f64 * 0.2, 50.0 + (i / 4) as f64 * 0.2))
            .collect();
        for k in [1, 3, 10] {
            assert_group_matches(&tree, &queries, k);
        }
    }

    #[test]
    fn spread_tile_falls_back_and_matches() {
        let tree = RTree::bulk_load(rand_items(4000, 32), RTreeConfig::tiny());
        // Corners of the universe: diagonal ≫ any k-th distance.
        let queries = [
            Point::new(1.0, 1.0),
            Point::new(99.0, 1.0),
            Point::new(99.0, 99.0),
            Point::new(1.0, 99.0),
        ];
        for k in [1, 5] {
            assert_group_matches(&tree, &queries, k);
        }
    }

    #[test]
    fn grid_ties_resolve_identically() {
        // Integer grid: distance ties everywhere — the id tie-break must
        // make group and single-query answers agree exactly.
        let items: Vec<Item> = (0..30)
            .flat_map(|i| {
                (0..30).map(move |j| Item::new(Point::new(i as f64, j as f64), (i * 30 + j) as u64))
            })
            .collect();
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let queries: Vec<Point> = (0..9)
            .map(|i| Point::new(14.0 + (i % 3) as f64, 14.0 + (i / 3) as f64))
            .collect();
        for k in [1, 4, 9] {
            assert_group_matches(&tree, &queries, k);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let tree = RTree::bulk_load(rand_items(100, 2), RTreeConfig::tiny());
        let mut scratch = QueryScratch::new();
        // Empty query slice, k = 0, empty tree.
        assert!(tree.knn_group_in(&[], 3, &mut scratch).is_empty());
        assert!(tree
            .knn_group_in(&[Point::new(1.0, 1.0)], 0, &mut scratch)
            .is_empty());
        let empty = RTree::new(RTreeConfig::tiny());
        assert!(empty
            .knn_group_in(&[Point::new(1.0, 1.0)], 3, &mut scratch)
            .is_empty());
        // Single query is the plain kNN.
        assert_group_matches(&tree, &[Point::new(42.0, 17.0)], 5);
        // k beyond the dataset: stride collapses to len.
        assert_group_matches(&tree, &[Point::new(1.0, 2.0), Point::new(1.1, 2.1)], 500);
        // Identical query points.
        let dup = vec![Point::new(33.0, 66.0); 5];
        assert_group_matches(&tree, &dup, 4);
    }

    #[test]
    fn shared_traversal_reads_fewer_nodes_than_per_query() {
        let tree = RTree::bulk_load(rand_items(20_000, 77), RTreeConfig::tiny());
        let queries: Vec<Point> = (0..32)
            .map(|i| Point::new(40.0 + (i % 8) as f64 * 0.05, 60.0 + (i / 8) as f64 * 0.05))
            .collect();
        let mut scratch = QueryScratch::new();
        let (_, grouped) = tree.with_stats(|t| {
            t.knn_group_in(&queries, 8, &mut scratch);
        });
        let (_, single) = tree.with_stats(|t| {
            for &q in &queries {
                t.knn_in(q, 8, &mut scratch);
            }
        });
        assert!(
            grouped.node_accesses < single.node_accesses,
            "shared frontier {} NA must beat {} per-query NA on a tight tile",
            grouped.node_accesses,
            single.node_accesses
        );
    }

    #[test]
    fn zero_steady_state_allocations() {
        let tree = RTree::bulk_load(rand_items(5000, 13), RTreeConfig::tiny());
        let queries: Vec<Point> = (0..8)
            .map(|i| Point::new(20.0 + i as f64 * 0.1, 30.0))
            .collect();
        let mut scratch = QueryScratch::new();
        // Warm-up, then the scratch must stop growing (capacity proxy:
        // repeated calls return identical results and the group arrays
        // retain their lengths).
        for _ in 0..3 {
            let _ = tree.knn_group_in(&queries, 5, &mut scratch);
        }
        let cap = scratch.out_nn.capacity();
        for _ in 0..10 {
            let _ = tree.knn_group_in(&queries, 5, &mut scratch);
        }
        assert_eq!(scratch.out_nn.capacity(), cap);
    }
}
