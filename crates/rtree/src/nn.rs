//! k-nearest-neighbor search.
//!
//! Two algorithms, as surveyed in the paper's Section 1:
//!
//! * [`RTree::knn_depth_first`] — the branch-and-bound of Roussopoulos,
//!   Kelley and Vincent `[RKV95]`: depth-first descent visiting entries in
//!   `mindist` order, pruning entries whose `mindist` exceeds the current
//!   k-th best distance.
//! * [`RTree::knn`] — the best-first (incremental) traversal of
//!   Hjaltason and Samet `[HS99]`, which is I/O-optimal: it visits exactly
//!   the nodes whose MBR intersects the final k-NN disk.
//!
//! Both are exposed because Fig. 27/28 of the paper measure the NN query
//! cost explicitly, and the difference between the two is itself a
//! classic result worth benchmarking (see `lbq-bench`).

use crate::node::{Item, NodeId};
use crate::probe::QueryProbe;
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A result candidate ordered by distance (max-heap on distance).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    dist_sq: f64,
    item: Item,
}

impl RTree {
    /// Best-first k-NN `[HS99]`. Returns up to `k` items sorted by
    /// ascending distance from `q`, with their (exact) distances.
    pub fn knn(&self, q: Point, k: usize) -> Vec<(Item, f64)> {
        let mut span = lbq_obs::span("rtree-knn");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let out = self.knn_probed(q, k, &mut probe);
        span.record("k", k);
        span.record("results", out.len());
        self.finish_query_span(&mut span, &probe, before);
        out
    }

    fn knn_probed(&self, q: Point, k: usize, probe: &mut QueryProbe) -> Vec<(Item, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Min-heap of (mindist², node).
        let mut queue: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
        // Max-heap of the best k items found so far.
        let mut best: BinaryHeap<(OrdF64, u64)> = BinaryHeap::new();
        let mut best_items: std::collections::HashMap<u64, Candidate> =
            std::collections::HashMap::new();
        queue.push(Reverse((OrdF64::new(0.0), self.root)));

        let worst = |best: &BinaryHeap<(OrdF64, u64)>| -> f64 {
            best.peek().map_or(f64::INFINITY, |(d, _)| d.0)
        };

        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            probe.pop();
            if best.len() == k && lb >= worst(&best) {
                break; // no unexplored node can improve the result
            }
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                for e in &node.entries {
                    let item = e.item();
                    let d = q.dist_sq(item.point);
                    if best.len() < k {
                        best.push((OrdF64::new(d), item.id));
                        best_items.insert(item.id, Candidate { dist_sq: d, item });
                    } else if d < worst(&best) {
                        if let Some((_, evicted)) = best.pop() {
                            best_items.remove(&evicted);
                        }
                        best.push((OrdF64::new(d), item.id));
                        best_items.insert(item.id, Candidate { dist_sq: d, item });
                    }
                }
            } else {
                for e in &node.entries {
                    let lb = e.mbr().mindist_sq(q);
                    if best.len() < k || lb < worst(&best) {
                        queue.push(Reverse((OrdF64::new(lb), e.child())));
                    }
                }
            }
        }
        let mut out: Vec<(Item, f64)> = best_items
            .into_values()
            .map(|c| (c.item, c.dist_sq.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        out
    }

    /// Depth-first branch-and-bound k-NN `[RKV95]`. Same result contract
    /// as [`RTree::knn`]; typically touches a few more nodes (it commits
    /// to a subtree before knowing if a sibling is closer).
    pub fn knn_depth_first(&self, q: Point, k: usize) -> Vec<(Item, f64)> {
        let mut span = lbq_obs::span("rtree-knn-df");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let out = self.knn_depth_first_probed(q, k, &mut probe);
        span.record("k", k);
        span.record("results", out.len());
        self.finish_query_span(&mut span, &probe, before);
        out
    }

    fn knn_depth_first_probed(
        &self,
        q: Point,
        k: usize,
        probe: &mut QueryProbe,
    ) -> Vec<(Item, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut best: BinaryHeap<(OrdF64, u64)> = BinaryHeap::new();
        let mut items: std::collections::HashMap<u64, Item> = std::collections::HashMap::new();
        self.df_visit(self.root, q, k, &mut best, &mut items, probe);
        let mut out: Vec<(Item, f64)> = best
            .into_sorted_vec()
            .into_iter()
            .map(|(d, id)| (items[&id], d.0.sqrt()))
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.id.cmp(&b.0.id)));
        out
    }

    fn df_visit(
        &self,
        node_id: NodeId,
        q: Point,
        k: usize,
        best: &mut BinaryHeap<(OrdF64, u64)>,
        items: &mut std::collections::HashMap<u64, Item>,
        probe: &mut QueryProbe,
    ) {
        probe.pop();
        self.access(node_id);
        let node = self.node(node_id);
        probe.visit(node.level);
        let worst = |best: &BinaryHeap<(OrdF64, u64)>| -> f64 {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().map_or(f64::INFINITY, |(d, _)| d.0)
            }
        };
        if node.is_leaf() {
            for e in &node.entries {
                let item = e.item();
                let d = q.dist_sq(item.point);
                if d < worst(best) || best.len() < k {
                    if best.len() == k {
                        if let Some((_, evicted)) = best.pop() {
                            items.remove(&evicted);
                        }
                    }
                    best.push((OrdF64::new(d), item.id));
                    items.insert(item.id, item);
                }
            }
            return;
        }
        // Visit children in mindist order (the RKV95 ordering heuristic),
        // pruning against the evolving k-th best.
        let mut order: Vec<(f64, NodeId)> = node
            .entries
            .iter()
            .map(|e| (e.mbr().mindist_sq(q), e.child()))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (lb, child) in order {
            if lb >= worst(best) && best.len() == k {
                break; // list is sorted: nothing further qualifies
            }
            self.df_visit(child, q, k, best, items, probe);
        }
    }

    /// The single nearest neighbor, `None` on an empty tree.
    pub fn nn(&self, q: Point) -> Option<(Item, f64)> {
        self.knn(q, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeConfig;
    use lbq_geom::Point;

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    fn brute_knn(items: &[Item], q: Point, k: usize) -> Vec<u64> {
        let mut v: Vec<(f64, u64)> = items.iter().map(|i| (q.dist_sq(i.point), i.id)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let (tree, items) = build(600, 21);
        let queries = [
            Point::new(5.0, 5.0),
            Point::new(0.0, 0.0),
            Point::new(-3.0, 12.0), // outside the data MBR
            Point::new(9.99, 0.01),
        ];
        for &q in &queries {
            for k in [1usize, 2, 5, 17, 100] {
                let got: Vec<u64> = tree.knn(q, k).into_iter().map(|(i, _)| i.id).collect();
                let want = brute_knn(&items, q, k);
                assert_eq!(got, want, "best-first q={q} k={k}");
                let got_df: Vec<u64> = tree
                    .knn_depth_first(q, k)
                    .into_iter()
                    .map(|(i, _)| i.id)
                    .collect();
                assert_eq!(got_df, want, "depth-first q={q} k={k}");
            }
        }
    }

    #[test]
    fn distances_are_sorted_and_correct() {
        let (tree, _) = build(300, 5);
        let q = Point::new(3.0, 7.0);
        let res = tree.knn(q, 10);
        assert_eq!(res.len(), 10);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (item, d) in res {
            assert!((q.dist(item.point) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn k_larger_than_dataset() {
        let (tree, items) = build(25, 9);
        let res = tree.knn(Point::new(1.0, 1.0), 100);
        assert_eq!(res.len(), items.len());
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let (tree, _) = build(50, 1);
        assert!(tree.knn(Point::new(0.0, 0.0), 0).is_empty());
        let empty = RTree::new(RTreeConfig::tiny());
        assert!(empty.knn(Point::new(0.0, 0.0), 3).is_empty());
        assert!(empty.nn(Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn best_first_never_costs_more_than_depth_first() {
        // [HS99] optimality relative to [RKV95], in node accesses.
        let (tree, _) = build(2000, 77);
        let mut bf_total = 0;
        let mut df_total = 0;
        for i in 0..50 {
            let q = Point::new((i % 10) as f64, (i / 5) as f64 * 0.9);
            let (_, bf) = tree.with_stats(|t| t.knn(q, 5));
            bf_total += bf.node_accesses;
            let (_, df) = tree.with_stats(|t| t.knn_depth_first(q, 5));
            df_total += df.node_accesses;
        }
        assert!(
            bf_total <= df_total,
            "best-first {bf_total} must not exceed depth-first {df_total}"
        );
    }

    #[test]
    fn nn_on_duplicate_points() {
        let mut tree = RTree::new(RTreeConfig::tiny());
        let p = Point::new(1.0, 1.0);
        for i in 0..10 {
            tree.insert(Item::new(p, i));
        }
        tree.insert(Item::new(Point::new(5.0, 5.0), 99));
        let res = tree.knn(Point::new(1.1, 1.0), 10);
        assert_eq!(res.len(), 10);
        // The far point is excluded; all ten duplicates win.
        assert!(res.iter().all(|(i, _)| i.id != 99));
    }
}
