//! k-nearest-neighbor search.
//!
//! Two algorithms, as surveyed in the paper's Section 1:
//!
//! * [`RTree::knn`] / [`RTree::knn_in`] — the best-first (incremental)
//!   traversal of Hjaltason and Samet `[HS99]`, which is I/O-optimal: it
//!   visits exactly the nodes whose MBR intersects the final k-NN disk.
//! * [`RTree::knn_depth_first`] / [`RTree::knn_depth_first_in`] — the
//!   branch-and-bound of Roussopoulos, Kelley and Vincent `[RKV95]`:
//!   depth-first descent visiting entries in `mindist` order, pruning
//!   entries whose `mindist` exceeds the current k-th best distance.
//!
//! Both are exposed because Fig. 27/28 of the paper measure the NN query
//! cost explicitly, and the difference between the two is itself a
//! classic result worth benchmarking (see `lbq-bench`).
//!
//! The `_in` variants run against a caller-owned [`QueryScratch`] and
//! allocate nothing once the scratch buffers are warm; the plain
//! variants delegate to them with a fresh scratch and copy the result
//! out. Candidates live in a bounded sorted array keyed by slot (see
//! [`crate::QueryScratch`]), so items sharing a user-supplied id are
//! all reported rather than collapsing to one.

use crate::node::Item;
use crate::probe::QueryProbe;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::Point;
use std::cmp::Reverse;

impl RTree {
    /// Best-first k-NN `[HS99]`. Returns up to `k` items sorted by
    /// ascending distance from `q`, with their (exact) distances.
    pub fn knn(&self, q: Point, k: usize) -> Vec<(Item, f64)> {
        let mut scratch = QueryScratch::new();
        self.knn_in(q, k, &mut scratch).to_vec()
    }

    /// [`RTree::knn`] against a reusable scratch: zero steady-state
    /// allocations. The returned slice borrows the scratch and is valid
    /// until its next use.
    pub fn knn_in<'s>(
        &self,
        q: Point,
        k: usize,
        scratch: &'s mut QueryScratch,
    ) -> &'s [(Item, f64)] {
        let _stage = lbq_obs::stage_timer(lbq_obs::Stage::TreeKnn);
        let mut span = lbq_obs::span("rtree-knn");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        self.knn_probed(q, k, scratch, &mut probe);
        span.record("k", k);
        span.record("results", scratch.out_nn.len());
        self.finish_query_span(&mut span, &probe, before);
        &scratch.out_nn
    }

    fn knn_probed(&self, q: Point, k: usize, scratch: &mut QueryScratch, probe: &mut QueryProbe) {
        scratch.out_nn.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        let (queue, cands) = (&mut scratch.queue, &mut scratch.cands);
        self.knn_core(q, k, queue, cands, probe);
        // The candidate array is already sorted by (dist², id), which is
        // exactly the output order (√ is monotone).
        scratch
            .out_nn
            .extend(cands.slots().iter().map(|c| (c.item, c.dist_sq.sqrt())));
    }

    /// The best-first kNN loop against caller-chosen buffers. Shared by
    /// the single-query path above and the per-query fallback of the
    /// group search ([`RTree::knn_group_in`]), so both produce the same
    /// candidates by construction.
    pub(crate) fn knn_core(
        &self,
        q: Point,
        k: usize,
        queue: &mut std::collections::BinaryHeap<Reverse<(OrdF64, crate::NodeId)>>,
        cands: &mut crate::scratch::CandidateSet,
        probe: &mut QueryProbe,
    ) {
        // Min-heap of (mindist², node) and the bounded best-k array.
        queue.clear();
        cands.reset(k);
        queue.push(Reverse((OrdF64::new(0.0), self.root)));

        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            probe.pop();
            // Strict comparison: a node at exactly the k-th distance may
            // still hold an id-tie-break winner (see CandidateSet), so
            // only nodes strictly beyond the k-th distance are pruned.
            if cands.full() && lb > cands.worst() {
                break; // no unexplored node can improve the result
            }
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                match self.leaf_coords(node_id) {
                    // Packed arena: masked distance prepass over the
                    // column mirror, then offer only the items that can
                    // still displace a candidate. The entry worst is the
                    // loosest gate this scan will see (it only shrinks),
                    // the per-item check re-applies the current one, and
                    // `consider` rejects strictly-worse items itself, so
                    // the skip changes nothing but the work done.
                    Some((xs, ys)) => {
                        let gate = if cands.full() {
                            cands.worst()
                        } else {
                            f64::INFINITY
                        };
                        crate::util::for_each_d2_within(xs, ys, q, gate, |j, d2| {
                            if !cands.full() || d2 <= cands.worst() {
                                cands.consider(d2, node.items[j]);
                            }
                        });
                    }
                    None => {
                        for &item in &node.items {
                            cands.consider(q.dist_sq(item.point), item);
                        }
                    }
                }
            } else {
                match self.child_mbr_cols(node_id) {
                    Some(cols) => crate::util::for_each_mindist_sq(cols, q, |j, lb| {
                        if !cands.full() || lb <= cands.worst() {
                            queue.push(Reverse((OrdF64::new(lb), node.children[j])));
                        }
                    }),
                    None => {
                        for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                            let lb = mbr.mindist_sq(q);
                            if !cands.full() || lb <= cands.worst() {
                                queue.push(Reverse((OrdF64::new(lb), child)));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Depth-first branch-and-bound k-NN `[RKV95]`. Same result contract
    /// as [`RTree::knn`]; typically touches a few more nodes (it commits
    /// to a subtree before knowing if a sibling is closer).
    pub fn knn_depth_first(&self, q: Point, k: usize) -> Vec<(Item, f64)> {
        let mut scratch = QueryScratch::new();
        self.knn_depth_first_in(q, k, &mut scratch).to_vec()
    }

    /// [`RTree::knn_depth_first`] against a reusable scratch: zero
    /// steady-state allocations. The returned slice borrows the scratch
    /// and is valid until its next use.
    pub fn knn_depth_first_in<'s>(
        &self,
        q: Point,
        k: usize,
        scratch: &'s mut QueryScratch,
    ) -> &'s [(Item, f64)] {
        let mut span = lbq_obs::span("rtree-knn-df");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        self.knn_depth_first_probed(q, k, scratch, &mut probe);
        span.record("k", k);
        span.record("results", scratch.out_nn.len());
        self.finish_query_span(&mut span, &probe, before);
        &scratch.out_nn
    }

    fn knn_depth_first_probed(
        &self,
        q: Point,
        k: usize,
        scratch: &mut QueryScratch,
        probe: &mut QueryProbe,
    ) {
        scratch.out_nn.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        let cands = &mut scratch.cands;
        cands.reset(k);
        // Explicit stack replacing the former recursion: children are
        // pushed closest-last so the traversal order (and therefore the
        // node-access count) matches the recursive [RKV95] descent; a
        // node whose bound fails against the *current* k-th best at pop
        // time is skipped exactly where the recursion would have pruned
        // it.
        let stack = &mut scratch.df_stack;
        stack.clear();
        stack.push((0.0, self.root));
        while let Some((lb, node_id)) = stack.pop() {
            // Strict, mirroring the best-first prune: distance ties at
            // the k-th slot are resolved by id, so equal-bound subtrees
            // must still be visited.
            if cands.full() && lb > cands.worst() {
                continue;
            }
            probe.pop();
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                match self.leaf_coords(node_id) {
                    // Same masked-gate reasoning as the best-first scan.
                    Some((xs, ys)) => {
                        let gate = if cands.full() {
                            cands.worst()
                        } else {
                            f64::INFINITY
                        };
                        crate::util::for_each_d2_within(xs, ys, q, gate, |j, d2| {
                            if !cands.full() || d2 <= cands.worst() {
                                cands.consider(d2, node.items[j]);
                            }
                        });
                    }
                    None => {
                        for &item in &node.items {
                            cands.consider(q.dist_sq(item.point), item);
                        }
                    }
                }
                continue;
            }
            // Visit children in mindist order (the RKV95 ordering
            // heuristic), pruning against the evolving k-th best.
            let order = &mut scratch.order;
            order.clear();
            match self.child_mbr_cols(node_id) {
                Some(cols) => crate::util::for_each_mindist_sq(cols, q, |j, lb| {
                    order.push((lb, node.children[j]));
                }),
                None => order.extend(
                    node.mbrs
                        .iter()
                        .zip(&node.children)
                        .map(|(mbr, &child)| (mbr.mindist_sq(q), child)),
                ),
            }
            order.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Reversed: the closest child must be popped first.
            stack.extend(order.iter().rev().copied());
        }
        scratch
            .out_nn
            .extend(cands.slots().iter().map(|c| (c.item, c.dist_sq.sqrt())));
    }

    /// The single nearest neighbor, `None` on an empty tree.
    pub fn nn(&self, q: Point) -> Option<(Item, f64)> {
        self.knn(q, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeConfig;
    use lbq_geom::Point;

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    fn brute_knn(items: &[Item], q: Point, k: usize) -> Vec<u64> {
        let mut v: Vec<(f64, u64)> = items.iter().map(|i| (q.dist_sq(i.point), i.id)).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        v.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let (tree, items) = build(600, 21);
        let queries = [
            Point::new(5.0, 5.0),
            Point::new(0.0, 0.0),
            Point::new(-3.0, 12.0), // outside the data MBR
            Point::new(9.99, 0.01),
        ];
        for &q in &queries {
            for k in [1usize, 2, 5, 17, 100] {
                let got: Vec<u64> = tree.knn(q, k).into_iter().map(|(i, _)| i.id).collect();
                let want = brute_knn(&items, q, k);
                assert_eq!(got, want, "best-first q={q} k={k}");
                let got_df: Vec<u64> = tree
                    .knn_depth_first(q, k)
                    .into_iter()
                    .map(|(i, _)| i.id)
                    .collect();
                assert_eq!(got_df, want, "depth-first q={q} k={k}");
            }
        }
    }

    #[test]
    fn distances_are_sorted_and_correct() {
        let (tree, _) = build(300, 5);
        let q = Point::new(3.0, 7.0);
        let res = tree.knn(q, 10);
        assert_eq!(res.len(), 10);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (item, d) in res {
            assert!((q.dist(item.point) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn k_larger_than_dataset() {
        let (tree, items) = build(25, 9);
        let res = tree.knn(Point::new(1.0, 1.0), 100);
        assert_eq!(res.len(), items.len());
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let (tree, _) = build(50, 1);
        assert!(tree.knn(Point::new(0.0, 0.0), 0).is_empty());
        let empty = RTree::new(RTreeConfig::tiny());
        assert!(empty.knn(Point::new(0.0, 0.0), 3).is_empty());
        assert!(empty.nn(Point::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn best_first_never_costs_more_than_depth_first() {
        // [HS99] optimality relative to [RKV95], in node accesses.
        let (tree, _) = build(2000, 77);
        let mut bf_total = 0;
        let mut df_total = 0;
        for i in 0..50 {
            let q = Point::new((i % 10) as f64, (i / 5) as f64 * 0.9);
            let (_, bf) = tree.with_stats(|t| t.knn(q, 5));
            bf_total += bf.node_accesses;
            let (_, df) = tree.with_stats(|t| t.knn_depth_first(q, 5));
            df_total += df.node_accesses;
        }
        assert!(
            bf_total <= df_total,
            "best-first {bf_total} must not exceed depth-first {df_total}"
        );
    }

    #[test]
    fn nn_on_duplicate_points() {
        let mut tree = RTree::new(RTreeConfig::tiny());
        let p = Point::new(1.0, 1.0);
        for i in 0..10 {
            tree.insert(Item::new(p, i));
        }
        tree.insert(Item::new(Point::new(5.0, 5.0), 99));
        let res = tree.knn(Point::new(1.1, 1.0), 10);
        assert_eq!(res.len(), 10);
        // The far point is excluded; all ten duplicates win.
        assert!(res.iter().all(|(i, _)| i.id != 99));
    }

    #[test]
    fn duplicate_ids_all_reported() {
        // Regression: the old HashMap-keyed candidate store collapsed
        // distinct points sharing a user-supplied id into one result.
        let mut tree = RTree::new(RTreeConfig::tiny());
        for i in 0..8 {
            // Eight distinct points, all under id 7.
            tree.insert(Item::new(Point::new(i as f64, 0.0), 7));
        }
        tree.insert(Item::new(Point::new(100.0, 0.0), 1));
        let q = Point::new(0.0, 0.0);
        let res = tree.knn(q, 5);
        assert_eq!(res.len(), 5, "five nearest slots, duplicate ids kept");
        assert!(res.iter().all(|(i, _)| i.id == 7));
        for (rank, (item, d)) in res.iter().enumerate() {
            assert!((item.point.x - rank as f64).abs() < 1e-12);
            assert!((d - rank as f64).abs() < 1e-12);
        }
        let res_df = tree.knn_depth_first(q, 5);
        assert_eq!(res_df.len(), 5);
        assert_eq!(
            res.iter().map(|(i, _)| i.point).collect::<Vec<_>>(),
            res_df.iter().map(|(i, _)| i.point).collect::<Vec<_>>()
        );
    }
}
