//! Incremental nearest-neighbor iteration ("distance browsing",
//! Hjaltason & Samet `[HS99]`).
//!
//! [`RTree::nearest_iter`] yields items in ascending distance from the
//! query point, lazily: pulling the (m+1)-th neighbor does only the
//! incremental work beyond the m-th. This is what a server would use
//! for the `[SR01]` baseline when `m` is tuned at runtime, and the natural
//! building block for "keep expanding until the influence condition
//! holds" style algorithms.

use crate::node::{Item, NodeId};
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Priority-queue element: either a node to expand or a materialized
/// item.
enum QueueEntry {
    Node(NodeId),
    Item(Item),
}

/// Lazy ascending-distance iterator over the tree's items.
pub struct NearestIter<'a> {
    tree: &'a RTree,
    q: Point,
    heap: BinaryHeap<Reverse<(OrdF64, u64, u8)>>,
    // Entries are stored out-of-band, keyed by a monotonically
    // increasing ticket, so the heap holds only POD keys (distance,
    // ticket, kind) and stays cheap to sift.
    slots: Vec<Option<QueueEntry>>,
}

impl<'a> NearestIter<'a> {
    pub(crate) fn new(tree: &'a RTree, q: Point) -> Self {
        let mut it = NearestIter {
            tree,
            q,
            heap: BinaryHeap::new(),
            slots: Vec::new(),
        };
        if !tree.is_empty() {
            it.push(0.0, QueueEntry::Node(tree.root));
        }
        it
    }

    fn push(&mut self, dist_sq: f64, entry: QueueEntry) {
        let kind = match entry {
            QueueEntry::Node(_) => 0u8, // nodes first on ties: correctness
            QueueEntry::Item(_) => 1u8,
        };
        let ticket = self.slots.len() as u64;
        self.slots.push(Some(entry));
        self.heap
            .push(Reverse((OrdF64::new(dist_sq), ticket, kind)));
    }
}

impl Iterator for NearestIter<'_> {
    type Item = (Item, f64);

    fn next(&mut self) -> Option<(Item, f64)> {
        while let Some(Reverse((OrdF64(d_sq), ticket, _))) = self.heap.pop() {
            // lbq-check: allow(lossy-cast) — ticket was minted from slots.len()
            let entry = self.slots[ticket as usize]
                .take()
                // lbq-check: allow(no-unwrap-core) — tickets are heap-unique
                .expect("each ticket is consumed once");
            match entry {
                QueueEntry::Item(item) => return Some((item, d_sq.sqrt())),
                QueueEntry::Node(id) => {
                    self.tree.access(id);
                    let node = self.tree.node(id);
                    if node.is_leaf() {
                        let items: Vec<Item> = node.items.clone();
                        for item in items {
                            let d = self.q.dist_sq(item.point);
                            self.push(d, QueueEntry::Item(item));
                        }
                    } else {
                        let children: Vec<(f64, NodeId)> = node
                            .mbrs
                            .iter()
                            .zip(&node.children)
                            .map(|(mbr, &child)| (mbr.mindist_sq(self.q), child))
                            .collect();
                        for (d, child) in children {
                            self.push(d, QueueEntry::Node(child));
                        }
                    }
                }
            }
        }
        None
    }
}

impl RTree {
    /// Items in ascending distance from `q`, computed incrementally
    /// `[HS99]`. Node accesses are metered as the iterator advances.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_> {
        NearestIter::new(self, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeConfig;

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    #[test]
    fn yields_every_item_in_ascending_order() {
        let (tree, items) = build(300, 3);
        let q = Point::new(0.4, 0.7);
        let got: Vec<(Item, f64)> = tree.nearest_iter(q).collect();
        assert_eq!(got.len(), items.len());
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        // Distances are exact.
        for (item, d) in &got {
            assert!((q.dist(item.point) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_agrees_with_knn() {
        let (tree, _) = build(400, 9);
        let q = Point::new(0.1, 0.2);
        for k in [1usize, 7, 50] {
            let browsed: Vec<u64> = tree.nearest_iter(q).take(k).map(|(i, _)| i.id).collect();
            let knn: Vec<u64> = tree.knn(q, k).into_iter().map(|(i, _)| i.id).collect();
            // Same distances (ids may differ on exact ties, which the
            // generator never produces).
            assert_eq!(browsed, knn, "k={k}");
        }
    }

    #[test]
    fn lazy_cost_grows_with_consumption() {
        let (tree, _) = build(3_000, 5);
        let q = Point::new(0.5, 0.5);
        let (_, small_stats) = tree.with_stats(|t| t.nearest_iter(q).take(1).collect::<Vec<_>>());
        let small = small_stats.node_accesses;
        let (_, large_stats) =
            tree.with_stats(|t| t.nearest_iter(q).take(1_500).collect::<Vec<_>>());
        let large = large_stats.node_accesses;
        assert!(
            small < large,
            "taking one neighbor ({small} NA) must cost less than 1500 ({large} NA)"
        );
        assert!(
            small <= tree.height() as u64 + 4,
            "first item ≈ one root-leaf path"
        );
    }

    #[test]
    fn empty_tree_iterates_nothing() {
        let tree = RTree::new(RTreeConfig::tiny());
        assert_eq!(tree.nearest_iter(Point::ORIGIN).count(), 0);
    }
}
