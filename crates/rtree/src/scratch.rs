//! Reusable query scratch space.
//!
//! Every query algorithm in this crate has a `_in(&mut QueryScratch)`
//! variant that performs **zero heap allocations in steady state**: all
//! working storage (best-first frontier, k-candidate array, DFS stacks,
//! output buffers) lives in the scratch and retains its capacity across
//! calls. The classic allocating entry points (`knn`, `window`, …)
//! delegate to the `_in` variants with a fresh scratch, so results are
//! identical by construction.
//!
//! The k-candidate set is a bounded sorted array rather than the usual
//! `BinaryHeap` + id-keyed `HashMap` pair: k is small (the paper's
//! experiments stop at k = 10), so a sorted insert into a `Vec` beats
//! hashing, keeps the output pre-sorted, and — because candidates are
//! keyed by their slot, not by `item.id` — two distinct points sharing a
//! user-supplied id can no longer silently collapse into one result.

use crate::node::{Item, NodeId};
use crate::util::OrdF64;
use lbq_geom::{ConvexPolygon, Point, Vec2};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A result candidate: squared distance plus the item itself.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub(crate) dist_sq: f64,
    pub(crate) item: Item,
}

/// Bounded best-k candidate array, kept sorted ascending by
/// `(dist_sq, item.id)`.
///
/// Replaces the `BinaryHeap<(OrdF64, u64)>` + `HashMap<u64, Candidate>`
/// pair the kNN algorithms used to allocate per query. Candidates are
/// addressed by slot, so duplicate ids coexist; the shared
/// [`CandidateSet::worst`] helper is the single pruning bound the
/// best-first and depth-first searches both use.
#[derive(Debug, Default)]
pub(crate) struct CandidateSet {
    k: usize,
    slots: Vec<Candidate>,
}

impl CandidateSet {
    /// Empties the set and re-arms it for a new query with capacity `k`.
    /// Retains the backing allocation.
    pub(crate) fn reset(&mut self, k: usize) {
        self.slots.clear();
        self.k = k;
    }

    /// `true` when all `k` slots are occupied.
    #[inline]
    pub(crate) fn full(&self) -> bool {
        self.slots.len() == self.k
    }

    /// The pruning bound: the k-th best squared distance, or `+∞` while
    /// the set is not yet full.
    #[inline]
    pub(crate) fn worst(&self) -> f64 {
        if self.full() {
            self.slots.last().map_or(f64::INFINITY, |c| c.dist_sq)
        } else {
            f64::INFINITY
        }
    }

    /// Offers a candidate: inserted while the set is under-full, or when
    /// it beats the current worst under the total `(dist_sq, id)` order
    /// (which is then evicted). Breaking distance ties by id — instead
    /// of first-seen-wins — makes the surviving k a function of the
    /// *point set alone*, not of traversal order, which is what lets a
    /// [`crate::RTree::repack`]ed tree and the shared-frontier group kNN
    /// promise bit-identical results.
    pub(crate) fn consider(&mut self, dist_sq: f64, item: Item) {
        if self.full() {
            // lbq-check: allow(no-unwrap-core) — full() implies k ≥ 1 slot
            let last = self.slots.last().expect("full set is non-empty");
            if last
                .dist_sq
                .total_cmp(&dist_sq)
                .then(last.item.id.cmp(&item.id))
                != Ordering::Greater
            {
                return;
            }
            self.slots.pop();
        }
        let pos = self.slots.partition_point(|c| {
            c.dist_sq.total_cmp(&dist_sq).then(c.item.id.cmp(&item.id)) != Ordering::Greater
        });
        self.slots.insert(pos, Candidate { dist_sq, item });
    }

    /// The candidates, ascending by `(dist_sq, id)`.
    #[inline]
    pub(crate) fn slots(&self) -> &[Candidate] {
        &self.slots
    }
}

/// Reusable working storage for the tree's query algorithms.
///
/// Create one per thread (it is cheap and `Send`), pass it to the `_in`
/// query variants (`RTree::knn_in`, `RTree::window_in`,
/// `RTree::tp_knn_in`, …), and reuse it across queries: after a warm-up
/// call every buffer holds enough capacity and subsequent queries touch
/// the allocator zero times. A scratch carries no query state between
/// calls — every algorithm resets the buffers it uses — so interleaving
/// different query kinds on one scratch is always sound.
///
/// ```
/// # use lbq_rtree::{QueryScratch, RTree, RTreeConfig, Item};
/// # use lbq_geom::Point;
/// # let mut tree = RTree::new(RTreeConfig::tiny());
/// # for i in 0..100 { tree.insert(Item::new(Point::new(i as f64, 0.0), i)); }
/// let mut scratch = QueryScratch::new();
/// for i in 0..10 {
///     let res = tree.knn_in(Point::new(i as f64, 0.0), 3, &mut scratch);
///     assert_eq!(res.len(), 3);
/// }
/// ```
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Best-first frontier: min-heap of (lower bound, node).
    pub(crate) queue: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
    /// Bounded best-k candidate array.
    pub(crate) cands: CandidateSet,
    /// Plain DFS stack (window traversals).
    pub(crate) stack: Vec<NodeId>,
    /// Bound-carrying DFS stack (depth-first kNN).
    pub(crate) df_stack: Vec<(f64, NodeId)>,
    /// Child-ordering buffer (depth-first kNN mindist sort).
    pub(crate) order: Vec<(f64, NodeId)>,
    /// Output buffer for (item, distance) results.
    pub(crate) out_nn: Vec<(Item, f64)>,
    /// Output buffer for item results.
    pub(crate) out_items: Vec<Item>,
    /// Vertex-confirmation ring `(vertex, confirmed)` for the
    /// validity-region construction in `lbq-core`. Hosted here so the
    /// one scratch threaded through the TPNN chain also serves the
    /// region loop allocation-free.
    pub region_vertices: Vec<(Point, bool)>,
    /// Double buffer for [`QueryScratch::region_vertices`] (the flag
    /// carry across a polygon clip reads the old ring while writing the
    /// new one).
    pub region_spare: Vec<(Point, bool)>,
    /// Staging buffer for in-place polygon clipping
    /// ([`lbq_geom::ConvexPolygon::clip_in_place`]).
    pub region_clip: Vec<Point>,
    /// Influence pairs `(inner, outer)` backing the borrowed validity
    /// region returned by `lbq-core`'s zero-allocation region path —
    /// hosted here (as raw items; `lbq-core` wraps them) so the whole
    /// kNN → TPNN → region chain runs on one scratch.
    pub region_pairs: Vec<(Item, Item)>,
    /// Region polygon backing the same borrowed validity-region view.
    /// Retains vertex capacity across queries.
    pub region_polygon: ConvexPolygon,
    /// Per-query candidate arrays for the shared-frontier group kNN
    /// ([`crate::RTree::knn_group_in`]): slot `i` collects the best k of
    /// query `i` in the tile. Grows to the largest tile seen.
    pub(crate) group_cands: Vec<CandidateSet>,
    /// Frontier for the grouped TPNN ([`crate::RTree::tp_knn_group_in`]):
    /// min-heap of (group lower bound, node, member bitmask).
    pub(crate) tp_group_queue: BinaryHeap<Reverse<crate::tp::GroupEntry>>,
    /// Per-member rotated frame `(perp, d_max, inner_d2 start)` for the
    /// grouped TPNN; the third field indexes into [`Self::tp_inner_d2`].
    pub(crate) tp_group_frame: Vec<(Vec2, f64, u32)>,
    /// Precomputed `dist²(q, oᵢ)` for the probe's inner set — these are
    /// probe-invariant, so the leaf scans reuse them instead of
    /// recomputing one per (item, inner) pair. Grouped probes append
    /// their sets back to back (offsets in [`Self::tp_group_frame`]).
    pub(crate) tp_inner_d2: Vec<f64>,
}

// Compile-time proof that a scratch can be handed to a worker thread:
// the serve pool owns one per worker for the pool's lifetime, so a
// field losing Send must fail the build. (Sync holds too — the scratch
// has no interior mutability — and asserting it keeps the bar high.)
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryScratch>();
};

impl QueryScratch {
    /// Creates an empty scratch. Buffers grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_geom::Point;

    fn item(id: u64) -> Item {
        Item::new(Point::new(id as f64, 0.0), id)
    }

    #[test]
    fn keeps_best_k_sorted() {
        let mut c = CandidateSet::default();
        c.reset(3);
        for (d, id) in [(9.0, 1), (1.0, 2), (4.0, 3), (16.0, 4), (2.0, 5)] {
            c.consider(d, item(id));
        }
        let got: Vec<(f64, u64)> = c.slots().iter().map(|c| (c.dist_sq, c.item.id)).collect();
        assert_eq!(got, vec![(1.0, 2), (2.0, 5), (4.0, 3)]);
        assert_eq!(c.worst(), 4.0);
    }

    #[test]
    fn worst_is_infinite_while_underfull() {
        let mut c = CandidateSet::default();
        c.reset(2);
        assert_eq!(c.worst(), f64::INFINITY);
        c.consider(5.0, item(0));
        assert!(!c.full());
        assert_eq!(c.worst(), f64::INFINITY);
        c.consider(7.0, item(1));
        assert!(c.full());
        assert_eq!(c.worst(), 7.0);
    }

    #[test]
    fn equal_distance_ties_resolve_by_id() {
        // The (dist², id) order is total: on a distance tie the smaller
        // id wins regardless of arrival order, so the surviving set is
        // independent of tree traversal order.
        let mut c = CandidateSet::default();
        c.reset(1);
        c.consider(3.0, item(7));
        c.consider(3.0, item(1));
        assert_eq!(c.slots()[0].item.id, 1);
        let mut c = CandidateSet::default();
        c.reset(1);
        c.consider(3.0, item(1));
        c.consider(3.0, item(7));
        assert_eq!(c.slots()[0].item.id, 1, "arrival order must not matter");
    }

    #[test]
    fn duplicate_ids_occupy_distinct_slots() {
        let mut c = CandidateSet::default();
        c.reset(4);
        c.consider(1.0, Item::new(Point::new(1.0, 0.0), 42));
        c.consider(2.0, Item::new(Point::new(0.0, 1.4), 42));
        assert_eq!(c.slots().len(), 2, "same id must not collapse slots");
    }

    #[test]
    fn reset_retains_capacity() {
        let mut c = CandidateSet::default();
        c.reset(8);
        for i in 0..8 {
            c.consider(i as f64, item(i));
        }
        let cap = c.slots.capacity();
        c.reset(8);
        assert!(c.slots().is_empty());
        assert_eq!(c.slots.capacity(), cap);
    }
}
