//! # lbq-rtree — a disk-model R\*-tree for point data
//!
//! The index substrate of the `lbq` workspace (reproduction of
//! *"Location-based Spatial Queries"*, SIGMOD 2003). The paper's server
//! stores static point datasets in an R\*-tree `[BKSS90]` with 4 KiB pages
//! (node capacity 204) and measures query cost in **node accesses** (NA)
//! and, through an LRU buffer sized at 10% of the tree, **page accesses**
//! (PA, i.e. buffer faults). This crate reproduces that disk model:
//! the tree lives in memory, but every node visit is metered as if it
//! were a page read.
//!
//! ## What is implemented
//!
//! * **R\*-tree construction**: one-by-one insertion with ChooseSubtree,
//!   forced reinsertion and the R\* split (margin-driven axis choice,
//!   overlap-driven distribution choice), plus **STR bulk loading** for
//!   building the large experiment trees quickly ([`RTree::bulk_load`]).
//! * **Deletion** with under-full node condensing and re-insertion.
//! * **Window queries** ([`RTree::window`]) — the classic recursive
//!   MBR-intersection descent.
//! * **k-nearest-neighbor search**, both the depth-first branch-and-bound
//!   of Roussopoulos et al. `[RKV95]` ([`RTree::knn_depth_first`]) and the
//!   optimal best-first traversal of Hjaltason & Samet `[HS99]`
//!   ([`RTree::knn`]).
//! * **Time-parameterized NN queries** `[TP02]` ([`RTree::tp_knn`]): given
//!   a query point moving along a ray and its current (k-)NN result, find
//!   the object with the minimum *influence time* — the moment the result
//!   first changes. This is the workhorse of the paper's validity-region
//!   construction (its Section 3).
//! * **Zero-allocation query mode**: every query algorithm has a
//!   `_in(&mut QueryScratch)` variant ([`RTree::knn_in`],
//!   [`RTree::window_in`], [`RTree::tp_knn_in`], …) that reuses
//!   caller-owned working buffers, so a warmed-up query performs zero
//!   heap allocations. Nodes are stored struct-of-arrays (parallel
//!   MBR/child arrays, plain item arrays in leaves) so the scan loops
//!   stream contiguous rects. See DESIGN.md §11.
//! * **Hilbert-packed arenas and group queries**: [`RTree::repack`]
//!   rewrites a finished tree into descent-order arena layout with
//!   Hilbert-sorted siblings ([`RTree::bulk_load_packed`] composes it
//!   with STR), carrying a column mirror of leaf coordinates and
//!   child MBRs that the scan kernels vectorize over — every query
//!   stays bit-identical to the source tree. [`RTree::knn_group_in`]
//!   answers a tile of co-located queries in one shared-frontier
//!   traversal, bit-identical per member to [`RTree::knn_in`]. See
//!   DESIGN.md §12.
//!
//! ## Metering
//!
//! All read queries take `&self`; counters use interior mutability.
//! [`RTree::with_stats`] scopes a closure and returns the NA/PA delta
//! it incurred (nesting-safe); phase-attribution harnesses (e.g. "the
//! initial NN query" vs "the TPNN queries", as in the paper's Fig. 27)
//! nest such scopes rather than resetting any global counter.
//!
//! Every public query entry point additionally opens an `lbq_obs` span
//! (`rtree-knn`, `rtree-knn-df`, `rtree-window`, `rtree-tpnn`,
//! `rtree-tp-window`) carrying per-query NA/PA, heap pops, depth
//! reached and buffer hit rate, and feeds the global
//! `rtree-node-accesses` / `rtree-page-faults` counters. With no
//! subscriber installed the hooks cost a handful of integer ops per
//! query (see DESIGN.md §9).

mod browse;
mod bulk;
mod group;
pub mod hilbert;
mod insert;
mod nn;
mod node;
mod probe;
mod query;
mod repack;
mod scratch;
mod stats;
mod tp;
mod tpwin;
mod tree;
mod util;

pub use browse::NearestIter;
pub use bulk::DEFAULT_BULK_FILL;
pub use node::{Item, NodeId};
pub use scratch::QueryScratch;
pub use stats::{LruBuffer, Stats};
pub use tp::{TpBound, TpEvent, TpProbe};
pub use tpwin::{TpWindowChange, TpWindowEvent};
pub use tree::RTree;
pub use util::OrdF64;

/// Structural parameters of the tree.
///
/// The defaults mirror the paper's setup: 4 KiB pages and 20-byte entries
/// give a fan-out of 204; the R\* recommendations set the minimum fill to
/// 40% of capacity and forced reinsertion to 30%.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (page capacity).
    pub max_entries: usize,
    /// Minimum entries per non-root node.
    pub min_entries: usize,
    /// Entries removed on the first overflow of a level (forced
    /// reinsertion, R\* "p" parameter). Zero disables reinsertion.
    pub reinsert_count: usize,
}

impl RTreeConfig {
    /// Capacity derived from a page size and per-entry byte cost.
    ///
    /// The paper uses 4096-byte pages and point entries of 20 bytes
    /// (two 8-byte coordinates + 4-byte record pointer), giving 204.
    pub fn from_page_size(page_bytes: usize, entry_bytes: usize) -> Self {
        let cap = (page_bytes / entry_bytes).max(4);
        Self::with_capacity(cap)
    }

    /// The exact configuration of the paper's experiments
    /// (page 4 KiB → 204 entries/node).
    pub fn paper() -> Self {
        Self::from_page_size(4096, 20)
    }

    /// Capacity-first constructor with R\* fill factors.
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R-tree capacity must be at least 4");
        RTreeConfig {
            max_entries,
            min_entries: (max_entries * 2 / 5).max(2), // 40 %
            reinsert_count: (max_entries * 3 / 10).max(1), // 30 %
        }
    }

    /// A tiny fan-out (8) used by tests to force deep trees on small
    /// inputs.
    pub fn tiny() -> Self {
        Self::with_capacity(8)
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_sigmod_setup() {
        let c = RTreeConfig::paper();
        assert_eq!(c.max_entries, 204);
        assert_eq!(c.min_entries, 81);
        assert_eq!(c.reinsert_count, 61);
    }

    #[test]
    fn capacity_floor() {
        let c = RTreeConfig::from_page_size(16, 20);
        assert_eq!(c.max_entries, 4);
        assert!(c.min_entries >= 2);
        assert!(c.min_entries <= c.max_entries / 2 + 1);
    }

    #[test]
    #[should_panic]
    fn rejects_degenerate_capacity() {
        let _ = RTreeConfig::with_capacity(3);
    }
}
