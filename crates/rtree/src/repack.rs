//! Hilbert-packed arena rewriting.
//!
//! An R\*-tree built by a million inserts (or even by STR) leaves its
//! `Vec<Node>` arena in *build* order: a parent's children are scattered
//! wherever splits happened to allocate them, so a query descent hops
//! across the arena and — on real hardware — across cache lines and
//! pages. [`RTree::repack`] rewrites the arena into **DFS,
//! children-adjacent** order with **Hilbert-sorted** siblings and leaf
//! items (see [`crate::hilbert`] and DESIGN.md §12):
//!
//! * the root is node 0;
//! * every parent's children occupy one contiguous block of NodeIds, in
//!   Hilbert order of their MBR centers — the `mbrs`/`children` scan of
//!   a node enumerates a run of adjacent arena slots;
//! * each child's descendants are laid out (recursively, in full)
//!   before the next sibling's, so every subtree is one contiguous
//!   arena range and a depth-first descent is near-sequential;
//! * leaf items are sorted by the Hilbert key of their point, so a
//!   plane-sweep of key-adjacent queries re-reads warm item slots;
//! * the free list is dropped — `nodes.len()` equals
//!   [`RTree::node_count`].
//!
//! Only the *storage order* changes. The node/parent structure, entry
//! counts, levels and MBRs are all preserved, so [`RTree::node_count`]
//! and the disk-model NA/PA semantics are untouched: a query visits the
//! same *set* of nodes (kNN tie-breaks are order-independent, see
//! [`crate::QueryScratch`]) and the paper's I/O figures do not move.

use crate::hilbert::hilbert_key;
use crate::node::{Node, NodeId};
use crate::stats::StatsCell;
use crate::tree::RTree;
use crate::util::node_id;
use crate::RTreeConfig;
use lbq_geom::Rect;
use std::sync::atomic::AtomicBool;
use std::sync::Mutex;

impl RTree {
    /// Rewrites the tree into a Hilbert-packed arena (module docs above)
    /// and returns it. `&self` — the source tree is untouched and
    /// queries against both return bit-identical results.
    ///
    /// Counters start at zero on the packed tree; an attached LRU buffer
    /// is re-attached **cold** with the same page capacity (same
    /// disk-model geometry, no carried-over residency).
    pub fn repack(&self) -> RTree {
        let universe = self.mbr().unwrap_or_else(|| Rect::new(0.0, 0.0, 0.0, 0.0));
        let mut nodes: Vec<Node> = Vec::with_capacity(self.node_count());
        // Slot 0 is the root; descendants are claimed depth-first.
        nodes.push(Node::new_leaf());
        self.place(self.root, 0, &universe, &mut nodes);
        debug_assert_eq!(nodes.len(), self.node_count());

        // Column mirror of the leaf coordinates, in the same arena
        // order: the leaf-scan kernels vectorize their distance prepass
        // over these slices (see `LeafSoa`). The `u32` prefix offsets
        // cap the mirror at 2^32 items; a larger tree simply goes
        // without (queries fall back to the row layout).
        // lbq-check: allow(lossy-cast) — u32 → usize is widening here
        let soa = (self.len <= u32::MAX as usize).then(|| {
            let mut soa = crate::tree::LeafSoa::default();
            soa.xs.reserve(self.len);
            soa.ys.reserve(self.len);
            soa.start.reserve(nodes.len() + 1);
            soa.cstart.reserve(nodes.len() + 1);
            soa.start.push(0);
            soa.cstart.push(0);
            for node in &nodes {
                for item in &node.items {
                    soa.xs.push(item.point.x);
                    soa.ys.push(item.point.y);
                }
                // lbq-check: allow(lossy-cast) — guarded: len ≤ u32::MAX
                soa.start.push(soa.xs.len() as u32);
                for mbr in &node.mbrs {
                    soa.cxmin.push(mbr.xmin);
                    soa.cymin.push(mbr.ymin);
                    soa.cxmax.push(mbr.xmax);
                    soa.cymax.push(mbr.ymax);
                }
                // lbq-check: allow(lossy-cast) — nodes ≤ items ≤ u32::MAX
                soa.cstart.push(soa.cxmin.len() as u32);
            }
            soa
        });

        let packed = RTree {
            nodes,
            free: Vec::new(),
            root: 0,
            config: self.config,
            len: self.len,
            stats: StatsCell::default(),
            buffer: Mutex::new(None),
            buffered: AtomicBool::new(false),
            soa,
        };
        if self.has_buffer() {
            if let Some(b) = self.buf().as_ref() {
                packed.set_buffer(b.capacity());
            }
        }
        packed.debug_validate();
        packed
    }

    /// Copies the subtree rooted at `old_id` into `nodes[new_idx]`,
    /// claiming contiguous slots for its children and recursing in
    /// child order.
    fn place(&self, old_id: NodeId, new_idx: usize, universe: &Rect, nodes: &mut Vec<Node>) {
        let old = self.node(old_id);
        if old.is_leaf() {
            let mut leaf = Node::new_leaf();
            leaf.items.extend_from_slice(&old.items);
            // Stable: duplicate points keep their original order, so
            // repacking twice is the identity on the arena.
            leaf.items
                .sort_by_key(|item| hilbert_key(item.point, universe));
            nodes[new_idx] = leaf;
            return;
        }
        let mut order: Vec<usize> = (0..old.children.len()).collect();
        order.sort_by_key(|&i| hilbert_key(old.mbrs[i].center(), universe));

        // Claim one adjacent block of ids for all children, then lay
        // each child's whole subtree out before its next sibling's.
        let block = nodes.len();
        nodes.resize_with(block + order.len(), Node::new_leaf);
        let mut packed = Node::new_internal(old.level);
        for (slot, &i) in order.iter().enumerate() {
            packed.mbrs.push(old.mbrs[i]);
            packed.children.push(node_id(block + slot));
        }
        nodes[new_idx] = packed;
        for (slot, &i) in order.iter().enumerate() {
            self.place(old.children[i], block + slot, universe, nodes);
        }
    }

    /// [`RTree::bulk_load`] followed by [`RTree::repack`]: builds the
    /// STR tree and immediately rewrites it into the packed layout. The
    /// construction path for the locality benchmarks and for any
    /// read-mostly deployment.
    pub fn bulk_load_packed(items: Vec<crate::Item>, config: RTreeConfig) -> RTree {
        Self::bulk_load(items, config).repack()
    }

    /// `true` when the arena is in packed (children-adjacent, no free
    /// slots) form — diagnostics for tests and the benchmark harness;
    /// queries never check this.
    pub fn is_packed(&self) -> bool {
        if !self.free.is_empty() || self.root != 0 {
            return false;
        }
        self.nodes.iter().all(|n| {
            n.children
                .iter()
                .zip(n.children.iter().skip(1))
                .all(|(&a, &b)| b == a + 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Item, RTreeConfig};
    use lbq_geom::Point;

    fn rand_items(n: usize, seed: u64) -> Vec<Item> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect()
    }

    #[test]
    fn repack_preserves_shape_and_contents() {
        let items = rand_items(3000, 7);
        let mut tree = RTree::new(RTreeConfig::tiny());
        for &it in &items {
            tree.insert(it);
        }
        // Insert-built trees carry free-list holes from splits/merges;
        // delete a few to guarantee some.
        for it in items.iter().take(50) {
            assert!(tree.delete(it.point, it.id));
        }
        let packed = tree.repack();
        packed.check_invariants().unwrap();
        assert!(packed.is_packed());
        assert_eq!(packed.len(), tree.len());
        assert_eq!(packed.node_count(), tree.node_count());
        assert_eq!(packed.node_count(), packed.nodes.len(), "free list dropped");
        assert_eq!(packed.height(), tree.height());
        let mut a: Vec<(u64, u64, u64)> = tree
            .iter_items()
            .map(|i| (i.id, i.point.x.to_bits(), i.point.y.to_bits()))
            .collect();
        let mut b: Vec<(u64, u64, u64)> = packed
            .iter_items()
            .map(|i| (i.id, i.point.x.to_bits(), i.point.y.to_bits()))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same multiset of items, bit-for-bit");
    }

    #[test]
    fn repack_is_idempotent_on_the_arena() {
        let tree = RTree::bulk_load(rand_items(2000, 21), RTreeConfig::tiny());
        let once = tree.repack();
        let twice = once.repack();
        assert_eq!(once.nodes.len(), twice.nodes.len());
        for (a, b) in once.nodes.iter().zip(&twice.nodes) {
            assert_eq!(a.level, b.level);
            assert_eq!(a.children, b.children);
            assert_eq!(
                a.items.iter().map(|i| i.id).collect::<Vec<_>>(),
                b.items.iter().map(|i| i.id).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn bulk_load_packed_is_packed() {
        let t = RTree::bulk_load_packed(rand_items(5000, 3), RTreeConfig::tiny());
        t.check_invariants().unwrap();
        assert!(t.is_packed());
        assert_eq!(t.len(), 5000);
        // An insert-built tree is essentially never packed.
        let mut grown = RTree::new(RTreeConfig::tiny());
        for it in rand_items(1000, 4) {
            grown.insert(it);
        }
        assert!(!grown.is_packed());
    }

    #[test]
    fn repack_preserves_buffer_geometry_cold() {
        let tree = RTree::bulk_load(rand_items(2000, 9), RTreeConfig::tiny());
        tree.set_buffer_fraction(0.1);
        let _ = tree.knn(Point::new(50.0, 50.0), 5); // warm the source buffer
        let packed = tree.repack();
        assert!(packed.has_buffer());
        let (pages, resident) = packed
            .buf()
            .as_ref()
            .map(|b| (b.capacity(), b.resident_count()))
            .unwrap();
        assert_eq!(pages, tree.buf().as_ref().unwrap().capacity());
        assert_eq!(resident, 0, "packed buffer starts cold");
        assert_eq!(packed.stats(), crate::Stats::default());
    }

    #[test]
    fn repack_empty_and_tiny() {
        let empty = RTree::new(RTreeConfig::tiny());
        let p = empty.repack();
        assert!(p.is_empty());
        assert_eq!(p.node_count(), 1);
        p.check_invariants().unwrap();

        let one = RTree::bulk_load(rand_items(1, 5), RTreeConfig::tiny());
        let p = one.repack();
        assert_eq!(p.len(), 1);
        assert!(p.is_packed());
        p.check_invariants().unwrap();
    }

    #[test]
    fn packed_tree_remains_mutable() {
        let mut t = RTree::bulk_load_packed(rand_items(1500, 11), RTreeConfig::tiny());
        for it in rand_items(200, 12).into_iter().map(|mut i| {
            i.id += 10_000;
            i
        }) {
            t.insert(it);
        }
        assert_eq!(t.len(), 1700);
        t.check_invariants().unwrap();
    }
}
