//! Per-query profiling probes.
//!
//! Each public query entry point threads a [`QueryProbe`] — plain local
//! counters, no allocation — through its traversal, then calls
//! [`RTree::finish_query_span`] to feed the global `lbq_obs` NA/PA
//! counters and, when tracing is enabled, to attach the per-query cost
//! fields (NA, PA, heap pops, depth reached, buffer hit rate) to the
//! query's span. The probes cost a few integer ops per node visit, so
//! the queries stay within the no-subscriber overhead budget.

use crate::stats::Stats;
use crate::tree::RTree;
use lbq_obs::{Counter, Span};
use std::sync::OnceLock;

/// Local counters for one query's traversal.
#[derive(Debug, Default)]
pub(crate) struct QueryProbe {
    /// Traversal steps: priority-queue pops for best-first searches,
    /// node visits for recursive descents.
    pub(crate) pops: u64,
    /// Smallest node level reached (0 = leaf), `None` before any visit.
    pub(crate) min_level: Option<u32>,
}

impl QueryProbe {
    /// Registers a visit to a node at `level`.
    #[inline]
    pub(crate) fn visit(&mut self, level: u32) {
        self.min_level = Some(self.min_level.map_or(level, |m| m.min(level)));
    }

    /// Registers one traversal step.
    #[inline]
    pub(crate) fn pop(&mut self) {
        self.pops += 1;
    }
}

fn na_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| lbq_obs::counter("rtree-node-accesses"))
}

fn pa_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| lbq_obs::counter("rtree-page-faults"))
}

impl RTree {
    /// Shared epilogue of the instrumented query wrappers: adds this
    /// query's NA/PA delta to the global metrics registry and, when the
    /// span is live, records the per-query cost fields.
    pub(crate) fn finish_query_span(&self, span: &mut Span, probe: &QueryProbe, before: Stats) {
        let delta = self.stats().delta_since(before);
        na_counter().add(delta.node_accesses);
        pa_counter().add(delta.page_faults);
        if span.is_active() {
            span.record("na", delta.node_accesses);
            span.record("pa", delta.page_faults);
            span.record("heap-pops", probe.pops);
            if let Some(level) = probe.min_level {
                // Depth below the root: 0 = stopped at the root,
                // height−1 = reached a leaf.
                span.record("depth", u64::from(self.height() - 1 - level));
            }
            if delta.node_accesses > 0 && self.has_buffer() {
                let hits = delta.node_accesses - delta.page_faults;
                span.record("buffer-hit-rate", hits as f64 / delta.node_accesses as f64);
            }
        }
    }
}
