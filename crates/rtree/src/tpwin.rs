//! Time-parameterized **window** queries `[TP02]` — the Fig. 6a scenario
//! of the paper: a window translating rigidly with the client, and the
//! question "when does the result change next, and how?".
//!
//! For a window of half-extents `(hx, hy)` centered at the moving
//! client `c + t·dir`, a point `p` is inside exactly while the client is
//! inside `p`'s Minkowski rectangle `Rect(p ± (hx, hy))`. So:
//!
//! * an object currently **in** the result *leaves* at the ray's exit
//!   time from its Minkowski rectangle (computed directly from the
//!   result set, no I/O);
//! * an object currently **out** *enters* at the ray's entry time
//!   (found with a best-first tree search whose subtree bound is the
//!   entry time into the child MBR inflated by the window half-extents
//!   — the Minkowski region of the whole subtree).

use crate::node::Item;
use crate::probe::QueryProbe;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::{Point, Rect, Vec2};
use std::cmp::Reverse;

/// How a TP window event changes the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpWindowChange {
    /// The object enters the window (gets added to the result).
    Enter,
    /// The object leaves the window (gets removed).
    Leave,
}

/// The first result-changing event of a moving window query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpWindowEvent {
    pub object: Item,
    pub change: TpWindowChange,
    /// Distance traveled along `dir` until the change.
    pub time: f64,
}

impl RTree {
    /// Finds the earliest result change of the window of half-extents
    /// `(hx, hy)` centered at `c` moving along unit `dir`, within
    /// travel horizon `t_max`. `result` must be the exact current
    /// window content.
    pub fn tp_window(
        &self,
        c: Point,
        dir: Vec2,
        t_max: f64,
        hx: f64,
        hy: f64,
        result: &[Item],
    ) -> Option<TpWindowEvent> {
        let mut scratch = QueryScratch::new();
        self.tp_window_in(c, dir, t_max, hx, hy, result, &mut scratch)
    }

    /// [`RTree::tp_window`] against a reusable scratch: zero
    /// steady-state allocations.
    #[allow(clippy::too_many_arguments)]
    pub fn tp_window_in(
        &self,
        c: Point,
        dir: Vec2,
        t_max: f64,
        hx: f64,
        hy: f64,
        result: &[Item],
        scratch: &mut QueryScratch,
    ) -> Option<TpWindowEvent> {
        let mut span = lbq_obs::span("rtree-tp-window");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let out = self.tp_window_probed(c, dir, t_max, hx, hy, result, scratch, &mut probe);
        span.record("result-size", result.len());
        span.record("found", out.is_some());
        self.finish_query_span(&mut span, &probe, before);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn tp_window_probed(
        &self,
        c: Point,
        dir: Vec2,
        t_max: f64,
        hx: f64,
        hy: f64,
        result: &[Item],
        scratch: &mut QueryScratch,
        probe: &mut QueryProbe,
    ) -> Option<TpWindowEvent> {
        debug_assert!((dir.norm() - 1.0).abs() < lbq_geom::EPS, "dir must be unit");
        assert!(hx > 0.0 && hy > 0.0);
        let mut best: Option<TpWindowEvent> = None;
        let better = |cand: &TpWindowEvent, best: &Option<TpWindowEvent>| -> bool {
            match best {
                None => true,
                Some(b) => {
                    cand.time < b.time || (cand.time == b.time && cand.object.id < b.object.id)
                }
            }
        };

        // Leave events: straight from the result set.
        for &item in result {
            let m = Rect::centered(item.point, hx, hy);
            if let Some((_, t_out)) = m.ray_interval(c, dir) {
                if t_out >= 0.0 && t_out <= t_max {
                    let ev = TpWindowEvent {
                        object: item,
                        change: TpWindowChange::Leave,
                        time: t_out.max(0.0),
                    };
                    if better(&ev, &best) {
                        best = Some(ev);
                    }
                }
            }
        }

        // Enter events: best-first search ordered by subtree entry time.
        let queue = &mut scratch.queue;
        queue.clear();
        if !self.is_empty() {
            queue.push(Reverse((OrdF64::new(0.0), self.root)));
        }
        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            probe.pop();
            let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
            if lb > horizon {
                break;
            }
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                for &item in &node.items {
                    if result.iter().any(|r| r.id == item.id) {
                        continue;
                    }
                    let m = Rect::centered(item.point, hx, hy);
                    if let Some((t_in, t_out)) = m.ray_interval(c, dir) {
                        // Strictly-future entry only: the object is
                        // outside now, so t_in > 0 (up to float noise).
                        if t_out >= 0.0 && t_in <= t_max {
                            let ev = TpWindowEvent {
                                object: item,
                                change: TpWindowChange::Enter,
                                time: t_in.max(0.0),
                            };
                            if ev.time <= t_max && better(&ev, &best) {
                                best = Some(ev);
                            }
                        }
                    }
                }
            } else {
                for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                    let inflated = mbr.inflate(hx, hy);
                    let lb = match inflated.ray_interval(c, dir) {
                        Some((t_in, t_out)) if t_out >= 0.0 => t_in.max(0.0),
                        _ => continue,
                    };
                    let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
                    if lb <= horizon {
                        queue.push(Reverse((OrdF64::new(lb), child)));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTreeConfig;

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64 * 10.0;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    fn brute(
        items: &[Item],
        c: Point,
        dir: Vec2,
        t_max: f64,
        hx: f64,
        hy: f64,
        result: &[Item],
    ) -> Option<TpWindowEvent> {
        let mut best: Option<TpWindowEvent> = None;
        let mut consider = |ev: TpWindowEvent| {
            if ev.time <= t_max
                && best.as_ref().is_none_or(|b| {
                    ev.time < b.time || (ev.time == b.time && ev.object.id < b.object.id)
                })
            {
                best = Some(ev);
            }
        };
        for &item in items {
            let m = Rect::centered(item.point, hx, hy);
            let in_result = result.iter().any(|r| r.id == item.id);
            if let Some((t_in, t_out)) = m.ray_interval(c, dir) {
                if in_result {
                    if t_out >= 0.0 {
                        consider(TpWindowEvent {
                            object: item,
                            change: TpWindowChange::Leave,
                            time: t_out.max(0.0),
                        });
                    }
                } else if t_out >= 0.0 {
                    consider(TpWindowEvent {
                        object: item,
                        change: TpWindowChange::Enter,
                        time: t_in.max(0.0),
                    });
                }
            }
        }
        best
    }

    #[test]
    fn paper_fig6a_style_example() {
        // Window ±1 around c=(4,5) moving east. Object b at (5.8,5)
        // inside? no: |5.8−4|=1.8 > 1 → outside, enters at t=0.8.
        // Object a at (4.5,5) inside, leaves when c passes 5.5 → t=1.5.
        let items = vec![
            Item::new(Point::new(4.5, 5.0), 0),
            Item::new(Point::new(5.8, 5.0), 1),
            Item::new(Point::new(0.0, 0.0), 2),
        ];
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(4.0, 5.0);
        let result: Vec<Item> = vec![items[0]];
        let ev = tree
            .tp_window(c, Vec2::new(1.0, 0.0), 10.0, 1.0, 1.0, &result)
            .unwrap();
        assert_eq!(ev.object.id, 1);
        assert_eq!(ev.change, TpWindowChange::Enter);
        assert!((ev.time - 0.8).abs() < 1e-12);
        // With the entering object excluded (pretend it's not there),
        // the leave event surfaces.
        let no_b: Vec<Item> = vec![items[0], items[2]];
        let tree2 = RTree::bulk_load(no_b.clone(), RTreeConfig::tiny());
        let ev = tree2
            .tp_window(c, Vec2::new(1.0, 0.0), 10.0, 1.0, 1.0, &result)
            .unwrap();
        assert_eq!(ev.change, TpWindowChange::Leave);
        assert!((ev.time - 1.5).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force() {
        let (tree, items) = build(300, 13);
        for &(cx, cy, theta) in &[(5.0, 5.0, 0.3), (1.0, 9.0, 4.0), (9.5, 0.5, 2.2)] {
            let c = Point::new(cx, cy);
            let dir = Vec2::from_angle(theta);
            let (hx, hy) = (0.4, 0.3);
            let w = Rect::centered(c, hx, hy);
            let result: Vec<Item> = items
                .iter()
                .filter(|i| w.contains(i.point))
                .copied()
                .collect();
            for t_max in [0.5, 3.0, 20.0] {
                let got = tree.tp_window(c, dir, t_max, hx, hy, &result);
                let want = brute(&items, c, dir, t_max, hx, hy, &result);
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        assert!((g.time - w.time).abs() < 1e-9, "{g:?} vs {w:?}");
                        assert_eq!(g.change, w.change);
                    }
                    (g, w) => panic!("mismatch: {g:?} vs {w:?}"),
                }
            }
        }
    }

    #[test]
    fn event_really_changes_the_result() {
        let (tree, items) = build(200, 21);
        let c = Point::new(3.0, 7.0);
        let dir = Vec2::new(0.8, -0.6);
        let (hx, hy) = (0.5, 0.5);
        let w = Rect::centered(c, hx, hy);
        let result: Vec<Item> = items
            .iter()
            .filter(|i| w.contains(i.point))
            .copied()
            .collect();
        if let Some(ev) = tree.tp_window(c, dir, 20.0, hx, hy, &result) {
            let before = Rect::centered(c + dir * (ev.time * 0.999), hx, hy);
            let after = Rect::centered(c + dir * (ev.time + 1e-6), hx, hy);
            let count = |w: &Rect| items.iter().filter(|i| w.contains(i.point)).count();
            assert_eq!(
                count(&before),
                result.len(),
                "result stable until the event"
            );
            assert_ne!(count(&after), result.len(), "result changes at the event");
        }
    }

    #[test]
    fn stable_result_returns_none() {
        // A single far-away point, moving away from it.
        let items = vec![Item::new(Point::new(9.0, 9.0), 0)];
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let ev = tree.tp_window(
            Point::new(1.0, 1.0),
            Vec2::new(
                -std::f64::consts::FRAC_1_SQRT_2,
                -std::f64::consts::FRAC_1_SQRT_2,
            ),
            100.0,
            0.5,
            0.5,
            &[],
        );
        assert!(ev.is_none());
    }
}
