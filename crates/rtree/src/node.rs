//! Node and entry representation — struct-of-arrays storage.
//!
//! Nodes live in an arena (`Vec<Node>`) inside [`crate::RTree`]; a
//! [`NodeId`] is an index into it. Each node corresponds to one disk
//! page in the cost model.
//!
//! Storage is split by node kind so the query hot paths scan contiguous
//! arrays instead of chasing an enum per slot: internal nodes hold
//! parallel `mbrs`/`children` vectors (a `mindist`/intersection sweep
//! touches only the rect array), leaves hold a plain `items` vector (no
//! degenerate per-point `Rect` is ever materialized). The [`Entry`] enum
//! survives as the *transient* currency of the mutation paths (insert,
//! split, forced reinsertion, bulk packing), which shuffle heterogeneous
//! slot lists around and are not performance-critical.

use lbq_geom::{Point, Rect};

/// Index of a node in the tree arena. Doubles as the *page id* in the
/// buffer-pool cost model.
pub type NodeId = u32;

/// A data object: a point plus an opaque record identifier.
///
/// `id` is what a real system would store as the record pointer; the
/// workloads use it to identify objects across queries (influence sets,
/// result diffs) without comparing floating-point coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    pub point: Point,
    pub id: u64,
}

impl Item {
    /// Convenience constructor.
    #[inline]
    pub fn new(point: Point, id: u64) -> Self {
        Item { point, id }
    }
}

/// One logical slot of a node, materialized only on the mutation paths
/// (queries read the split arrays directly).
#[derive(Debug, Clone)]
pub(crate) enum Entry {
    /// Internal entry: child page and its minimum bounding rectangle.
    Child { mbr: Rect, node: NodeId },
    /// Leaf entry: a data point.
    Leaf(Item),
}

impl Entry {
    /// The MBR of the entry (degenerate rectangle for a point).
    #[inline]
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            Entry::Child { mbr, .. } => *mbr,
            Entry::Leaf(item) => Rect::from_point(item.point),
        }
    }

    /// The child id of an internal entry. Panics on leaf entries —
    /// callers always know the level they are traversing.
    #[inline]
    pub(crate) fn child(&self) -> NodeId {
        match self {
            Entry::Child { node, .. } => *node,
            // lbq-check: allow(no-unwrap-core) — typed-level traversal contract
            Entry::Leaf(_) => panic!("child() on a leaf entry"),
        }
    }

    /// The item of a leaf entry. Panics on internal entries. Queries
    /// read leaf items directly from the SoA arrays; this accessor
    /// remains for tests and future mutation-path use.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub(crate) fn item(&self) -> Item {
        match self {
            Entry::Leaf(item) => *item,
            // lbq-check: allow(no-unwrap-core) — typed-level traversal contract
            Entry::Child { .. } => panic!("item() on an internal entry"),
        }
    }
}

/// A tree node — one disk page, stored struct-of-arrays.
///
/// Exactly one representation is populated per node: leaves (level 0)
/// use `items`; internal nodes use the parallel `mbrs` + `children`
/// pair. The unused vectors stay empty (a `Vec` at capacity 0 costs
/// three words and no heap).
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Level in the tree: 0 for leaves, increasing toward the root.
    pub level: u32,
    /// Internal nodes: child MBRs, index-parallel with `children`.
    pub mbrs: Vec<Rect>,
    /// Internal nodes: child page ids.
    pub children: Vec<NodeId>,
    /// Leaf nodes: the data points.
    pub items: Vec<Item>,
}

impl Node {
    pub(crate) fn new_leaf() -> Self {
        Node {
            level: 0,
            mbrs: Vec::new(),
            children: Vec::new(),
            items: Vec::new(),
        }
    }

    pub(crate) fn new_internal(level: u32) -> Self {
        debug_assert!(level > 0);
        Node {
            level,
            mbrs: Vec::new(),
            children: Vec::new(),
            items: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of occupied slots (entries) in this node.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        if self.is_leaf() {
            self.items.len()
        } else {
            self.children.len()
        }
    }

    /// Appends a slot, dispatching on the entry kind. Debug-asserts the
    /// kind matches the node level.
    pub(crate) fn push_entry(&mut self, entry: Entry) {
        match entry {
            Entry::Child { mbr, node } => {
                debug_assert!(!self.is_leaf(), "child entry pushed into a leaf");
                self.mbrs.push(mbr);
                self.children.push(node);
            }
            Entry::Leaf(item) => {
                debug_assert!(self.is_leaf(), "leaf entry pushed into an internal node");
                self.items.push(item);
            }
        }
    }

    /// Drains this node's slots into a transient entry list (mutation
    /// paths only), leaving the node empty.
    pub(crate) fn take_entries(&mut self) -> Vec<Entry> {
        if self.is_leaf() {
            self.items.drain(..).map(Entry::Leaf).collect()
        } else {
            self.mbrs
                .drain(..)
                .zip(self.children.drain(..))
                .map(|(mbr, node)| Entry::Child { mbr, node })
                .collect()
        }
    }

    /// Replaces this node's slots from a transient entry list.
    pub(crate) fn set_entries(&mut self, entries: Vec<Entry>) {
        self.mbrs.clear();
        self.children.clear();
        self.items.clear();
        for e in entries {
            self.push_entry(e);
        }
    }

    /// Builds a node at `level` from a transient entry list.
    pub(crate) fn from_entries(level: u32, entries: Vec<Entry>) -> Self {
        let mut node = Node {
            level,
            mbrs: Vec::new(),
            children: Vec::new(),
            items: Vec::new(),
        };
        node.set_entries(entries);
        node
    }

    /// Removes the slot at `i` (internal nodes; used by delete's
    /// condense step).
    pub(crate) fn remove_child(&mut self, i: usize) {
        debug_assert!(!self.is_leaf());
        self.mbrs.remove(i);
        self.children.remove(i);
    }

    /// The node's own MBR — the union of its slots' MBRs. `None` for an
    /// empty node (only the root of an empty tree).
    pub(crate) fn mbr(&self) -> Option<Rect> {
        if self.is_leaf() {
            let mut it = self.items.iter();
            let mut r = Rect::from_point(it.next()?.point);
            for item in it {
                r.expand_to(item.point);
            }
            Some(r)
        } else {
            let mut it = self.mbrs.iter();
            let mut r = *it.next()?;
            for m in it {
                r.expand_to_rect(m);
            }
            Some(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_mbr_of_point_is_degenerate() {
        let e = Entry::Leaf(Item::new(Point::new(2.0, 3.0), 7));
        let r = e.mbr();
        assert_eq!(r, Rect::new(2.0, 3.0, 2.0, 3.0));
        assert_eq!(e.item().id, 7);
    }

    #[test]
    fn node_mbr_unions_slots() {
        let mut n = Node::new_leaf();
        assert!(n.mbr().is_none());
        n.push_entry(Entry::Leaf(Item::new(Point::new(0.0, 0.0), 1)));
        n.push_entry(Entry::Leaf(Item::new(Point::new(4.0, -2.0), 2)));
        n.push_entry(Entry::Leaf(Item::new(Point::new(1.0, 5.0), 3)));
        assert_eq!(n.mbr().unwrap(), Rect::new(0.0, -2.0, 4.0, 5.0));
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn entries_roundtrip_preserves_order() {
        let mut n = Node::new_internal(2);
        n.push_entry(Entry::Child {
            mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
            node: 4,
        });
        n.push_entry(Entry::Child {
            mbr: Rect::new(2.0, 2.0, 3.0, 3.0),
            node: 9,
        });
        let entries = n.take_entries();
        assert_eq!(n.len(), 0);
        assert_eq!(entries.len(), 2);
        let rebuilt = Node::from_entries(2, entries);
        assert_eq!(rebuilt.children, vec![4, 9]);
        assert_eq!(rebuilt.mbrs[1], Rect::new(2.0, 2.0, 3.0, 3.0));
    }

    #[test]
    #[should_panic]
    fn child_on_leaf_panics() {
        let e = Entry::Leaf(Item::new(Point::ORIGIN, 0));
        let _ = e.child();
    }

    #[test]
    #[should_panic]
    fn item_on_internal_panics() {
        let e = Entry::Child {
            mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
            node: 3,
        };
        let _ = e.item();
    }
}
