//! Node and entry representation.
//!
//! Nodes live in an arena (`Vec<Node>`) inside [`crate::RTree`]; a
//! [`NodeId`] is an index into it. Each node corresponds to one disk
//! page in the cost model. Leaf nodes (level 0) hold data points;
//! internal nodes hold `(MBR, child)` entries.

use lbq_geom::{Point, Rect};

/// Index of a node in the tree arena. Doubles as the *page id* in the
/// buffer-pool cost model.
pub type NodeId = u32;

/// A data object: a point plus an opaque record identifier.
///
/// `id` is what a real system would store as the record pointer; the
/// workloads use it to identify objects across queries (influence sets,
/// result diffs) without comparing floating-point coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    pub point: Point,
    pub id: u64,
}

impl Item {
    /// Convenience constructor.
    #[inline]
    pub fn new(point: Point, id: u64) -> Self {
        Item { point, id }
    }
}

/// One slot of a node.
#[derive(Debug, Clone)]
pub(crate) enum Entry {
    /// Internal entry: child page and its minimum bounding rectangle.
    Child { mbr: Rect, node: NodeId },
    /// Leaf entry: a data point.
    Leaf(Item),
}

impl Entry {
    /// The MBR of the entry (degenerate rectangle for a point).
    #[inline]
    pub(crate) fn mbr(&self) -> Rect {
        match self {
            Entry::Child { mbr, .. } => *mbr,
            Entry::Leaf(item) => Rect::from_point(item.point),
        }
    }

    /// The child id of an internal entry. Panics on leaf entries —
    /// callers always know the level they are traversing.
    #[inline]
    pub(crate) fn child(&self) -> NodeId {
        match self {
            Entry::Child { node, .. } => *node,
            // lbq-check: allow(no-unwrap-core) — typed-level traversal contract
            Entry::Leaf(_) => panic!("child() on a leaf entry"),
        }
    }

    /// The item of a leaf entry. Panics on internal entries.
    #[inline]
    pub(crate) fn item(&self) -> Item {
        match self {
            Entry::Leaf(item) => *item,
            // lbq-check: allow(no-unwrap-core) — typed-level traversal contract
            Entry::Child { .. } => panic!("item() on an internal entry"),
        }
    }
}

/// A tree node — one disk page.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Level in the tree: 0 for leaves, increasing toward the root.
    pub level: u32,
    pub entries: Vec<Entry>,
}

impl Node {
    pub(crate) fn new_leaf() -> Self {
        Node {
            level: 0,
            entries: Vec::new(),
        }
    }

    pub(crate) fn new_internal(level: u32) -> Self {
        debug_assert!(level > 0);
        Node {
            level,
            entries: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The node's own MBR — the union of its entries' MBRs. `None` for an
    /// empty node (only the root of an empty tree).
    pub(crate) fn mbr(&self) -> Option<Rect> {
        let mut it = self.entries.iter();
        let mut r = it.next()?.mbr();
        for e in it {
            r.expand_to_rect(&e.mbr());
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_mbr_of_point_is_degenerate() {
        let e = Entry::Leaf(Item::new(Point::new(2.0, 3.0), 7));
        let r = e.mbr();
        assert_eq!(r, Rect::new(2.0, 3.0, 2.0, 3.0));
        assert_eq!(e.item().id, 7);
    }

    #[test]
    fn node_mbr_unions_entries() {
        let mut n = Node::new_leaf();
        assert!(n.mbr().is_none());
        n.entries
            .push(Entry::Leaf(Item::new(Point::new(0.0, 0.0), 1)));
        n.entries
            .push(Entry::Leaf(Item::new(Point::new(4.0, -2.0), 2)));
        n.entries
            .push(Entry::Leaf(Item::new(Point::new(1.0, 5.0), 3)));
        assert_eq!(n.mbr().unwrap(), Rect::new(0.0, -2.0, 4.0, 5.0));
    }

    #[test]
    #[should_panic]
    fn child_on_leaf_panics() {
        let e = Entry::Leaf(Item::new(Point::ORIGIN, 0));
        let _ = e.child();
    }

    #[test]
    #[should_panic]
    fn item_on_internal_panics() {
        let e = Entry::Child {
            mbr: Rect::new(0.0, 0.0, 1.0, 1.0),
            node: 3,
        };
        let _ = e.item();
    }
}
