//! The tree handle: arena storage, metering, and structural invariants.

use crate::node::{Item, Node, NodeId};
use crate::stats::{LruBuffer, Stats, StatsCell};
use crate::util::{idx, node_id};
use crate::RTreeConfig;
use lbq_geom::Rect;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Leaf-coordinate mirror of a packed arena (built by
/// [`RTree::repack`]): every leaf's item coordinates, bit-identical to
/// the `Item`s, split into two flat arrays in arena (= DFS) order. The
/// leaf scan kernels run their distance prepass over these branch-free
/// column slices — which the compiler vectorizes and which waste no
/// cache bandwidth on the interleaved `id`s — and touch the `Item`
/// array only for the few survivors. Any structural mutation drops the
/// mirror (see [`RTree::node_mut`]); queries fall back to the row
/// layout and return the same bits.
#[derive(Debug, Default)]
pub(crate) struct LeafSoa {
    pub(crate) xs: Vec<f64>,
    pub(crate) ys: Vec<f64>,
    /// Prefix offsets per node id (`len == nodes.len() + 1`); internal
    /// nodes own an empty range.
    pub(crate) start: Vec<u32>,
    /// Child-MBR columns, the interior counterpart of `xs`/`ys`: every
    /// internal node's child rectangles split into four flat arrays, so
    /// the per-child `mindist` gate — up to `max_entries` evaluations
    /// per node visit at paper fanout — runs as a vectorized prepass
    /// too. Leaf nodes own an empty range.
    pub(crate) cxmin: Vec<f64>,
    pub(crate) cymin: Vec<f64>,
    pub(crate) cxmax: Vec<f64>,
    pub(crate) cymax: Vec<f64>,
    /// Prefix offsets per node id into the child-MBR columns
    /// (`len == nodes.len() + 1`).
    pub(crate) cstart: Vec<u32>,
}

/// A disk-model R\*-tree over 2D points. See the crate docs for the
/// feature inventory.
///
/// A built tree is `Send + Sync`: all read queries take `&self`, the
/// NA/PA meter is relaxed atomics, and the simulated LRU buffer sits
/// behind a `Mutex` — so an `Arc<RTree>` can be shared across worker
/// threads (this is what `lbq-serve` does). Note the buffer lock makes
/// *metering* a serialization point; `lbq-serve` benches therefore run
/// unbuffered unless PA is being measured.
#[derive(Debug)]
pub struct RTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) config: RTreeConfig,
    pub(crate) len: usize,
    pub(crate) stats: StatsCell,
    pub(crate) buffer: Mutex<Option<LruBuffer>>,
    /// Mirror of `buffer.is_some()`, so the unbuffered hot path can
    /// skip the lock entirely (checked relaxed in [`RTree::access`]).
    pub(crate) buffered: std::sync::atomic::AtomicBool,
    /// Column mirror of the leaf coordinates, present only on packed
    /// arenas (see [`LeafSoa`]).
    pub(crate) soa: Option<LeafSoa>,
}

// Compile-time proof of the sharing contract stated above: an
// `Arc<RTree>` crosses worker-thread boundaries in lbq-serve, so a
// field change that loses Send or Sync must fail the build, not a
// stress test.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RTree>();
};

impl RTree {
    /// Creates an empty tree.
    pub fn new(config: RTreeConfig) -> Self {
        RTree {
            nodes: vec![Node::new_leaf()],
            free: Vec::new(),
            root: 0,
            config,
            len: 0,
            stats: StatsCell::default(),
            buffer: Mutex::new(None),
            buffered: std::sync::atomic::AtomicBool::new(false),
            soa: None,
        }
    }

    /// Number of data points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree stores no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height: number of levels (1 for a root-only tree).
    pub fn height(&self) -> u32 {
        self.nodes[idx(self.root)].level + 1
    }

    /// Number of live nodes (= pages occupied on disk in the cost
    /// model).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// The structural configuration.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// MBR of the whole dataset, `None` when empty.
    pub fn mbr(&self) -> Option<Rect> {
        self.nodes[idx(self.root)].mbr()
    }

    /// Attaches an LRU buffer of `pages` pages (replacing any existing
    /// buffer, cold). Pass the result of
    /// `(tree.node_count() as f64 * 0.1).ceil()` to reproduce the paper's
    /// "10% of the R-tree size" setting.
    pub fn set_buffer(&self, pages: usize) {
        *self.buf() = Some(LruBuffer::new(pages));
        self.buffered.store(true, Ordering::Release);
    }

    /// Detaches the buffer (PA becomes equal to NA again).
    pub fn clear_buffer(&self) {
        *self.buf() = None;
        self.buffered.store(false, Ordering::Release);
    }

    /// Locks the buffer slot (poison-proof: the buffer is a meter, a
    /// panicking query leaves it in a usable state).
    #[inline]
    pub(crate) fn buf(&self) -> std::sync::MutexGuard<'_, Option<LruBuffer>> {
        self.buffer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Convenience: attach a buffer sized as `fraction` of the current
    /// node count, as the paper does with 10%.
    pub fn set_buffer_fraction(&self, fraction: f64) {
        // lbq-check: allow(lossy-cast) — page count is small, positive, finite
        let pages = ((self.node_count() as f64) * fraction).ceil().max(1.0) as usize;
        self.set_buffer(pages);
    }

    /// Runs `f` and returns its result together with the NA/PA cost
    /// the tree incurred *inside* `f`, measured as a snapshot delta.
    ///
    /// The counters are never reset (the legacy snapshot-and-reset
    /// `take_stats` was removed after its deprecation cycle), so scopes
    /// nest safely: an outer `with_stats` sees the sum of everything
    /// inside it, inner scopes see only their own slice, and concurrent
    /// users of [`RTree::stats`] are undisturbed.
    ///
    /// The meter is tree-global: when other threads query the same tree
    /// concurrently, the delta includes their accesses too. For
    /// per-query attribution under concurrency, scope aggregate deltas
    /// around a whole parallel batch and divide (what `lbq-serve`'s
    /// bench does), or measure single-threaded.
    ///
    /// ```
    /// # use lbq_rtree::{RTree, RTreeConfig, Item};
    /// # use lbq_geom::Point;
    /// # let mut tree = RTree::new(RTreeConfig::tiny());
    /// # for i in 0..100 { tree.insert(Item::new(Point::new(i as f64, 0.0), i)); }
    /// let (result, cost) = tree.with_stats(|t| t.knn(Point::new(3.0, 0.0), 4));
    /// assert_eq!(result.len(), 4);
    /// assert!(cost.node_accesses > 0);
    /// ```
    pub fn with_stats<R>(&self, f: impl FnOnce(&Self) -> R) -> (R, Stats) {
        let before = self.stats.snapshot();
        let out = f(self);
        (out, self.stats.snapshot().delta_since(before))
    }

    /// Current counters without resetting.
    pub fn stats(&self) -> Stats {
        self.stats.snapshot()
    }

    /// `true` when an LRU buffer is attached (PA < NA possible).
    pub fn has_buffer(&self) -> bool {
        self.buffered.load(Ordering::Acquire)
    }

    /// Registers a read of `node` with the meter and the buffer.
    ///
    /// The unbuffered path (the serving configuration) is lock-free:
    /// two relaxed atomic increments. Only an attached LRU buffer — a
    /// sequential disk-model simulation by nature — takes the lock.
    #[inline]
    pub(crate) fn access(&self, node: NodeId) {
        self.stats.node_accesses.fetch_add(1, Ordering::Relaxed);
        // A stale read only mis-buckets one access — the None arm below
        // absorbs the race with clear_buffer — while an Acquire here
        // would tax every query.
        // lbq-check: allow(atomic-ordering) — deliberately Relaxed; the None arm absorbs the clear_buffer race
        let faulted = if self.buffered.load(Ordering::Relaxed) {
            match self.buf().as_mut() {
                Some(b) => b.touch(node),
                None => true, // raced with clear_buffer: count as a read
            }
        } else {
            true // unbuffered: every access is a page read
        };
        if faulted {
            self.stats.page_faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[idx(id)]
    }

    /// Every structural mutation flows through here, [`RTree::alloc`],
    /// or [`RTree::dealloc`] — so dropping the leaf-coordinate mirror
    /// at these three choke points keeps a stale column view from ever
    /// being scanned.
    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.soa = None;
        &mut self.nodes[idx(id)]
    }

    /// Allocates a node slot (reusing freed pages first).
    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        self.soa = None;
        if let Some(id) = self.free.pop() {
            self.nodes[idx(id)] = node;
            id
        } else {
            let id = node_id(self.nodes.len());
            self.nodes.push(node);
            id
        }
    }

    /// Returns a node slot to the free list.
    pub(crate) fn dealloc(&mut self, id: NodeId) {
        self.soa = None;
        self.nodes[idx(id)] = Node::new_leaf();
        self.free.push(id);
    }

    /// Column view of a leaf's item coordinates, when the mirror is
    /// live (packed arena, unmutated since). The slices are exactly
    /// `node.items.len()` long and bit-identical to the item points,
    /// so scan kernels may use either representation interchangeably.
    #[inline]
    pub(crate) fn leaf_coords(&self, id: NodeId) -> Option<(&[f64], &[f64])> {
        let soa = self.soa.as_ref()?;
        // lbq-check: allow(lossy-cast) — u32 → usize is widening here
        let lo = soa.start[idx(id)] as usize;
        // lbq-check: allow(lossy-cast) — u32 → usize is widening here
        let hi = soa.start[idx(id) + 1] as usize;
        Some((&soa.xs[lo..hi], &soa.ys[lo..hi]))
    }

    /// Column view of an internal node's child MBRs, when the mirror is
    /// live. Slices are exactly `node.children.len()` long, in child
    /// order, bit-identical to `node.mbrs`.
    #[inline]
    #[allow(clippy::type_complexity)]
    pub(crate) fn child_mbr_cols(&self, id: NodeId) -> Option<(&[f64], &[f64], &[f64], &[f64])> {
        let soa = self.soa.as_ref()?;
        // lbq-check: allow(lossy-cast) — u32 → usize is widening here
        let lo = soa.cstart[idx(id)] as usize;
        // lbq-check: allow(lossy-cast) — u32 → usize is widening here
        let hi = soa.cstart[idx(id) + 1] as usize;
        Some((
            &soa.cxmin[lo..hi],
            &soa.cymin[lo..hi],
            &soa.cxmax[lo..hi],
            &soa.cymax[lo..hi],
        ))
    }

    /// Iterates over all stored items (unmetered — a maintenance scan,
    /// not a query).
    pub fn iter_items(&self) -> impl Iterator<Item = Item> + '_ {
        let mut stack = vec![self.root];
        let mut pending: Vec<Item> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(item) = pending.pop() {
                return Some(item);
            }
            let id = stack.pop()?;
            let node = &self.nodes[idx(id)];
            if node.is_leaf() {
                pending.extend(node.items.iter().copied());
            } else {
                stack.extend(node.children.iter().copied());
            }
        })
    }

    /// Verifies every structural invariant; returns a description of the
    /// first violation. Used by tests and debug assertions, never by
    /// query paths.
    ///
    /// Checked invariants:
    /// 1. parent MBRs exactly tight over children;
    /// 2. all leaves at level 0, levels decrease by 1 per step;
    /// 3. entry counts within `[min_entries, max_entries]` for non-root
    ///    nodes, root has ≥ 2 entries unless it is a leaf;
    /// 4. stored item count matches `len`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut item_count = 0usize;
        self.check_node(self.root, None, true, &mut item_count)?;
        if item_count != self.len {
            return Err(format!(
                "len mismatch: counted {item_count}, recorded {}",
                self.len
            ));
        }
        // 5. when the leaf-coordinate mirror is live, it must agree with
        //    the items bit-for-bit (the scan kernels treat the two
        //    representations as interchangeable).
        if let Some(soa) = &self.soa {
            if soa.start.len() != self.nodes.len() + 1 || soa.cstart.len() != self.nodes.len() + 1 {
                return Err(format!(
                    "coordinate mirror offsets cover {}/{} nodes, arena has {}",
                    soa.start.len().saturating_sub(1),
                    soa.cstart.len().saturating_sub(1),
                    self.nodes.len()
                ));
            }
            for (i, node) in self.nodes.iter().enumerate() {
                // lbq-check: allow(lossy-cast) — u32 → usize is widening here
                let (lo, hi) = (soa.start[i] as usize, soa.start[i + 1] as usize);
                if hi - lo != node.items.len() {
                    return Err(format!(
                        "leaf mirror slice for node {i} holds {} coords, node has {} items",
                        hi - lo,
                        node.items.len()
                    ));
                }
                for (j, item) in node.items.iter().enumerate() {
                    if soa.xs[lo + j].to_bits() != item.point.x.to_bits()
                        || soa.ys[lo + j].to_bits() != item.point.y.to_bits()
                    {
                        return Err(format!("leaf mirror coords diverge at node {i} slot {j}"));
                    }
                }
                // lbq-check: allow(lossy-cast) — u32 → usize is widening here
                let (clo, chi) = (soa.cstart[i] as usize, soa.cstart[i + 1] as usize);
                if chi - clo != node.mbrs.len() {
                    return Err(format!(
                        "child-MBR mirror slice for node {i} holds {} rects, node has {}",
                        chi - clo,
                        node.mbrs.len()
                    ));
                }
                for (j, mbr) in node.mbrs.iter().enumerate() {
                    if soa.cxmin[clo + j].to_bits() != mbr.xmin.to_bits()
                        || soa.cymin[clo + j].to_bits() != mbr.ymin.to_bits()
                        || soa.cxmax[clo + j].to_bits() != mbr.xmax.to_bits()
                        || soa.cymax[clo + j].to_bits() != mbr.ymax.to_bits()
                    {
                        return Err(format!("child-MBR mirror diverges at node {i} slot {j}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Alias of [`Self::check_invariants`] — the name used by the
    /// workspace-wide invariant layer (see `lbq_core::invariants`).
    pub fn validate(&self) -> Result<(), String> {
        self.check_invariants()
    }

    /// Debug-build invariant trap, threaded through the mutation paths
    /// (bulk load, delete, and amortized insert). Compiled out in
    /// release builds.
    // lbq-check: cold — debug_assertions-only; absent from the release builds the zero-alloc proof measures
    #[inline]
    pub(crate) fn debug_validate(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.check_invariants() {
            // lbq-check: allow(no-unwrap-core) — debug-only invariant trap
            panic!("R-tree invariant violated: {e}");
        }
    }

    fn check_node(
        &self,
        id: NodeId,
        expected_mbr: Option<Rect>,
        is_root: bool,
        item_count: &mut usize,
    ) -> Result<(), String> {
        let node = self.node(id);
        let n = node.len();
        if is_root {
            if !node.is_leaf() && n < 2 {
                return Err(format!("internal root with {n} entries"));
            }
        } else if n < self.config.min_entries || n > self.config.max_entries {
            return Err(format!(
                "node {id} at level {} has {n} entries (bounds {}..={})",
                node.level, self.config.min_entries, self.config.max_entries
            ));
        }
        if let Some(expect) = expected_mbr {
            let actual = node
                .mbr()
                .ok_or_else(|| format!("empty non-root node {id}"))?;
            if !rect_close(&expect, &actual) {
                return Err(format!(
                    "node {id} MBR {actual:?} differs from parent entry {expect:?}"
                ));
            }
        }
        if node.is_leaf() {
            if !node.children.is_empty() || !node.mbrs.is_empty() {
                return Err(format!("internal slots populated in leaf {id}"));
            }
            *item_count += n;
            return Ok(());
        }
        if !node.items.is_empty() {
            return Err(format!("leaf items in internal node {id}"));
        }
        if node.mbrs.len() != node.children.len() {
            return Err(format!(
                "node {id} parallel arrays diverge: {} MBRs vs {} children",
                node.mbrs.len(),
                node.children.len()
            ));
        }
        for (&mbr, &child) in node.mbrs.iter().zip(&node.children) {
            let child_node = self.node(child);
            if child_node.level + 1 != node.level {
                return Err(format!(
                    "child {child} level {} under node {id} level {}",
                    child_node.level, node.level
                ));
            }
            self.check_node(child, Some(mbr), false, item_count)?;
        }
        Ok(())
    }
}

fn rect_close(a: &Rect, b: &Rect) -> bool {
    let eps = lbq_geom::EPS
        * a.width()
            .abs()
            .max(a.height().abs())
            .max(b.width().abs())
            .max(b.height().abs())
            .max(1.0);
    (a.xmin - b.xmin).abs() <= eps
        && (a.ymin - b.ymin).abs() <= eps
        && (a.xmax - b.xmax).abs() <= eps
        && (a.ymax - b.ymax).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_geom::Point;

    #[test]
    fn tree_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RTree>();
        // The serving layer relies on exactly this bound:
        assert_send_sync::<std::sync::Arc<RTree>>();
    }

    #[test]
    fn concurrent_readers_meter_every_access() {
        let mut t = RTree::new(RTreeConfig::tiny());
        for i in 0..300 {
            t.insert(Item::new(
                Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64),
                i,
            ));
        }
        let t = std::sync::Arc::new(t);
        let before = t.stats();
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut per_thread = 0u64;
                    for i in 0..50 {
                        let q = Point::new((w * 13 + i) as f64 % 100.0, (i * 7) as f64 % 100.0);
                        let (_, s) = t.with_stats(|t| t.knn(q, 3));
                        per_thread += s.node_accesses;
                    }
                    per_thread
                })
            })
            .collect();
        let _ = handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>();
        let delta = t.stats().delta_since(before);
        // Relaxed increments lose nothing: the global meter advanced.
        // (Per-thread with_stats deltas overlap under concurrency, so
        // only the global total is asserted.)
        assert!(delta.node_accesses > 0);
        assert_eq!(delta.node_accesses, delta.page_faults); // unbuffered
    }

    #[test]
    fn empty_tree_shape() {
        let t = RTree::new(RTreeConfig::tiny());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_count(), 1);
        assert!(t.mbr().is_none());
        assert!(t.check_invariants().is_ok());
        assert_eq!(t.iter_items().count(), 0);
    }

    #[test]
    fn metering_without_buffer_pa_equals_na() {
        let mut t = RTree::new(RTreeConfig::tiny());
        for i in 0..100 {
            t.insert(Item::new(Point::new(i as f64, (i * 7 % 13) as f64), i));
        }
        let (_, s) = t.with_stats(|t| t.window(&Rect::new(0.0, 0.0, 50.0, 13.0)));
        assert!(s.node_accesses > 0);
        assert_eq!(s.node_accesses, s.page_faults);
    }

    #[test]
    fn metering_with_huge_buffer_faults_once_per_page() {
        let mut t = RTree::new(RTreeConfig::tiny());
        for i in 0..200 {
            t.insert(Item::new(
                Point::new((i * 37 % 100) as f64, (i * 17 % 100) as f64),
                i,
            ));
        }
        t.set_buffer(t.node_count());
        let w = Rect::new(0.0, 0.0, 100.0, 100.0);
        let (_, first) = t.with_stats(|t| t.window(&w));
        let (_, second) = t.with_stats(|t| t.window(&w));
        // Second identical query: everything resident → zero faults.
        assert_eq!(second.page_faults, 0);
        assert_eq!(first.node_accesses, second.node_accesses);
        assert!(first.page_faults > 0);
    }

    fn small_tree() -> RTree {
        let mut t = RTree::new(RTreeConfig::tiny());
        for i in 0..200 {
            t.insert(Item::new(
                Point::new((i * 37 % 100) as f64, (i * 53 % 100) as f64),
                i,
            ));
        }
        assert!(t.height() >= 2, "corruption tests need an internal level");
        t.check_invariants().unwrap();
        t
    }

    #[test]
    fn validate_catches_corrupt_child_mbr() {
        let mut t = small_tree();
        let root = t.root;
        // Shrink the first child slot's MBR so it no longer bounds the
        // child — exactly the corruption a buggy split would cause.
        let mbr = &mut t.nodes[idx(root)].mbrs[0];
        mbr.xmax = mbr.xmin;
        mbr.ymax = mbr.ymin;
        let err = t.validate().unwrap_err();
        assert!(err.contains("MBR"), "unexpected error: {err}");
    }

    #[test]
    fn validate_catches_corrupt_len() {
        let mut t = small_tree();
        t.len += 1;
        let err = t.validate().unwrap_err();
        assert!(err.contains("len mismatch"), "unexpected error: {err}");
    }

    #[test]
    fn validate_catches_corrupt_level() {
        let mut t = small_tree();
        let first_child = t.nodes[idx(t.root)].children[0];
        t.nodes[idx(first_child)].level += 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_catches_starved_node() {
        let mut t = small_tree();
        let first_child = t.nodes[idx(t.root)].children[0];
        // Drain a non-root node below min_entries behind the tree's back.
        let child = &mut t.nodes[idx(first_child)];
        if child.is_leaf() {
            child.items.truncate(1);
        } else {
            child.mbrs.truncate(1);
            child.children.truncate(1);
        }
        assert!(t.validate().is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "R-tree invariant violated")]
    fn debug_validate_traps_corruption() {
        let mut t = small_tree();
        t.len += 7;
        t.debug_validate();
    }
}
