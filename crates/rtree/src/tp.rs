//! Time-parameterized (k-)nearest-neighbor queries `[TP02]`.
//!
//! The query point moves along the ray `q + t·dir` (unit speed). Given
//! the current k-NN result set (the *inner* objects), the **influence
//! time** of an outer object `p` is the first `t` at which `p` comes at
//! least as close to the moving query as some inner object — i.e. the
//! moment the result set would change by swapping `p` in. [`RTree::tp_knn`]
//! returns the outer object with minimum influence time within a time
//! horizon, together with the inner object whose bisector it crosses.
//!
//! That pair is exactly what the validity-region construction of the
//! paper needs: the bisector of `(inner, outer)` is the next edge of the
//! (order-k) Voronoi cell in direction `dir`.
//!
//! ## Influence time of a point
//!
//! With `|dir| = 1`, `f(t) = dist²(q+t·dir, p) − dist²(q+t·dir, oᵢ)` is
//! *linear*: the quadratic `t²` terms cancel. `f(t) = f(0) − 2t·dir·(oᵢ−p)`,
//! so the crossing is `t = f(0) / (2·dir·(p − oᵢ))`, valid when the
//! denominator is positive (the bisector lies ahead).
//!
//! ## Pruning bounds for subtrees
//!
//! Two admissible lower bounds on the influence time of anything inside
//! an MBR `E` are provided (selectable, see [`TpBound`]):
//!
//! * **Loose** (default): the query and a point can close their distance
//!   gap at rate at most 2 (each moves/appears to move at speed ≤ 1), so
//!   `t ≥ (mindist(q,E) − max_i dist(q,oᵢ)) / 2`. O(1) per entry.
//! * **Exact**: the smallest `t ≥ 0` with
//!   `mindist(q+t·dir, E) ≤ max_i dist(q+t·dir, oᵢ)`, solved piecewise —
//!   `mindist²` is piecewise-quadratic in `t` with breakpoints where the
//!   moving point crosses the slab boundaries of `E`. Tighter (prunes
//!   more nodes) but costs O(k) quadratic solves per entry. The
//!   `ablation_tpnn_bound` benchmark quantifies the trade.

use crate::node::{Item, NodeId};
use crate::probe::QueryProbe;
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::{Point, Rect, Vec2};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The result-changing event found by a TP query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpEvent {
    /// The outer object that enters the result ("+p" in TP notation).
    pub object: Item,
    /// The inner object whose bisector `object` crosses first (the one
    /// that leaves the result, "−o").
    pub partner: Item,
    /// Influence time: distance traveled along `dir` until the change.
    pub time: f64,
}

/// Subtree pruning bound used by [`RTree::tp_knn_with_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TpBound {
    /// O(1) closing-speed bound (default).
    #[default]
    Loose,
    /// Piecewise-quadratic exact bound.
    Exact,
}

impl RTree {
    /// TPNN for a single nearest neighbor: the current NN is `inner`,
    /// and the query moves from `q` along unit `dir`. Returns the first
    /// result change within `t_max`, or `None` if the result is stable
    /// throughout `[0, t_max]`.
    pub fn tp_nn(&self, q: Point, dir: Vec2, t_max: f64, inner: Item) -> Option<TpEvent> {
        self.tp_knn(q, dir, t_max, std::slice::from_ref(&inner))
    }

    /// TPkNN with the default (loose) pruning bound.
    pub fn tp_knn(&self, q: Point, dir: Vec2, t_max: f64, inner: &[Item]) -> Option<TpEvent> {
        self.tp_knn_with_bound(q, dir, t_max, inner, TpBound::Loose)
    }

    /// TPkNN: finds the outer object with minimum influence time w.r.t.
    /// the current result `inner`, searching only `t ∈ [0, t_max]`.
    ///
    /// `dir` must be (approximately) unit length — influence times are
    /// *distances traveled*, which is what the location-based algorithms
    /// compare against vertex distances.
    pub fn tp_knn_with_bound(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
        bound: TpBound,
    ) -> Option<TpEvent> {
        let mut span = lbq_obs::span("rtree-tpnn");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let out = self.tp_knn_probed(q, dir, t_max, inner, bound, &mut probe);
        span.record("inner", inner.len());
        span.record("found", out.is_some());
        self.finish_query_span(&mut span, &probe, before);
        out
    }

    fn tp_knn_probed(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
        bound: TpBound,
        probe: &mut QueryProbe,
    ) -> Option<TpEvent> {
        assert!(!inner.is_empty(), "TP query needs the current result set");
        debug_assert!(
            (dir.norm() - 1.0).abs() < lbq_geom::EPS,
            "dir must be unit length, got |dir| = {}",
            dir.norm()
        );
        let d_max = inner.iter().map(|o| q.dist(o.point)).fold(0.0f64, f64::max);

        let entry_bound = |mbr: &Rect| -> f64 {
            match bound {
                TpBound::Loose => ((mbr.mindist(q) - d_max) * 0.5).max(0.0),
                TpBound::Exact => exact_entry_bound(q, dir, mbr, inner, t_max),
            }
        };

        let mut queue: BinaryHeap<Reverse<(OrdF64, NodeId)>> = BinaryHeap::new();
        queue.push(Reverse((OrdF64::new(0.0), self.root)));
        let mut best: Option<TpEvent> = None;

        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            probe.pop();
            let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
            if lb > horizon {
                break;
            }
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                for e in &node.entries {
                    let item = e.item();
                    if inner.iter().any(|o| o.id == item.id) {
                        continue;
                    }
                    if let Some((t, partner)) = influence_time(q, dir, item.point, inner) {
                        let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
                        let better = t < horizon
                            || (t <= horizon
                                && best
                                    .as_ref()
                                    .is_some_and(|b| t == b.time && item.id < b.object.id));
                        if t <= t_max && better {
                            best = Some(TpEvent {
                                object: item,
                                partner,
                                time: t,
                            });
                        }
                    }
                }
            } else {
                for e in &node.entries {
                    let lb = entry_bound(&e.mbr());
                    let horizon = best.as_ref().map_or(t_max, |ev| ev.time.min(t_max));
                    if lb <= horizon {
                        queue.push(Reverse((OrdF64::new(lb), e.child())));
                    }
                }
            }
        }
        best
    }
}

/// Influence time of point `p` against the inner set: the earliest
/// bisector crossing, with the inner partner achieving it. `None` when
/// `p` never influences the result along this ray.
pub(crate) fn influence_time(q: Point, dir: Vec2, p: Point, inner: &[Item]) -> Option<(f64, Item)> {
    let mut best: Option<(f64, Item)> = None;
    let dp_sq = q.dist_sq(p);
    for &o in inner {
        let f0 = dp_sq - q.dist_sq(o.point);
        let denom = 2.0 * dir.dot(o.point.to(p));
        let t = if f0 <= 0.0 {
            // p is already at least as close as this inner object — the
            // result changes immediately (degenerate tie or stale inner
            // set).
            Some(0.0)
        } else if denom > 0.0 {
            Some(f0 / denom)
        } else {
            None // gap grows (or stays) along this direction
        };
        if let Some(t) = t {
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, o));
            }
        }
    }
    best
}

/// Exact admissible lower bound on the influence time of any point in
/// `mbr`: the smallest `t ∈ [0, t_max]` with
/// `mindist(q+t·dir, mbr) ≤ dist(q+t·dir, oᵢ)` for some inner `oᵢ`
/// (`+∞`-like `t_max + 1` when none exists in the horizon).
fn exact_entry_bound(q: Point, dir: Vec2, mbr: &Rect, inner: &[Item], t_max: f64) -> f64 {
    // Inside the MBR right now → can influence immediately. mindist_sq
    // returns an exact 0.0 for interior points (clamped differences).
    // lbq-check: allow(float-eq)
    if mbr.mindist_sq(q) == 0.0 {
        return 0.0;
    }
    // Interval breakpoints: where the moving point crosses the slab
    // boundaries of the MBR (the clamp regime of mindist changes).
    let mut ts = vec![0.0, t_max];
    for (coord, d, lo, hi) in [
        (q.x, dir.x, mbr.xmin, mbr.xmax),
        (q.y, dir.y, mbr.ymin, mbr.ymax),
    ] {
        if d.abs() > 1e-15 {
            for b in [lo, hi] {
                let t = (b - coord) / d;
                if t > 0.0 && t < t_max {
                    ts.push(t);
                }
            }
        }
    }
    ts.sort_by(f64::total_cmp);
    ts.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    for w in ts.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 <= t0 {
            continue;
        }
        let mid = (t0 + t1) * 0.5;
        // mindist²(t) = X(t) + Y(t), each term a fixed quadratic within
        // this interval (regime determined at the midpoint).
        let (xa, xb, xc) = clamp_term(q.x, dir.x, mbr.xmin, mbr.xmax, mid);
        let (ya, yb, yc) = clamp_term(q.y, dir.y, mbr.ymin, mbr.ymax, mid);
        let (ma, mbq, mc) = (xa + ya, xb + yb, xc + yc);
        let mut earliest = f64::INFINITY;
        for o in inner {
            // dist²(q+t·dir, o) = t² + 2t·dir·(q−o) + |q−o|².
            let qo = o.point.to(q);
            let (da, db, dc) = (1.0, 2.0 * dir.dot(qo), q.dist_sq(o.point));
            // f(t) = mindist² − dist²; want earliest f(t) ≤ 0 in [t0,t1].
            let (a, b, c) = (ma - da, mbq - db, mc - dc);
            if let Some(t) = earliest_nonpositive(a, b, c, t0, t1) {
                earliest = earliest.min(t);
            }
        }
        if earliest.is_finite() {
            return earliest;
        }
    }
    t_max + 1.0
}

/// Coefficients `(a, b, c)` of the x- (or y-) term of `mindist²` as a
/// quadratic `a t² + b t + c`, for the clamp regime active at `t_probe`.
fn clamp_term(coord: f64, d: f64, lo: f64, hi: f64, t_probe: f64) -> (f64, f64, f64) {
    let pos = coord + d * t_probe;
    if pos < lo {
        // (lo − coord − d t)²
        let g = lo - coord;
        (d * d, -2.0 * d * g, g * g)
    } else if pos > hi {
        let g = coord - hi;
        (d * d, 2.0 * d * g, g * g)
    } else {
        (0.0, 0.0, 0.0)
    }
}

/// Earliest `t ∈ [t0, t1]` with `a t² + b t + c ≤ 0`, if any.
fn earliest_nonpositive(a: f64, b: f64, c: f64, t0: f64, t1: f64) -> Option<f64> {
    let f = |t: f64| a * t * t + b * t + c;
    if f(t0) <= 0.0 {
        return Some(t0);
    }
    if a.abs() < 1e-15 {
        if b.abs() < 1e-15 {
            return None; // constant positive
        }
        let root = -c / b;
        return (root > t0 && root <= t1).then_some(root);
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        // No real roots: the sign is constant, and f(t0) > 0.
        return None;
    }
    let sq = disc.sqrt();
    let r1 = (-b - sq) / (2.0 * a);
    let r2 = (-b + sq) / (2.0 * a);
    let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
    // f(t0) > 0. For a > 0, f ≤ 0 on [lo, hi]; earliest in window is lo.
    // For a < 0, f ≤ 0 outside (lo, hi); since f(t0) > 0, t0 ∈ (lo, hi),
    // so the earliest qualifying point is hi.
    let candidate = if a > 0.0 { lo } else { hi };
    (candidate > t0 && candidate <= t1).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTree, RTreeConfig};

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    /// Brute-force reference: scan all items for the minimum influence
    /// time.
    fn brute_tp(
        items: &[Item],
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
    ) -> Option<TpEvent> {
        let mut best: Option<TpEvent> = None;
        for &item in items {
            if inner.iter().any(|o| o.id == item.id) {
                continue;
            }
            if let Some((t, partner)) = influence_time(q, dir, item.point, inner) {
                if t <= t_max
                    && best
                        .as_ref()
                        .is_none_or(|b| t < b.time || (t == b.time && item.id < b.object.id))
                {
                    best = Some(TpEvent {
                        object: item,
                        partner,
                        time: t,
                    });
                }
            }
        }
        best
    }

    #[test]
    fn influence_time_hand_example() {
        // q at origin moving east; NN at (1,0); candidate at (3,0).
        // Bisector of (1,0) and (3,0) is x = 2 → influence at t = 2:
        // f(0) = 9 − 1 = 8, denom = 2·dir·(p−o) = 2·2 = 4 → t = 2.
        let q = Point::ORIGIN;
        let dir = Vec2::new(1.0, 0.0);
        let inner = [Item::new(Point::new(1.0, 0.0), 0)];
        let (t, partner) = influence_time(q, dir, Point::new(3.0, 0.0), &inner).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
        assert_eq!(partner.id, 0);
        // Moving west the candidate never influences.
        assert!(influence_time(q, Vec2::new(-1.0, 0.0), Point::new(3.0, 0.0), &inner).is_none());
    }

    #[test]
    fn tp_nn_matches_brute_force() {
        let (tree, items) = build(500, 33);
        let dirs = [
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, -1.0),
            Vec2::new(0.6, 0.8),
            Vec2::new(
                -std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ),
        ];
        for (qi, &qseed) in [(0.31, 0.47), (0.9, 0.1), (0.05, 0.95)].iter().enumerate() {
            let q = Point::new(qseed.0, qseed.1);
            let inner: Vec<Item> = tree.knn(q, 1 + qi).into_iter().map(|(i, _)| i).collect();
            for &dir in &dirs {
                for t_max in [0.05, 0.3, 2.0] {
                    let got = tree.tp_knn(q, dir, t_max, &inner);
                    let want = brute_tp(&items, q, dir, t_max, &inner);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(w)) => {
                            assert!(
                                (g.time - w.time).abs() < 1e-9,
                                "time {} vs {}",
                                g.time,
                                w.time
                            );
                            assert_eq!(g.object.id, w.object.id);
                        }
                        (g, w) => panic!("mismatch: {g:?} vs {w:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn exact_bound_same_answers_fewer_accesses() {
        let (tree, items) = build(3000, 8);
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 4).into_iter().map(|(i, _)| i).collect();
        let dir = Vec2::new(0.8, -0.6);
        let (loose, loose_stats) =
            tree.with_stats(|t| t.tp_knn_with_bound(q, dir, 1.0, &inner, TpBound::Loose));
        let loose_na = loose_stats.node_accesses;
        let (exact, exact_stats) =
            tree.with_stats(|t| t.tp_knn_with_bound(q, dir, 1.0, &inner, TpBound::Exact));
        let exact_na = exact_stats.node_accesses;
        let want = brute_tp(&items, q, dir, 1.0, &inner);
        assert_eq!(loose.map(|e| e.object.id), want.map(|e| e.object.id));
        assert_eq!(exact.map(|e| e.object.id), want.map(|e| e.object.id));
        assert!(
            exact_na <= loose_na,
            "exact bound should prune at least as hard: {exact_na} vs {loose_na}"
        );
    }

    #[test]
    fn horizon_respected() {
        let (tree, items) = build(400, 50);
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let dir = Vec2::new(1.0, 0.0);
        // Find the unbounded first event, then query with a horizon just
        // below its time: must return None.
        let ev = brute_tp(&items, q, dir, f64::INFINITY, &inner)
            .expect("something influences eventually");
        let short = tree.tp_knn(q, dir, ev.time * 0.99, &inner);
        assert!(short.is_none(), "got {short:?} before horizon {}", ev.time);
        let long = tree.tp_knn(q, dir, ev.time * 1.01, &inner);
        assert_eq!(long.unwrap().object.id, ev.object.id);
    }

    #[test]
    fn knn_inner_set_excluded() {
        let (tree, _) = build(200, 4);
        let q = Point::new(0.4, 0.6);
        let inner: Vec<Item> = tree.knn(q, 5).into_iter().map(|(i, _)| i).collect();
        if let Some(ev) = tree.tp_knn(q, Vec2::new(0.0, 1.0), 10.0, &inner) {
            assert!(
                !inner.iter().any(|o| o.id == ev.object.id),
                "inner objects cannot influence themselves"
            );
            assert!(inner.iter().any(|o| o.id == ev.partner.id));
        }
    }

    #[test]
    fn earliest_nonpositive_cases() {
        // f(t) = t² − 1 ≤ 0 on [−1, 1]; from t0=0 → earliest is 0.
        assert_eq!(earliest_nonpositive(1.0, 0.0, -1.0, 0.0, 2.0), Some(0.0));
        // f(t) = (t−2)(t−3) > 0 at 0; earliest ≤ 0 at t=2.
        let t = earliest_nonpositive(1.0, -5.0, 6.0, 0.0, 10.0).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
        // Roots outside window.
        assert_eq!(earliest_nonpositive(1.0, -5.0, 6.0, 0.0, 1.5), None);
        // Linear: 3 − t ≤ 0 at t = 3.
        let t = earliest_nonpositive(0.0, -1.0, 3.0, 0.0, 5.0).unwrap();
        assert!((t - 3.0).abs() < 1e-12);
        // Always positive.
        assert_eq!(earliest_nonpositive(1.0, 0.0, 1.0, 0.0, 100.0), None);
    }

    #[test]
    #[should_panic]
    fn empty_inner_set_rejected() {
        let (tree, _) = build(10, 1);
        let _ = tree.tp_knn(Point::ORIGIN, Vec2::new(1.0, 0.0), 1.0, &[]);
    }
}
