//! Time-parameterized (k-)nearest-neighbor queries `[TP02]`.
//!
//! The query point moves along the ray `q + t·dir` (unit speed). Given
//! the current k-NN result set (the *inner* objects), the **influence
//! time** of an outer object `p` is the first `t` at which `p` comes at
//! least as close to the moving query as some inner object — i.e. the
//! moment the result set would change by swapping `p` in. [`RTree::tp_knn`]
//! returns the outer object with minimum influence time within a time
//! horizon, together with the inner object whose bisector it crosses.
//!
//! That pair is exactly what the validity-region construction of the
//! paper needs: the bisector of `(inner, outer)` is the next edge of the
//! (order-k) Voronoi cell in direction `dir`.
//!
//! ## Influence time of a point
//!
//! With `|dir| = 1`, `f(t) = dist²(q+t·dir, p) − dist²(q+t·dir, oᵢ)` is
//! *linear*: the quadratic `t²` terms cancel. `f(t) = f(0) − 2t·dir·(oᵢ−p)`,
//! so the crossing is `t = f(0) / (2·dir·(p − oᵢ))`, valid when the
//! denominator is positive (the bisector lies ahead).
//!
//! ## Pruning bounds for subtrees
//!
//! Two admissible lower bounds on the influence time of anything inside
//! an MBR `E` are provided (selectable, see [`TpBound`]):
//!
//! * **Loose** (default): the query and a point can close their distance
//!   gap at rate at most 2 (each moves/appears to move at speed ≤ 1), so
//!   `t ≥ (mindist(q,E) − max_i dist(q,oᵢ)) / 2`. O(1) per entry.
//! * **Exact**: the smallest `t ≥ 0` with
//!   `mindist(q+t·dir, E) ≤ max_i dist(q+t·dir, oᵢ)`, solved piecewise —
//!   `mindist²` is piecewise-quadratic in `t` with breakpoints where the
//!   moving point crosses the slab boundaries of `E`. Tighter (prunes
//!   more nodes) but costs O(k) quadratic solves per entry. The
//!   `ablation_tpnn_bound` benchmark quantifies the trade.

use crate::node::{Item, NodeId};
use crate::probe::QueryProbe;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use crate::util::OrdF64;
use lbq_geom::{Point, Rect, Vec2};
use std::cmp::Reverse;

/// Relative slack widening the squared-space radial prune so it is
/// strictly conservative against the rounding of `r * r`: no child the
/// exact sqrt-based test would keep is ever dropped.
const RADIAL_SLACK: f64 = lbq_geom::EPS_TIGHT;

/// Relative slack widening the capsule interval tests against the
/// ≲1e-14 rounding of the dot products and the influence-time division.
const CAPSULE_SLACK: f64 = lbq_geom::EPS;

/// The result-changing event found by a TP query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpEvent {
    /// The outer object that enters the result ("+p" in TP notation).
    pub object: Item,
    /// The inner object whose bisector `object` crosses first (the one
    /// that leaves the result, "−o").
    pub partner: Item,
    /// Influence time: distance traveled along `dir` until the change.
    pub time: f64,
}

/// One member of a grouped TP probe batch (see
/// [`RTree::tp_knn_group_in`]): an independent TPNN query that shares
/// its tree traversal with the rest of the batch.
#[derive(Debug, Clone, Copy)]
pub struct TpProbe<'a> {
    /// Query focus.
    pub q: Point,
    /// Unit direction of travel.
    pub dir: Vec2,
    /// Time horizon searched.
    pub t_max: f64,
    /// This member's current result set (non-empty).
    pub inner: &'a [Item],
}

/// Members per shared-frontier chunk: the frontier tags each node with
/// the bitmask of members that kept it, so one chunk is one `u64`.
const TP_GROUP_CHUNK: usize = 64;

/// One frontier entry of the shared-frontier grouped TPNN
/// ([`RTree::tp_knn_group_in`]). Carries the node's MBR (known at push
/// time from the parent) so the pop-time member re-gate needs no pass
/// over the node's contents. The heap order ignores `mbr`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GroupEntry {
    lb: OrdF64,
    node: NodeId,
    mask: u64,
    mbr: Rect,
}

impl PartialEq for GroupEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for GroupEntry {}

impl PartialOrd for GroupEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GroupEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lb
            .cmp(&other.lb)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.mask.cmp(&other.mask))
    }
}

/// Subtree pruning bound used by [`RTree::tp_knn_with_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TpBound {
    /// O(1) closing-speed bound (default).
    #[default]
    Loose,
    /// Piecewise-quadratic exact bound.
    Exact,
}

impl RTree {
    /// TPNN for a single nearest neighbor: the current NN is `inner`,
    /// and the query moves from `q` along unit `dir`. Returns the first
    /// result change within `t_max`, or `None` if the result is stable
    /// throughout `[0, t_max]`.
    pub fn tp_nn(&self, q: Point, dir: Vec2, t_max: f64, inner: Item) -> Option<TpEvent> {
        self.tp_knn(q, dir, t_max, std::slice::from_ref(&inner))
    }

    /// [`RTree::tp_nn`] against a reusable scratch: zero steady-state
    /// allocations.
    pub fn tp_nn_in(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: Item,
        scratch: &mut QueryScratch,
    ) -> Option<TpEvent> {
        self.tp_knn_in(q, dir, t_max, std::slice::from_ref(&inner), scratch)
    }

    /// TPkNN with the default (loose) pruning bound.
    pub fn tp_knn(&self, q: Point, dir: Vec2, t_max: f64, inner: &[Item]) -> Option<TpEvent> {
        self.tp_knn_with_bound(q, dir, t_max, inner, TpBound::Loose)
    }

    /// [`RTree::tp_knn`] against a reusable scratch: zero steady-state
    /// allocations.
    pub fn tp_knn_in(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
        scratch: &mut QueryScratch,
    ) -> Option<TpEvent> {
        self.tp_knn_with_bound_in(q, dir, t_max, inner, TpBound::Loose, scratch)
    }

    /// TPkNN: finds the outer object with minimum influence time w.r.t.
    /// the current result `inner`, searching only `t ∈ [0, t_max]`.
    ///
    /// `dir` must be (approximately) unit length — influence times are
    /// *distances traveled*, which is what the location-based algorithms
    /// compare against vertex distances.
    pub fn tp_knn_with_bound(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
        bound: TpBound,
    ) -> Option<TpEvent> {
        let mut scratch = QueryScratch::new();
        self.tp_knn_with_bound_in(q, dir, t_max, inner, bound, &mut scratch)
    }

    /// [`RTree::tp_knn_with_bound`] against a reusable scratch: zero
    /// steady-state allocations.
    pub fn tp_knn_with_bound_in(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
        bound: TpBound,
        scratch: &mut QueryScratch,
    ) -> Option<TpEvent> {
        let _stage = lbq_obs::stage_timer(lbq_obs::Stage::TpnnChain);
        let mut span = lbq_obs::span("rtree-tpnn");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let out = self.tp_knn_probed(q, dir, t_max, inner, bound, scratch, &mut probe);
        span.record("inner", inner.len());
        span.record("found", out.is_some());
        self.finish_query_span(&mut span, &probe, before);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn tp_knn_probed(
        &self,
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
        bound: TpBound,
        scratch: &mut QueryScratch,
        probe: &mut QueryProbe,
    ) -> Option<TpEvent> {
        assert!(!inner.is_empty(), "TP query needs the current result set");
        debug_assert!(
            (dir.norm() - 1.0).abs() < lbq_geom::EPS,
            "dir must be unit length, got |dir| = {}",
            dir.norm()
        );
        let d_max = inner.iter().map(|o| q.dist(o.point)).fold(0.0f64, f64::max);
        // Rotated frame for the directional capsule prune: `u` is the
        // component of `p − q` along the ray, `w` across it. An event at
        // time `t ≤ h` needs `dist(q + t·dir, p) ≤ d_max + t` (p must
        // come as close as some inner object, which started ≤ d_max away
        // and recedes at rate ≤ 1). Projecting that disk sweep:
        //   u ∈ [−d_max, d_max + 2h],   |w| ≤ d_max + h.
        // The radial bound alone keeps the whole ball of radius
        // 2h + d_max; the capsule kills everything behind the query and
        // the perpendicular band — most of the ball when h is large.
        let perp = Vec2::new(-dir.y, dir.x);

        scratch.tp_inner_d2.clear();
        scratch
            .tp_inner_d2
            .extend(inner.iter().map(|o| q.dist_sq(o.point)));
        let QueryScratch {
            ref mut queue,
            ref tp_inner_d2,
            ..
        } = *scratch;
        let inner_d2: &[f64] = tp_inner_d2;
        queue.clear();
        queue.push(Reverse((OrdF64::new(0.0), self.root)));
        let mut best: Option<TpEvent> = None;

        // Greedy seed dive: walk the mindist-closest child chain to one
        // leaf and scan it before the best-first phase. Wide-horizon
        // queries otherwise flood the frontier with children at full
        // `t_max` only to discard them once the first event collapses
        // the horizon. The seed leaf is re-scanned when popped; an
        // equal-time rediscovery is not "better" under the tie-break,
        // so results are unchanged. Narrow queries (only one root child
        // inside the closing-speed disk — e.g. the short vertex probes
        // of the validity-region loop) skip the dive: their frontier
        // never floods, so the extra leaf scan is pure overhead.
        let wide = {
            let root = self.node(self.root);
            let r = (2.0 * t_max + d_max) * (1.0 + RADIAL_SLACK);
            let keep_sq = r * r;
            !root.is_leaf()
                && root
                    .mbrs
                    .iter()
                    .filter(|m| m.mindist_sq(q) <= keep_sq)
                    .count()
                    > 1
        };
        if wide {
            let mut dive = self.root;
            loop {
                self.access(dive);
                let node = self.node(dive);
                probe.visit(node.level);
                if node.is_leaf() {
                    scan_leaf(
                        &node.items,
                        self.leaf_coords(dive),
                        q,
                        dir,
                        perp,
                        d_max,
                        t_max,
                        inner,
                        inner_d2,
                        &mut best,
                    );
                    break;
                }
                // The mindist-closest child (strict `<`: first minimum
                // wins, so the pick is layout-independent).
                let mut next = None;
                let mut next_md = f64::INFINITY;
                match self.child_mbr_cols(dive) {
                    Some(cols) => crate::util::for_each_mindist_sq(cols, q, |j, md| {
                        if md < next_md {
                            next_md = md;
                            next = Some(node.children[j]);
                        }
                    }),
                    None => {
                        for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                            let md = mbr.mindist_sq(q);
                            if md < next_md {
                                next_md = md;
                                next = Some(child);
                                if md <= 0.0 {
                                    break;
                                }
                            }
                        }
                    }
                }
                let Some(next) = next else { break };
                dive = next;
            }
        }

        while let Some(Reverse((OrdF64(lb), node_id))) = queue.pop() {
            probe.pop();
            let horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
            if lb > horizon {
                break;
            }
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                scan_leaf(
                    &node.items,
                    self.leaf_coords(node_id),
                    q,
                    dir,
                    perp,
                    d_max,
                    t_max,
                    inner,
                    inner_d2,
                    &mut best,
                );
            } else {
                // `best` only changes in leaf scans, so the horizon is
                // loop-invariant here.
                let horizon = best.as_ref().map_or(t_max, |ev| ev.time.min(t_max));
                match bound {
                    TpBound::Loose => {
                        // The loose bound keeps a child iff
                        // `(mindist − d_max)/2 ≤ horizon`, i.e.
                        // `mindist ≤ 2·horizon + d_max`. Testing that in
                        // squared space skips the sqrt for every pruned
                        // child — at paper fanout that is ~200 sqrts per
                        // node. The slack keeps the squared test strictly
                        // conservative, so no child the exact test would
                        // keep is ever dropped; survivors get the same
                        // sqrt-based bound as before, so pop order and
                        // results are unchanged.
                        let r = (2.0 * horizon + d_max) * (1.0 + RADIAL_SLACK);
                        let keep_sq = r * r;
                        let u_hi = d_max + 2.0 * horizon;
                        let w_hi = d_max + horizon;
                        // Per-child body shared by the row and column
                        // layouts; the column path feeds the same
                        // `mindist²` bits from its vectorized prepass.
                        macro_rules! consider_child {
                            ($mbr:expr, $child:expr, $md_sq:expr) => {{
                                let mbr: &Rect = $mbr;
                                let md_sq: f64 = $md_sq;
                                if md_sq <= keep_sq {
                                    // Directional capsule prune (see
                                    // `perp` above), on the MBR's
                                    // interval images in the rotated
                                    // frame: center projection ±
                                    // half-extent.
                                    let c = q.to(mbr.center());
                                    let hx = (mbr.xmax - mbr.xmin) * 0.5;
                                    let hy = (mbr.ymax - mbr.ymin) * 0.5;
                                    let u_c = dir.dot(c);
                                    let u_half = dir.x.abs() * hx + dir.y.abs() * hy;
                                    let w_c = perp.dot(c);
                                    let w_half = perp.x.abs() * hx + perp.y.abs() * hy;
                                    let sl = CAPSULE_SLACK
                                        * (r + u_c.abs() + w_c.abs() + u_half + w_half);
                                    if !(u_c + u_half < -d_max - sl
                                        || u_c - u_half > u_hi + sl
                                        || w_c.abs() - w_half > w_hi + sl)
                                    {
                                        let lb = ((md_sq.sqrt() - d_max) * 0.5).max(0.0);
                                        if lb <= horizon {
                                            queue.push(Reverse((OrdF64::new(lb), $child)));
                                        }
                                    }
                                }
                            }};
                        }
                        match self.child_mbr_cols(node_id) {
                            Some(cols) => crate::util::for_each_mindist_sq(cols, q, |j, md_sq| {
                                consider_child!(&node.mbrs[j], node.children[j], md_sq)
                            }),
                            None => {
                                for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                                    consider_child!(mbr, child, mbr.mindist_sq(q))
                                }
                            }
                        }
                    }
                    TpBound::Exact => {
                        for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                            let lb = exact_entry_bound(q, dir, mbr, inner, t_max);
                            if lb <= horizon {
                                queue.push(Reverse((OrdF64::new(lb), child)));
                            }
                        }
                    }
                }
            }
        }
        best
    }

    /// Answers a batch of TPNN probes in one shared-frontier traversal
    /// per 64-member chunk, using the loose closing-speed bound (the
    /// default of [`RTree::tp_knn`]).
    ///
    /// `out` is cleared and refilled index-aligned with `probes`:
    /// `out[i]` equals `self.tp_knn_in(probes[i].q, …)` bit for bit.
    /// The influence event of a probe is the argmin over outer objects
    /// under the total `(time, object.id)` order — a function of the
    /// point set alone, not of traversal order. The shared frontier
    /// visits a superset of every member's single-query nodes (a node
    /// is kept when *any* member keeps it, each member applying its own
    /// admissible radial + capsule prune), and each reached leaf is
    /// offered to a member only if that member kept the node, through
    /// the unchanged single-query scan — so each member's argmin is
    /// found exactly as before.
    ///
    /// The probes of a validity-region round for one Hilbert tile all
    /// search the same neighborhood, so the shared frontier reads each
    /// node page once instead of once per member.
    pub fn tp_knn_group_in(
        &self,
        probes: &[TpProbe<'_>],
        scratch: &mut QueryScratch,
        out: &mut Vec<Option<TpEvent>>,
    ) {
        let _stage = lbq_obs::stage_timer(lbq_obs::Stage::TpnnChain);
        out.clear();
        out.resize(probes.len(), None);
        let mut start = 0;
        for chunk in probes.chunks(TP_GROUP_CHUNK) {
            let end = start + chunk.len();
            self.tp_group_chunk(chunk, scratch, &mut out[start..end]);
            start = end;
        }
    }

    /// One ≤64-member shared-frontier traversal (see
    /// [`RTree::tp_knn_group_in`]).
    fn tp_group_chunk(
        &self,
        probes: &[TpProbe<'_>],
        scratch: &mut QueryScratch,
        out: &mut [Option<TpEvent>],
    ) {
        let m = probes.len();
        if m == 0 {
            return;
        }
        if m <= 3 {
            // Tiny batches (the tail rounds of a validity loop, where
            // only a few members are still unfinished) gain nothing
            // from the shared frontier; per-probe group overhead — the
            // root re-descend, per-pop member gates, the seed-dive
            // re-scan — outweighs the sharing. The single-query path
            // answers each probe identically (the event is the argmin
            // over items, not a function of traversal order).
            for (slot, p) in out.iter_mut().zip(probes) {
                *slot = self.tp_knn_in(p.q, p.dir, p.t_max, p.inner, scratch);
            }
            return;
        }
        let mut span = lbq_obs::span("rtree-tpnn-group");
        let before = self.stats();
        let mut probe_stats = QueryProbe::default();

        let mut frame = std::mem::take(&mut scratch.tp_group_frame);
        frame.clear();
        let mut inner_d2 = std::mem::take(&mut scratch.tp_inner_d2);
        inner_d2.clear();
        let (mut gx0, mut gy0, mut gx1, mut gy1) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in probes {
            assert!(!p.inner.is_empty(), "TP query needs the current result set");
            debug_assert!(
                (p.dir.norm() - 1.0).abs() < lbq_geom::EPS,
                "dir must be unit length, got |dir| = {}",
                p.dir.norm()
            );
            let d_max = p
                .inner
                .iter()
                .map(|o| p.q.dist(o.point))
                .fold(0.0f64, f64::max);
            gx0 = gx0.min(p.q.x);
            gy0 = gy0.min(p.q.y);
            gx1 = gx1.max(p.q.x);
            gy1 = gy1.max(p.q.y);
            // lbq-check: allow(lossy-cast) — ≤ 64 probes × k entries
            let d2_start = inner_d2.len() as u32;
            inner_d2.extend(p.inner.iter().map(|o| p.q.dist_sq(o.point)));
            frame.push((Vec2::new(-p.dir.y, p.dir.x), d_max, d2_start));
        }
        let group_rect = Rect::new(gx0, gy0, gx1, gy1);
        let full_mask: u64 = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };

        let horizon = |slot: &Option<TpEvent>, t_max: f64| -> f64 {
            slot.as_ref().map_or(t_max, |e| e.time.min(t_max))
        };

        // Greedy seed dive, as in the single-query traversal: when any
        // member is wide (more than one root child inside its keep
        // radius), walk the mindist-closest child chain toward the group
        // center and scan that leaf first. First-round validity probes
        // aim at far-away polygon vertices, so every horizon starts near
        // `t_max`; without the dive the first pops flood the frontier
        // with children kept at those wide horizons. The seed leaf is
        // re-scanned when popped; equal-time rediscovery is not "better"
        // under the tie-break, so results are unchanged.
        let c_g = group_rect.center();
        let wide = {
            let root = self.node(self.root);
            !root.is_leaf() && {
                let mut kept = 0usize;
                'children: for mbr in &root.mbrs {
                    for (i, p) in probes.iter().enumerate() {
                        let (_, d_max, _) = frame[i];
                        let r = (2.0 * p.t_max + d_max) * (1.0 + RADIAL_SLACK);
                        if mbr.mindist_sq(p.q) <= r * r {
                            kept += 1;
                            if kept > 1 {
                                break 'children;
                            }
                            continue 'children;
                        }
                    }
                }
                kept > 1
            }
        };
        if wide {
            let mut dive = self.root;
            loop {
                self.access(dive);
                let node = self.node(dive);
                probe_stats.visit(node.level);
                if node.is_leaf() {
                    let (mut lx0, mut ly0) = (f64::INFINITY, f64::INFINITY);
                    let (mut lx1, mut ly1) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
                    for it in &node.items {
                        lx0 = lx0.min(it.point.x);
                        ly0 = ly0.min(it.point.y);
                        lx1 = lx1.max(it.point.x);
                        ly1 = ly1.max(it.point.y);
                    }
                    let leaf_rect = Rect::new(lx0, ly0, lx1, ly1);
                    for (i, p) in probes.iter().enumerate() {
                        let (perp, d_max, _) = frame[i];
                        let h = horizon(&out[i], p.t_max);
                        let r = (2.0 * h + d_max) * (1.0 + RADIAL_SLACK);
                        if leaf_rect.mindist_sq(p.q) > r * r {
                            continue;
                        }
                        scan_leaf(
                            &node.items,
                            self.leaf_coords(dive),
                            p.q,
                            p.dir,
                            perp,
                            d_max,
                            p.t_max,
                            p.inner,
                            member_d2(&inner_d2, &frame, i, p),
                            &mut out[i],
                        );
                    }
                    break;
                }
                let mut next = None;
                let mut next_md = f64::INFINITY;
                match self.child_mbr_cols(dive) {
                    Some(cols) => crate::util::for_each_mindist_sq(cols, c_g, |j, md| {
                        if md < next_md {
                            next_md = md;
                            next = Some(node.children[j]);
                        }
                    }),
                    None => {
                        for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                            let md = mbr.mindist_sq(c_g);
                            if md < next_md {
                                next_md = md;
                                next = Some(child);
                                if md <= 0.0 {
                                    break;
                                }
                            }
                        }
                    }
                }
                let Some(next) = next else { break };
                dive = next;
            }
        }

        let queue = &mut scratch.tp_group_queue;
        queue.clear();
        queue.push(Reverse(GroupEntry {
            lb: OrdF64::new(0.0),
            node: self.root,
            mask: full_mask,
            // Placeholder: the root entry skips the MBR re-gate below.
            mbr: Rect::new(0.0, 0.0, 0.0, 0.0),
        }));
        while let Some(Reverse(entry)) = queue.pop() {
            let (OrdF64(lb), node_id, mask) = (entry.lb, entry.node, entry.mask);
            probe_stats.pop();
            let max_h = (0..m).fold(0.0_f64, |acc, i| acc.max(horizon(&out[i], probes[i].t_max)));
            // `lb` is the minimum member bound, so everything left in the
            // frontier is beyond every member's horizon.
            if lb > max_h {
                break;
            }
            self.access(node_id);
            let node = self.node(node_id);
            probe_stats.visit(node.level);
            // A member's mask bit reflects its horizon at *push* time; by
            // pop time most horizons have collapsed, so re-gate each
            // member against the node's MBR (carried in the entry from
            // the parent) at *current* horizons before paying any
            // per-content work. The gate is the single-query radial keep
            // test, which never drops a node holding a best-beating item,
            // so events stay bit-identical. The root entry has no parent
            // MBR and skips the gate.
            let gate = node_id != self.root;
            let mut live = 0u64;
            let mut mh = [0.0f64; TP_GROUP_CHUNK];
            let mut mkeep = [0.0f64; TP_GROUP_CHUNK];
            let mut r_live = 0.0f64;
            let mut bits = mask;
            while bits != 0 {
                // lbq-check: allow(lossy-cast) — trailing_zeros < 64
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let p = &probes[i];
                let (_, d_max, _) = frame[i];
                let h = horizon(&out[i], p.t_max);
                let r = (2.0 * h + d_max) * (1.0 + RADIAL_SLACK);
                let keep_sq = r * r;
                if gate && entry.mbr.mindist_sq(p.q) > keep_sq {
                    continue;
                }
                live |= 1 << i;
                mh[i] = h;
                mkeep[i] = keep_sq;
                r_live = r_live.max(r);
            }
            if live == 0 {
                continue;
            }
            if node.is_leaf() {
                let mut bits = live;
                while bits != 0 {
                    // lbq-check: allow(lossy-cast) — trailing_zeros < 64
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let p = &probes[i];
                    let (perp, d_max, _) = frame[i];
                    scan_leaf(
                        &node.items,
                        self.leaf_coords(node_id),
                        p.q,
                        p.dir,
                        perp,
                        d_max,
                        p.t_max,
                        p.inner,
                        member_d2(&inner_d2, &frame, i, p),
                        &mut out[i],
                    );
                }
            } else {
                // One rect-to-rect prescreen rejects far children for the
                // whole chunk before any per-member bound runs: for every
                // live member, mindist(q, child) ≥ mindist(G, child), and
                // its keep radius is ≤ `r_live`. On a packed arena the
                // prescreen distances come from the vectorized column
                // prepass (same bits).
                let keep_g = r_live * r_live;
                macro_rules! consider_child {
                    ($mbr:expr, $child:expr, $md_g:expr) => {{
                        let mbr: &Rect = $mbr;
                        let md_g: f64 = $md_g;
                        if md_g <= keep_g {
                            let hx = (mbr.xmax - mbr.xmin) * 0.5;
                            let hy = (mbr.ymax - mbr.ymin) * 0.5;
                            let mut child_mask = 0u64;
                            let mut child_lb = f64::INFINITY;
                            let mut bits = live;
                            while bits != 0 {
                                // lbq-check: allow(lossy-cast) — trailing_zeros < 64
                                let i = bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                let p = &probes[i];
                                let (perp, d_max, _) = frame[i];
                                let h = mh[i];
                                // Per-member loose bound + capsule,
                                // exactly as in the single-query
                                // traversal.
                                let r = (2.0 * h + d_max) * (1.0 + RADIAL_SLACK);
                                let keep_sq = mkeep[i];
                                let md_sq = mbr.mindist_sq(p.q);
                                if md_sq > keep_sq {
                                    continue;
                                }
                                let c = p.q.to(mbr.center());
                                let u_c = p.dir.dot(c);
                                let u_half = p.dir.x.abs() * hx + p.dir.y.abs() * hy;
                                let w_c = perp.dot(c);
                                let w_half = perp.x.abs() * hx + perp.y.abs() * hy;
                                let u_hi = d_max + 2.0 * h;
                                let w_hi = d_max + h;
                                let sl =
                                    CAPSULE_SLACK * (r + u_c.abs() + w_c.abs() + u_half + w_half);
                                if u_c + u_half < -d_max - sl
                                    || u_c - u_half > u_hi + sl
                                    || w_c.abs() - w_half > w_hi + sl
                                {
                                    continue;
                                }
                                let lb_i = ((md_sq.sqrt() - d_max) * 0.5).max(0.0);
                                if lb_i <= h {
                                    child_mask |= 1 << i;
                                    child_lb = child_lb.min(lb_i);
                                }
                            }
                            if child_mask != 0 {
                                queue.push(Reverse(GroupEntry {
                                    lb: OrdF64::new(child_lb),
                                    node: $child,
                                    mask: child_mask,
                                    mbr: *mbr,
                                }));
                            }
                        }
                    }};
                }
                match self.child_mbr_cols(node_id) {
                    Some(cols) => {
                        crate::util::for_each_mindist_sq_rect(cols, &group_rect, |j, md_g| {
                            consider_child!(&node.mbrs[j], node.children[j], md_g)
                        })
                    }
                    None => {
                        for (mbr, &child) in node.mbrs.iter().zip(&node.children) {
                            consider_child!(mbr, child, mbr.mindist_sq_rect(&group_rect))
                        }
                    }
                }
            }
        }
        scratch.tp_group_frame = frame;
        scratch.tp_inner_d2 = inner_d2;
        span.record("members", m);
        span.record("found", out.iter().filter(|e| e.is_some()).count());
        self.finish_query_span(&mut span, &probe_stats, before);
    }
}

/// Scans one leaf's items, updating `best` in place.
///
/// Per-item prunes, refreshed whenever the horizon shrinks:
/// (a) closing-speed — the influence time of `p` is at least
/// `(dist(q,p) − d_max) / 2` (the gap to any inner object closes at rate
/// ≤ 2), so items beyond the disk of radius `2·horizon + d_max` cannot
/// beat the current best; (b) the directional capsule test on the
/// rotated components (see `tp_knn_probed`). The tiny relative slacks
/// keep every test strictly conservative against the ≲1e-14 rounding of
/// the influence-time division, so pruned and unpruned scans return
/// bit-identical events.
/// The slice of precomputed `dist²(q, oᵢ)` belonging to group member
/// `i` (see the frame-building loop of `tp_group_chunk`).
#[inline]
fn member_d2<'a>(
    buf: &'a [f64],
    frame: &[(Vec2, f64, u32)],
    i: usize,
    p: &TpProbe<'_>,
) -> &'a [f64] {
    // lbq-check: allow(lossy-cast) — u32 → usize is widening here
    let start = frame[i].2 as usize;
    &buf[start..start + p.inner.len()]
}

#[allow(clippy::too_many_arguments)]
fn scan_leaf(
    items: &[Item],
    coords: Option<(&[f64], &[f64])>,
    q: Point,
    dir: Vec2,
    perp: Vec2,
    d_max: f64,
    t_max: f64,
    inner: &[Item],
    inner_d2: &[f64],
    best: &mut Option<TpEvent>,
) {
    let mut horizon = best.as_ref().map_or(t_max, |e| e.time.min(t_max));
    let thresholds = |h: f64| -> (f64, f64, f64, f64) {
        let r = (2.0 * h + d_max) * (1.0 + RADIAL_SLACK);
        let sl = CAPSULE_SLACK * (r + d_max);
        (r * r, -d_max - sl, d_max + 2.0 * h + sl, d_max + h + sl)
    };
    let (mut reach_sq, mut u_lo, mut u_hi, mut w_abs) = thresholds(horizon);
    // The per-item body, shared verbatim by the row and column layouts:
    // what differs between them is only where `dp_sq` and the rotated
    // projections come from. `$u`/`$w` are evaluated lazily, only past
    // the reach gate — most items fail it, so both layouts skip the dot
    // products of far items; the column layout recomputes the offset
    // from the coordinate mirror with the same ops (IEEE subtraction is
    // deterministic), keeping the projections bit-identical.
    macro_rules! consider {
        ($item:expr, $dp_sq:expr, $u:expr, $w:expr) => {{
            let item: Item = $item;
            let dp_sq: f64 = $dp_sq;
            if dp_sq <= reach_sq {
                let u: f64 = $u;
                let w: f64 = $w;
                if u >= u_lo
                    && u <= u_hi
                    && w.abs() <= w_abs
                    && !inner.iter().any(|o| o.id == item.id)
                {
                    if let Some((t, partner)) =
                        influence_time_from(dp_sq, dir, item.point, inner, inner_d2, horizon)
                    {
                        let better = t < horizon
                            || (t <= horizon
                                && best
                                    .as_ref()
                                    .is_some_and(|b| t == b.time && item.id < b.object.id));
                        if t <= t_max && better {
                            *best = Some(TpEvent {
                                object: item,
                                partner,
                                time: t,
                            });
                            horizon = t.min(t_max);
                            (reach_sq, u_lo, u_hi, w_abs) = thresholds(horizon);
                        }
                    }
                }
            }
        }};
    }
    match coords {
        Some((xs, ys)) => {
            // The entry `reach_sq` is the loosest the gate will be for
            // this leaf (the horizon only shrinks), so the masked scan
            // may pre-filter with it; `consider!` re-checks the current
            // gate (see `for_each_d2_within`).
            crate::util::for_each_d2_within(xs, ys, q, reach_sq, |j, dp_sq| {
                consider!(
                    items[j],
                    dp_sq,
                    dir.x * (xs[j] - q.x) + dir.y * (ys[j] - q.y),
                    perp.x * (xs[j] - q.x) + perp.y * (ys[j] - q.y)
                )
            });
        }
        None => {
            for &item in items {
                let v = q.to(item.point);
                consider!(item, v.dot(v), dir.dot(v), perp.dot(v));
            }
        }
    }
}

/// Influence time of point `p` against the inner set: the earliest
/// bisector crossing, with the inner partner achieving it. `None` when
/// `p` never influences the result along this ray.
// The hot path precomputes dist² and calls `influence_time_from`; this
// convenience wrapper remains for the reference implementations in the
// test suite.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn influence_time(q: Point, dir: Vec2, p: Point, inner: &[Item]) -> Option<(f64, Item)> {
    let inner_d2: Vec<f64> = inner.iter().map(|o| q.dist_sq(o.point)).collect();
    influence_time_from(q.dist_sq(p), dir, p, inner, &inner_d2, f64::INFINITY)
}

/// [`influence_time`] with `dist²(q, p)` precomputed — the leaf hot
/// path computes it anyway for the closing-speed prune.
///
/// `cutoff` is an upper bound on the influence times the caller still
/// cares about (the scan horizon; `f64::INFINITY` for "all"). Crossings
/// provably beyond it are skipped *before* the division — the division
/// latency chain is the kernel's dominant cost — via the conservative
/// multiply form `f0 ≥ lim·denom ⇒ f0/denom > cutoff` with `lim`
/// slack-widened, so no crossing that could win **or tie** at the
/// cutoff is ever skipped and the returned minimum is bit-identical
/// whenever it is ≤ `cutoff`. When the true minimum exceeds the cutoff
/// the result may be a partial minimum (or `None`); callers discard
/// those outcomes anyway.
fn influence_time_from(
    dp_sq: f64,
    dir: Vec2,
    p: Point,
    inner: &[Item],
    inner_d2: &[f64],
    cutoff: f64,
) -> Option<(f64, Item)> {
    // Relative slack on the prescreen: skipping demands
    // `t > lim/(1+PRESCREEN_SLACK)` with margin far beyond the ≤2-ulp
    // rounding of the multiply and divide, so boundary crossings take
    // the exact division path instead.
    const PRESCREEN_SLACK: f64 = lbq_geom::EPS;
    let mut best: Option<(f64, Item)> = None;
    let mut lim = cutoff * (1.0 + PRESCREEN_SLACK);
    for (&o, &od2) in inner.iter().zip(inner_d2) {
        let f0 = dp_sq - od2;
        if f0 <= 0.0 {
            // p is already at least as close as this inner object — the
            // result changes immediately (degenerate tie or stale inner
            // set). Nothing beats t = 0 under the strict-< minimum, and
            // a later tie at 0 would lose to this (first) partner.
            return Some((0.0, o));
        }
        let denom = 2.0 * dir.dot(o.point.to(p));
        // gap grows (or stays) along this direction when denom ≤ 0
        if denom > 0.0 && f0 < lim * denom {
            let t = f0 / denom;
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, o));
                lim = t * (1.0 + PRESCREEN_SLACK);
            }
        }
    }
    best
}

/// Exact admissible lower bound on the influence time of any point in
/// `mbr`: the smallest `t ∈ [0, t_max]` with
/// `mindist(q+t·dir, mbr) ≤ dist(q+t·dir, oᵢ)` for some inner `oᵢ`
/// (`+∞`-like `t_max + 1` when none exists in the horizon).
fn exact_entry_bound(q: Point, dir: Vec2, mbr: &Rect, inner: &[Item], t_max: f64) -> f64 {
    // Inside the MBR right now → can influence immediately. mindist_sq
    // returns an exact 0.0 for interior points (clamped differences).
    // lbq-check: allow(float-eq) — comparing against that exact sentinel zero
    if mbr.mindist_sq(q) == 0.0 {
        return 0.0;
    }
    // Interval breakpoints: where the moving point crosses the slab
    // boundaries of the MBR (the clamp regime of mindist changes). At
    // most six — 0, t_max, and four slab crossings — so a fixed array
    // keeps this bound computation allocation-free.
    let mut ts = [0.0, t_max, 0.0, 0.0, 0.0, 0.0];
    let mut n = 2;
    for (coord, d, lo, hi) in [
        (q.x, dir.x, mbr.xmin, mbr.xmax),
        (q.y, dir.y, mbr.ymin, mbr.ymax),
    ] {
        if d.abs() > 1e-15 {
            for b in [lo, hi] {
                let t = (b - coord) / d;
                if t > 0.0 && t < t_max {
                    ts[n] = t;
                    n += 1;
                }
            }
        }
    }
    let ts = &mut ts[..n];
    ts.sort_by(f64::total_cmp);
    let mut m = 1;
    for i in 1..ts.len() {
        if (ts[i] - ts[m - 1]).abs() >= 1e-15 {
            ts[m] = ts[i];
            m += 1;
        }
    }

    for w in ts[..m].windows(2) {
        let (t0, t1) = (w[0], w[1]);
        if t1 <= t0 {
            continue;
        }
        let mid = (t0 + t1) * 0.5;
        // mindist²(t) = X(t) + Y(t), each term a fixed quadratic within
        // this interval (regime determined at the midpoint).
        let (xa, xb, xc) = clamp_term(q.x, dir.x, mbr.xmin, mbr.xmax, mid);
        let (ya, yb, yc) = clamp_term(q.y, dir.y, mbr.ymin, mbr.ymax, mid);
        let (ma, mbq, mc) = (xa + ya, xb + yb, xc + yc);
        let mut earliest = f64::INFINITY;
        for o in inner {
            // dist²(q+t·dir, o) = t² + 2t·dir·(q−o) + |q−o|².
            let qo = o.point.to(q);
            let (da, db, dc) = (1.0, 2.0 * dir.dot(qo), q.dist_sq(o.point));
            // f(t) = mindist² − dist²; want earliest f(t) ≤ 0 in [t0,t1].
            let (a, b, c) = (ma - da, mbq - db, mc - dc);
            if let Some(t) = earliest_nonpositive(a, b, c, t0, t1) {
                earliest = earliest.min(t);
            }
        }
        if earliest.is_finite() {
            return earliest;
        }
    }
    t_max + 1.0
}

/// Coefficients `(a, b, c)` of the x- (or y-) term of `mindist²` as a
/// quadratic `a t² + b t + c`, for the clamp regime active at `t_probe`.
fn clamp_term(coord: f64, d: f64, lo: f64, hi: f64, t_probe: f64) -> (f64, f64, f64) {
    let pos = coord + d * t_probe;
    if pos < lo {
        // (lo − coord − d t)²
        let g = lo - coord;
        (d * d, -2.0 * d * g, g * g)
    } else if pos > hi {
        let g = coord - hi;
        (d * d, 2.0 * d * g, g * g)
    } else {
        (0.0, 0.0, 0.0)
    }
}

/// Earliest `t ∈ [t0, t1]` with `a t² + b t + c ≤ 0`, if any.
fn earliest_nonpositive(a: f64, b: f64, c: f64, t0: f64, t1: f64) -> Option<f64> {
    let f = |t: f64| a * t * t + b * t + c;
    if f(t0) <= 0.0 {
        return Some(t0);
    }
    if a.abs() < 1e-15 {
        if b.abs() < 1e-15 {
            return None; // constant positive
        }
        let root = -c / b;
        return (root > t0 && root <= t1).then_some(root);
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        // No real roots: the sign is constant, and f(t0) > 0.
        return None;
    }
    let sq = disc.sqrt();
    let r1 = (-b - sq) / (2.0 * a);
    let r2 = (-b + sq) / (2.0 * a);
    let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
    // f(t0) > 0. For a > 0, f ≤ 0 on [lo, hi]; earliest in window is lo.
    // For a < 0, f ≤ 0 outside (lo, hi); since f(t0) > 0, t0 ∈ (lo, hi),
    // so the earliest qualifying point is hi.
    let candidate = if a > 0.0 { lo } else { hi };
    (candidate > t0 && candidate <= t1).then_some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RTree, RTreeConfig};

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    /// Brute-force reference: scan all items for the minimum influence
    /// time.
    fn brute_tp(
        items: &[Item],
        q: Point,
        dir: Vec2,
        t_max: f64,
        inner: &[Item],
    ) -> Option<TpEvent> {
        let mut best: Option<TpEvent> = None;
        for &item in items {
            if inner.iter().any(|o| o.id == item.id) {
                continue;
            }
            if let Some((t, partner)) = influence_time(q, dir, item.point, inner) {
                if t <= t_max
                    && best
                        .as_ref()
                        .is_none_or(|b| t < b.time || (t == b.time && item.id < b.object.id))
                {
                    best = Some(TpEvent {
                        object: item,
                        partner,
                        time: t,
                    });
                }
            }
        }
        best
    }

    #[test]
    fn influence_time_hand_example() {
        // q at origin moving east; NN at (1,0); candidate at (3,0).
        // Bisector of (1,0) and (3,0) is x = 2 → influence at t = 2:
        // f(0) = 9 − 1 = 8, denom = 2·dir·(p−o) = 2·2 = 4 → t = 2.
        let q = Point::ORIGIN;
        let dir = Vec2::new(1.0, 0.0);
        let inner = [Item::new(Point::new(1.0, 0.0), 0)];
        let (t, partner) = influence_time(q, dir, Point::new(3.0, 0.0), &inner).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
        assert_eq!(partner.id, 0);
        // Moving west the candidate never influences.
        assert!(influence_time(q, Vec2::new(-1.0, 0.0), Point::new(3.0, 0.0), &inner).is_none());
    }

    #[test]
    fn tp_nn_matches_brute_force() {
        let (tree, items) = build(500, 33);
        let dirs = [
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, -1.0),
            Vec2::new(0.6, 0.8),
            Vec2::new(
                -std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ),
        ];
        for (qi, &qseed) in [(0.31, 0.47), (0.9, 0.1), (0.05, 0.95)].iter().enumerate() {
            let q = Point::new(qseed.0, qseed.1);
            let inner: Vec<Item> = tree.knn(q, 1 + qi).into_iter().map(|(i, _)| i).collect();
            for &dir in &dirs {
                for t_max in [0.05, 0.3, 2.0] {
                    let got = tree.tp_knn(q, dir, t_max, &inner);
                    let want = brute_tp(&items, q, dir, t_max, &inner);
                    match (got, want) {
                        (None, None) => {}
                        (Some(g), Some(w)) => {
                            assert!(
                                (g.time - w.time).abs() < 1e-9,
                                "time {} vs {}",
                                g.time,
                                w.time
                            );
                            assert_eq!(g.object.id, w.object.id);
                        }
                        (g, w) => panic!("mismatch: {g:?} vs {w:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn exact_bound_same_answers_fewer_accesses() {
        let (tree, items) = build(3000, 8);
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 4).into_iter().map(|(i, _)| i).collect();
        let dir = Vec2::new(0.8, -0.6);
        let (loose, loose_stats) =
            tree.with_stats(|t| t.tp_knn_with_bound(q, dir, 1.0, &inner, TpBound::Loose));
        let loose_na = loose_stats.node_accesses;
        let (exact, exact_stats) =
            tree.with_stats(|t| t.tp_knn_with_bound(q, dir, 1.0, &inner, TpBound::Exact));
        let exact_na = exact_stats.node_accesses;
        let want = brute_tp(&items, q, dir, 1.0, &inner);
        assert_eq!(loose.map(|e| e.object.id), want.map(|e| e.object.id));
        assert_eq!(exact.map(|e| e.object.id), want.map(|e| e.object.id));
        assert!(
            exact_na <= loose_na,
            "exact bound should prune at least as hard: {exact_na} vs {loose_na}"
        );
    }

    #[test]
    fn horizon_respected() {
        let (tree, items) = build(400, 50);
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let dir = Vec2::new(1.0, 0.0);
        // Find the unbounded first event, then query with a horizon just
        // below its time: must return None.
        let ev = brute_tp(&items, q, dir, f64::INFINITY, &inner)
            .expect("something influences eventually");
        let short = tree.tp_knn(q, dir, ev.time * 0.99, &inner);
        assert!(short.is_none(), "got {short:?} before horizon {}", ev.time);
        let long = tree.tp_knn(q, dir, ev.time * 1.01, &inner);
        assert_eq!(long.unwrap().object.id, ev.object.id);
    }

    #[test]
    fn knn_inner_set_excluded() {
        let (tree, _) = build(200, 4);
        let q = Point::new(0.4, 0.6);
        let inner: Vec<Item> = tree.knn(q, 5).into_iter().map(|(i, _)| i).collect();
        if let Some(ev) = tree.tp_knn(q, Vec2::new(0.0, 1.0), 10.0, &inner) {
            assert!(
                !inner.iter().any(|o| o.id == ev.object.id),
                "inner objects cannot influence themselves"
            );
            assert!(inner.iter().any(|o| o.id == ev.partner.id));
        }
    }

    #[test]
    fn earliest_nonpositive_cases() {
        // f(t) = t² − 1 ≤ 0 on [−1, 1]; from t0=0 → earliest is 0.
        assert_eq!(earliest_nonpositive(1.0, 0.0, -1.0, 0.0, 2.0), Some(0.0));
        // f(t) = (t−2)(t−3) > 0 at 0; earliest ≤ 0 at t=2.
        let t = earliest_nonpositive(1.0, -5.0, 6.0, 0.0, 10.0).unwrap();
        assert!((t - 2.0).abs() < 1e-12);
        // Roots outside window.
        assert_eq!(earliest_nonpositive(1.0, -5.0, 6.0, 0.0, 1.5), None);
        // Linear: 3 − t ≤ 0 at t = 3.
        let t = earliest_nonpositive(0.0, -1.0, 3.0, 0.0, 5.0).unwrap();
        assert!((t - 3.0).abs() < 1e-12);
        // Always positive.
        assert_eq!(earliest_nonpositive(1.0, 0.0, 1.0, 0.0, 100.0), None);
    }

    #[test]
    #[should_panic]
    fn empty_inner_set_rejected() {
        let (tree, _) = build(10, 1);
        let _ = tree.tp_knn(Point::ORIGIN, Vec2::new(1.0, 0.0), 1.0, &[]);
    }

    /// Probe fixtures shaped like a validity-loop round: a tight tile of
    /// foci with varied directions, horizons, and inner-set sizes, plus
    /// a few spread members.
    fn group_fixture(tree: &RTree, n: usize) -> Vec<(Point, Vec2, f64, Vec<Item>)> {
        let mut data = Vec::new();
        for i in 0..n {
            let q = Point::new(
                0.48 + (i % 8) as f64 * 0.004,
                0.52 + (i / 8 % 8) as f64 * 0.004,
            );
            let inner: Vec<Item> = tree
                .knn(q, 1 + i % 4)
                .into_iter()
                .map(|(it, _)| it)
                .collect();
            let ang = i as f64 * 0.61;
            let dir = Vec2::new(ang.cos(), ang.sin());
            let t_max = 0.01 + (i % 5) as f64 * 0.08;
            data.push((q, dir, t_max, inner));
        }
        for (j, &(x, y)) in [(0.05, 0.05), (0.95, 0.1), (0.9, 0.9)].iter().enumerate() {
            let q = Point::new(x, y);
            let inner: Vec<Item> = tree.knn(q, 2).into_iter().map(|(it, _)| it).collect();
            data.push((q, Vec2::new(0.0, 1.0), 0.3 + j as f64 * 0.1, inner));
        }
        data
    }

    fn assert_group_matches_single(tree: &RTree, data: &[(Point, Vec2, f64, Vec<Item>)]) {
        let probes: Vec<TpProbe<'_>> = data
            .iter()
            .map(|(q, dir, t_max, inner)| TpProbe {
                q: *q,
                dir: *dir,
                t_max: *t_max,
                inner,
            })
            .collect();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        tree.tp_knn_group_in(&probes, &mut scratch, &mut out);
        assert_eq!(out.len(), probes.len());
        for (i, (p, got)) in probes.iter().zip(&out).enumerate() {
            let want = tree.tp_knn_in(p.q, p.dir, p.t_max, p.inner, &mut scratch);
            match (got, &want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    assert_eq!(g.time.to_bits(), w.time.to_bits(), "probe {i} time bits");
                    assert_eq!(g.object.id, w.object.id, "probe {i} object");
                    assert_eq!(g.partner.id, w.partner.id, "probe {i} partner");
                }
                (g, w) => panic!("probe {i} mismatch: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn group_probes_match_single_bit_for_bit() {
        let (tree, _) = build(3000, 21);
        let data = group_fixture(&tree, 40);
        assert_group_matches_single(&tree, &data);
    }

    #[test]
    fn group_chunks_beyond_64_members() {
        let (tree, _) = build(800, 9);
        let data = group_fixture(&tree, 70);
        assert_group_matches_single(&tree, &data);
    }

    #[test]
    fn group_degenerate_sizes() {
        let (tree, _) = build(500, 3);
        let mut scratch = QueryScratch::new();
        let mut out = vec![None; 3];
        tree.tp_knn_group_in(&[], &mut scratch, &mut out);
        assert!(out.is_empty());
        // Size 1 delegates to the single-query path.
        let data = group_fixture(&tree, 0);
        assert_group_matches_single(&tree, &data[..1]);
    }

    #[test]
    fn grouped_tpnn_reads_fewer_nodes_on_a_tight_tile() {
        let (tree, _) = build(20_000, 77);
        let data: Vec<(Point, Vec2, f64, Vec<Item>)> =
            group_fixture(&tree, 32).into_iter().take(32).collect();
        let probes: Vec<TpProbe<'_>> = data
            .iter()
            .map(|(q, dir, t_max, inner)| TpProbe {
                q: *q,
                dir: *dir,
                t_max: *t_max,
                inner,
            })
            .collect();
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        let (_, grouped) = tree.with_stats(|t| {
            t.tp_knn_group_in(&probes, &mut scratch, &mut out);
        });
        let (_, single) = tree.with_stats(|t| {
            for p in &probes {
                let _ = t.tp_knn_in(p.q, p.dir, p.t_max, p.inner, &mut scratch);
            }
        });
        assert!(
            grouped.node_accesses < single.node_accesses,
            "shared frontier {} NA must beat {} per-probe NA on a tight tile",
            grouped.node_accesses,
            single.node_accesses
        );
    }
}
