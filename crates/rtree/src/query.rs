//! Window (range) queries.
//!
//! The classic descent: visit every node whose MBR intersects the query
//! rectangle. Each visited node is metered as one node access (and one
//! buffer touch), reproducing the paper's NA/PA accounting.
//!
//! [`RTree::window_in`] runs the traversal on an explicit stack owned by
//! the caller's [`QueryScratch`], so steady-state window queries perform
//! no heap allocations; children are pushed in reverse slot order so the
//! visit sequence (and thus the result order and access count) is
//! identical to the former recursive descent.

use crate::node::{Item, NodeId};
use crate::probe::QueryProbe;
use crate::scratch::QueryScratch;
use crate::tree::RTree;
use lbq_geom::Rect;

impl RTree {
    /// Returns all items inside the closed query rectangle `q`.
    pub fn window(&self, q: &Rect) -> Vec<Item> {
        let mut scratch = QueryScratch::new();
        self.window_in(q, &mut scratch).to_vec()
    }

    /// [`RTree::window`] against a reusable scratch: zero steady-state
    /// allocations. The returned slice borrows the scratch and is valid
    /// until its next use.
    pub fn window_in<'s>(&self, q: &Rect, scratch: &'s mut QueryScratch) -> &'s [Item] {
        let mut span = lbq_obs::span("rtree-window");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        scratch.out_items.clear();
        let stack = &mut scratch.stack;
        stack.clear();
        stack.push(self.root);
        while let Some(node_id) = stack.pop() {
            probe.pop();
            self.access(node_id);
            let node = self.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                scratch
                    .out_items
                    .extend(node.items.iter().filter(|item| q.contains(item.point)));
                continue;
            }
            // Reverse order: slot 0 must pop first to match recursion.
            for (mbr, &child) in node.mbrs.iter().zip(&node.children).rev() {
                if mbr.intersects(q) {
                    stack.push(child);
                }
            }
        }
        span.record("results", scratch.out_items.len());
        self.finish_query_span(&mut span, &probe, before);
        &scratch.out_items
    }

    /// Number of items inside `q` without materializing them (same
    /// traversal and metering as [`RTree::window`]).
    pub fn window_count(&self, q: &Rect) -> usize {
        fn rec(tree: &RTree, node_id: NodeId, q: &Rect, probe: &mut QueryProbe) -> usize {
            probe.pop();
            tree.access(node_id);
            let node = tree.node(node_id);
            probe.visit(node.level);
            if node.is_leaf() {
                return node
                    .items
                    .iter()
                    .filter(|item| q.contains(item.point))
                    .count();
            }
            node.mbrs
                .iter()
                .zip(&node.children)
                .filter(|(mbr, _)| mbr.intersects(q))
                .map(|(_, &child)| rec(tree, child, q, probe))
                .sum()
        }
        let mut span = lbq_obs::span("rtree-window");
        let before = self.stats();
        let mut probe = QueryProbe::default();
        let count = rec(self, self.root, q, &mut probe);
        span.record("results", count);
        self.finish_query_span(&mut span, &probe, before);
        count
    }

    /// Counts tree nodes whose MBR intersects `q`, and those fully
    /// contained in `q` — the quantities `NA_intrsct` and `NA_cont` of
    /// the paper's Section 5 cost analysis for the second (marginal)
    /// window query. Unmetered: this is a model-validation helper, not a
    /// query a server would run.
    pub fn node_intersection_profile(&self, q: &Rect) -> (u64, u64) {
        fn rec(tree: &RTree, node_id: NodeId, q: &Rect, acc: &mut (u64, u64)) {
            let mbr = match tree.node(node_id).mbr() {
                Some(r) => r,
                None => return,
            };
            if !mbr.intersects(q) {
                return;
            }
            acc.0 += 1;
            if q.contains_rect(&mbr) {
                acc.1 += 1;
            }
            let node = tree.node(node_id);
            if !node.is_leaf() {
                for &child in &node.children {
                    rec(tree, child, q, acc);
                }
            }
        }
        let mut acc = (0, 0);
        rec(self, self.root, q, &mut acc);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Item, RTreeConfig};
    use lbq_geom::Point;

    fn build(n: usize, seed: u64) -> (RTree, Vec<Item>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let items: Vec<Item> = (0..n)
            .map(|i| {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                Item::new(Point::new(x, y), i as u64)
            })
            .collect();
        (RTree::bulk_load(items.clone(), RTreeConfig::tiny()), items)
    }

    fn brute(items: &[Item], q: &Rect) -> Vec<u64> {
        let mut v: Vec<u64> = items
            .iter()
            .filter(|i| q.contains(i.point))
            .map(|i| i.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn window_matches_brute_force() {
        let (tree, items) = build(800, 3);
        let queries = [
            Rect::new(10.0, 10.0, 30.0, 40.0),
            Rect::new(0.0, 0.0, 100.0, 100.0),
            Rect::new(99.5, 99.5, 100.0, 100.0),
            Rect::new(-10.0, -10.0, -1.0, -1.0),
            Rect::new(50.0, 0.0, 50.0, 100.0), // degenerate line window
        ];
        for q in &queries {
            let mut got: Vec<u64> = tree.window(q).into_iter().map(|i| i.id).collect();
            got.sort_unstable();
            assert_eq!(got, brute(&items, q), "window {q:?}");
            assert_eq!(tree.window_count(q), got.len());
        }
    }

    #[test]
    fn empty_window_costs_one_access() {
        let (tree, _) = build(500, 11);
        let (out, s) = tree.with_stats(|t| t.window(&Rect::new(-50.0, -50.0, -40.0, -40.0)));
        assert!(out.is_empty());
        assert_eq!(s.node_accesses, 1, "only the root is read");
    }

    #[test]
    fn full_window_reads_every_node() {
        let (tree, _) = build(600, 13);
        let (out, s) = tree.with_stats(|t| t.window(&Rect::new(0.0, 0.0, 100.0, 100.0)));
        assert_eq!(out.len(), 600);
        assert_eq!(s.node_accesses as usize, tree.node_count());
    }

    #[test]
    fn intersection_profile_consistent() {
        let (tree, _) = build(700, 17);
        let q = Rect::new(20.0, 20.0, 70.0, 60.0);
        let (intersecting, contained) = tree.node_intersection_profile(&q);
        assert!(contained <= intersecting);
        // The window query visits exactly the intersecting nodes.
        let (_, s) = tree.with_stats(|t| t.window(&q));
        assert_eq!(s.node_accesses, intersecting);
        // A universe query contains every node.
        let all = Rect::new(-1.0, -1.0, 101.0, 101.0);
        let (i2, c2) = tree.node_intersection_profile(&all);
        assert_eq!(i2, c2);
        assert_eq!(i2 as usize, tree.node_count());
    }

    #[test]
    fn window_count_matches_window_accesses() {
        let (tree, _) = build(400, 29);
        let q = Rect::new(5.0, 5.0, 60.0, 55.0);
        let (n, s1) = tree.with_stats(|t| t.window(&q).len());
        let (c, s2) = tree.with_stats(|t| t.window_count(&q));
        assert_eq!(n, c);
        assert_eq!(s1.node_accesses, s2.node_accesses);
    }
}
