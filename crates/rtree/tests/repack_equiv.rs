//! Equivalence suite for the Hilbert-packed arena: every query against a
//! repacked tree must return **bit-identical** results to the same query
//! against the source tree. `repack()` promises exactly this (the arena
//! rewrite changes memory order, never geometry), and the packed arena's
//! column mirror adds a second code path — the vectorized leaf/child
//! prepasses — that these tests pin against the row-layout scans, across
//! configs and across build styles (insert-built and bulk-loaded).
//!
//! A final group mutates the packed tree, which drops the column mirror:
//! the same stream then exercises the row-layout fallback on the packed
//! arena, proving the mirror is an accelerator, not a dependency.

use lbq_geom::{Point, Rect, Vec2};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, QueryScratch, RTree, RTreeConfig};

fn rand_items(rng: &mut Xoshiro256ss, n: usize) -> Vec<Item> {
    (0..n)
        .map(|i| {
            Item::new(
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                i as u64,
            )
        })
        .collect()
}

fn rand_dir(rng: &mut Xoshiro256ss) -> Vec2 {
    loop {
        let v = Vec2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        if let Some(u) = v.normalized() {
            return u;
        }
    }
}

fn assert_nn_identical(a: &[(Item, f64)], b: &[(Item, f64)], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: result length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.0.id, y.0.id, "{ctx}: id at {i}");
        assert_eq!(
            x.1.to_bits(),
            y.1.to_bits(),
            "{ctx}: distance bits at {i} ({} vs {})",
            x.1,
            y.1
        );
    }
}

/// Window results come back in traversal order, which legitimately
/// differs between arenas; the *set* must match exactly.
fn assert_window_identical(a: &[Item], b: &[Item], ctx: &str) {
    let mut a: Vec<u64> = a.iter().map(|i| i.id).collect();
    let mut b: Vec<u64> = b.iter().map(|i| i.id).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "{ctx}: window item set");
}

fn configs() -> [RTreeConfig; 2] {
    [RTreeConfig::tiny(), RTreeConfig::paper()]
}

/// A mixed ~250-query stream (kNN best-first, kNN depth-first, window,
/// TPNN) against both trees, all results compared bit-for-bit.
fn assert_stream_equiv(orig: &RTree, packed: &RTree, rng: &mut Xoshiro256ss, ctx: &str) {
    let mut sa = QueryScratch::new();
    let mut sb = QueryScratch::new();
    for case in 0..250 {
        let q = Point::new(rng.gen_range(-0.2..1.2), rng.gen_range(-0.2..1.2));
        match case % 4 {
            0 => {
                let k = rng.gen_range(1..14usize);
                assert_nn_identical(
                    orig.knn_in(q, k, &mut sa),
                    packed.knn_in(q, k, &mut sb),
                    &format!("{ctx}: knn case {case}"),
                );
            }
            1 => {
                let k = rng.gen_range(1..10usize);
                assert_nn_identical(
                    orig.knn_depth_first_in(q, k, &mut sa),
                    packed.knn_depth_first_in(q, k, &mut sb),
                    &format!("{ctx}: knn-df case {case}"),
                );
            }
            2 => {
                let w = rng.gen_range(0.01..0.3);
                let h = rng.gen_range(0.01..0.3);
                let win = Rect::new(q.x, q.y, q.x + w, q.y + h);
                assert_window_identical(
                    orig.window_in(&win, &mut sa),
                    packed.window_in(&win, &mut sb),
                    &format!("{ctx}: window case {case}"),
                );
            }
            _ => {
                // TPNN probe seeded like the validity-region loop: the
                // inner set is a kNN result, the ray is random.
                let k = rng.gen_range(1..6usize);
                let inner: Vec<Item> = orig.knn_in(q, k, &mut sa).iter().map(|&(i, _)| i).collect();
                let dir = rand_dir(rng);
                let t_max = rng.gen_range(0.05..2.0);
                let ea = orig.tp_knn_in(q, dir, t_max, &inner, &mut sa);
                let eb = packed.tp_knn_in(q, dir, t_max, &inner, &mut sb);
                match (ea, eb) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.object.id, b.object.id, "{ctx}: tpnn object {case}");
                        assert_eq!(a.partner.id, b.partner.id, "{ctx}: tpnn partner {case}");
                        assert_eq!(
                            a.time.to_bits(),
                            b.time.to_bits(),
                            "{ctx}: tpnn time bits {case}"
                        );
                    }
                    (a, b) => panic!("{ctx}: tpnn case {case} diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn repack_preserves_queries_bit_for_bit() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x9E9ACC);
    for config in configs() {
        // Insert-built: the arena order repack untangles.
        let mut orig = RTree::new(config);
        for item in rand_items(&mut rng, 900) {
            orig.insert(item);
        }
        let packed = orig.repack();
        assert!(!orig.is_packed());
        assert!(packed.is_packed());
        // The rewrite copies the structure: same shape, same contents.
        assert_eq!(orig.len(), packed.len());
        assert_eq!(orig.height(), packed.height());
        assert_eq!(orig.node_count(), packed.node_count());
        packed.validate().expect("packed tree invariants");
        assert_stream_equiv(&orig, &packed, &mut rng, "insert-built");
    }
}

#[test]
fn bulk_load_packed_matches_bulk_load() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xB17B17);
    for config in configs() {
        let items = rand_items(&mut rng, 1200);
        let orig = RTree::bulk_load(items.clone(), config);
        let packed = RTree::bulk_load_packed(items, config);
        assert!(packed.is_packed());
        assert_eq!(orig.len(), packed.len());
        assert_eq!(orig.height(), packed.height());
        packed.validate().expect("packed tree invariants");
        assert_stream_equiv(&orig, &packed, &mut rng, "bulk-loaded");
    }
}

#[test]
fn group_knn_bit_identical_on_packed_tree() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x6E0095);
    for config in configs() {
        let packed = RTree::bulk_load_packed(rand_items(&mut rng, 1200), config);
        let mut sa = QueryScratch::new();
        let mut sb = QueryScratch::new();
        for case in 0..40 {
            // Tight tiles (shared frontier) and spread tiles (per-query
            // fallback) in alternation.
            let m = rng.gen_range(1..9usize);
            let c = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let spread = if case % 2 == 0 { 0.01 } else { 0.7 };
            let tile: Vec<Point> = (0..m)
                .map(|_| {
                    Point::new(
                        c.x + spread * (rng.gen_range(-1.0..1.0)),
                        c.y + spread * (rng.gen_range(-1.0..1.0)),
                    )
                })
                .collect();
            let k = rng.gen_range(1..12usize);
            let grouped = packed.knn_group_in(&tile, k, &mut sa).to_vec();
            let mut single = Vec::new();
            for &q in &tile {
                single.extend(packed.knn_in(q, k, &mut sb).iter().copied());
            }
            assert_nn_identical(&grouped, &single, &format!("group case {case}"));
        }
    }
}

#[test]
fn mutated_packed_tree_falls_back_bit_for_bit() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xFA11BAC);
    for config in configs() {
        let items = rand_items(&mut rng, 900);
        let mut orig = RTree::bulk_load(items.clone(), config);
        let mut packed = RTree::bulk_load_packed(items, config);
        // Mutation invalidates the column mirror; the packed arena must
        // answer through the row-layout fallback from here on. The same
        // items go into both trees so the *answers* stay comparable even
        // though the structures may now differ.
        for j in 0..5 {
            let extra = Item::new(
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                10_000 + j,
            );
            orig.insert(extra);
            packed.insert(extra);
        }
        assert_eq!(orig.len(), packed.len());
        packed.validate().expect("mutated packed tree invariants");
        assert_stream_equiv(&orig, &packed, &mut rng, "mutated-packed");
    }
}
