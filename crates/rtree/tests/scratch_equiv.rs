//! Equivalence suite for the zero-allocation `_in` query variants: for
//! every query kind, the scratch-backed path must return **bit-identical**
//! results to the plain allocating path (which itself delegates to `_in`
//! with a fresh scratch — these tests pin that delegation and prove a
//! *reused* scratch carries no state between calls, across query kinds
//! and across configs).

use lbq_geom::{Point, Rect, Vec2};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, QueryScratch, RTree, RTreeConfig, TpBound};

fn rand_items(rng: &mut Xoshiro256ss, n: usize) -> Vec<Item> {
    (0..n)
        .map(|i| {
            Item::new(
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                i as u64,
            )
        })
        .collect()
}

fn rand_dir(rng: &mut Xoshiro256ss) -> Vec2 {
    loop {
        let v = Vec2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        if let Some(u) = v.normalized() {
            return u;
        }
    }
}

/// Bitwise equality for (item, distance) result lists.
fn assert_nn_identical(plain: &[(Item, f64)], scratch: &[(Item, f64)], ctx: &str) {
    assert_eq!(plain.len(), scratch.len(), "{ctx}: result length");
    for (i, (p, s)) in plain.iter().zip(scratch).enumerate() {
        assert_eq!(p.0.id, s.0.id, "{ctx}: id at {i}");
        assert_eq!(
            p.1.to_bits(),
            s.1.to_bits(),
            "{ctx}: distance bits at {i} ({} vs {})",
            p.1,
            s.1
        );
    }
}

fn configs() -> [RTreeConfig; 2] {
    [RTreeConfig::tiny(), RTreeConfig::paper()]
}

#[test]
fn knn_in_bit_identical_to_knn() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x51A7C4);
    for config in configs() {
        let tree = RTree::bulk_load(rand_items(&mut rng, 900), config);
        let mut scratch = QueryScratch::new();
        for case in 0..60 {
            let q = Point::new(rng.gen_range(-0.2..1.2), rng.gen_range(-0.2..1.2));
            let k = rng.gen_range(1..12usize);
            let plain = tree.knn(q, k);
            let reused = tree.knn_in(q, k, &mut scratch);
            assert_nn_identical(&plain, reused, &format!("knn case {case}"));
        }
    }
}

#[test]
fn knn_depth_first_in_bit_identical() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xDF5EED);
    for config in configs() {
        let tree = RTree::bulk_load(rand_items(&mut rng, 700), config);
        let mut scratch = QueryScratch::new();
        for case in 0..60 {
            let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let k = rng.gen_range(1..9usize);
            let plain = tree.knn_depth_first(q, k);
            let reused = tree.knn_depth_first_in(q, k, &mut scratch);
            assert_nn_identical(&plain, reused, &format!("df case {case}"));
        }
    }
}

#[test]
fn window_in_bit_identical_to_window() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x77AA01);
    for config in configs() {
        let tree = RTree::bulk_load(rand_items(&mut rng, 800), config);
        let mut scratch = QueryScratch::new();
        for case in 0..60 {
            let x = rng.gen_range(0.0..0.9);
            let y = rng.gen_range(0.0..0.9);
            let w = Rect::new(
                x,
                y,
                x + rng.gen_range(0.01..0.4),
                y + rng.gen_range(0.01..0.4),
            );
            let plain = tree.window(&w);
            let reused = tree.window_in(&w, &mut scratch);
            assert_eq!(plain.len(), reused.len(), "window case {case}");
            for (p, s) in plain.iter().zip(reused) {
                assert_eq!(p.id, s.id, "window case {case}");
            }
        }
    }
}

#[test]
fn tp_knn_in_bit_identical_for_both_bounds() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x79AB2C);
    for config in configs() {
        let tree = RTree::bulk_load(rand_items(&mut rng, 600), config);
        let mut scratch = QueryScratch::new();
        for case in 0..40 {
            let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let dir = rand_dir(&mut rng);
            let t_max = rng.gen_range(0.01..1.5);
            let k = rng.gen_range(1..5usize);
            let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
            for bound in [TpBound::Loose, TpBound::Exact] {
                let plain = tree.tp_knn_with_bound(q, dir, t_max, &inner, bound);
                let reused = tree.tp_knn_with_bound_in(q, dir, t_max, &inner, bound, &mut scratch);
                match (plain, reused) {
                    (None, None) => {}
                    (Some(p), Some(s)) => {
                        assert_eq!(p.object.id, s.object.id, "tp case {case} {bound:?}");
                        assert_eq!(p.partner.id, s.partner.id, "tp case {case} {bound:?}");
                        assert_eq!(
                            p.time.to_bits(),
                            s.time.to_bits(),
                            "tp case {case} {bound:?}: time bits ({} vs {})",
                            p.time,
                            s.time
                        );
                    }
                    (p, s) => panic!("tp case {case} {bound:?}: {p:?} vs {s:?}"),
                }
            }
        }
    }
}

#[test]
fn tp_window_in_bit_identical() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x7B317D0);
    for config in configs() {
        let tree = RTree::bulk_load(rand_items(&mut rng, 500), config);
        let mut scratch = QueryScratch::new();
        for case in 0..40 {
            let c = Point::new(rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9));
            let (hx, hy) = (rng.gen_range(0.01..0.2), rng.gen_range(0.01..0.2));
            let dir = rand_dir(&mut rng);
            let t_max = rng.gen_range(0.01..1.0);
            let result = tree.window(&Rect::centered(c, hx, hy));
            let plain = tree.tp_window(c, dir, t_max, hx, hy, &result);
            let reused = tree.tp_window_in(c, dir, t_max, hx, hy, &result, &mut scratch);
            match (plain, reused) {
                (None, None) => {}
                (Some(p), Some(s)) => {
                    assert_eq!(p.object.id, s.object.id, "tpwin case {case}");
                    assert_eq!(p.change, s.change, "tpwin case {case}");
                    assert_eq!(
                        p.time.to_bits(),
                        s.time.to_bits(),
                        "tpwin case {case}: time bits"
                    );
                }
                (p, s) => panic!("tpwin case {case}: {p:?} vs {s:?}"),
            }
        }
    }
}

/// One scratch across 1000 interleaved queries of every kind: reuse
/// must never leak state from one query (or query *kind*) into the
/// next.
#[test]
fn one_scratch_across_mixed_query_stream() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x00A11A5);
    let tree = RTree::bulk_load(rand_items(&mut rng, 1000), RTreeConfig::tiny());
    let mut scratch = QueryScratch::new();
    for case in 0..1000 {
        let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        match case % 4 {
            0 => {
                let k = rng.gen_range(1..10usize);
                let plain = tree.knn(q, k);
                assert_nn_identical(&plain, tree.knn_in(q, k, &mut scratch), "mixed knn");
            }
            1 => {
                let w = Rect::centered(q, rng.gen_range(0.01..0.3), rng.gen_range(0.01..0.3));
                let plain = tree.window(&w);
                let reused = tree.window_in(&w, &mut scratch);
                assert_eq!(plain.len(), reused.len(), "mixed window case {case}");
                for (p, s) in plain.iter().zip(reused) {
                    assert_eq!(p.id, s.id, "mixed window case {case}");
                }
            }
            2 => {
                let dir = rand_dir(&mut rng);
                let inner: Vec<Item> = tree.knn(q, 2).into_iter().map(|(i, _)| i).collect();
                let plain = tree.tp_knn(q, dir, 0.5, &inner);
                let reused = tree.tp_knn_in(q, dir, 0.5, &inner, &mut scratch);
                assert_eq!(
                    plain.map(|e| (e.object.id, e.time.to_bits())),
                    reused.map(|e| (e.object.id, e.time.to_bits())),
                    "mixed tp case {case}"
                );
            }
            _ => {
                let k = rng.gen_range(1..6usize);
                let plain = tree.knn_depth_first(q, k);
                assert_nn_identical(
                    &plain,
                    tree.knn_depth_first_in(q, k, &mut scratch),
                    "mixed df",
                );
            }
        }
    }
}
