//! Randomized property-style tests: the R\*-tree agrees with brute force
//! on every query type, under random data, random construction method
//! and random mutation.
//!
//! Formerly `proptest`; now seeded [`lbq_rng`] randomness (the build
//! environment has no crates.io access). Deterministic per run; the
//! `heavy-tests` feature multiplies case counts.

use lbq_geom::{Point, Rect, Vec2};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, RTree, RTreeConfig};

/// Case-count knob: 8× under `--features heavy-tests`.
fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

fn rand_items(rng: &mut Xoshiro256ss, max: usize) -> Vec<Item> {
    let n = rng.gen_range(1..max);
    (0..n)
        .map(|i| {
            Item::new(
                Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                i as u64,
            )
        })
        .collect()
}

fn rand_rect(rng: &mut Xoshiro256ss) -> Rect {
    let x = rng.gen_range(0.0..100.0);
    let y = rng.gen_range(0.0..100.0);
    let w = rng.gen_range(0.1..60.0);
    let h = rng.gen_range(0.1..60.0);
    Rect::new(x, y, (x + w).min(100.0), (y + h).min(100.0))
}

fn build(items: &[Item], bulk: bool) -> RTree {
    if bulk {
        RTree::bulk_load(items.to_vec(), RTreeConfig::tiny())
    } else {
        let mut t = RTree::new(RTreeConfig::tiny());
        for &i in items {
            t.insert(i);
        }
        t
    }
}

#[test]
fn window_query_matches_brute_force() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x71D0);
    for case in 0..cases(64) {
        let items = rand_items(&mut rng, 400);
        let q = rand_rect(&mut rng);
        let bulk = rng.gen_bool(0.5);
        let tree = build(&items, bulk);
        tree.check_invariants().expect("structural invariants");
        let mut got: Vec<u64> = tree.window(&q).into_iter().map(|i| i.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|i| q.contains(i.point))
            .map(|i| i.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case} (bulk={bulk})");
    }
}

#[test]
fn knn_matches_brute_force() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x6EA3);
    for case in 0..cases(64) {
        let items = rand_items(&mut rng, 300);
        let q = Point::new(rng.gen_range(-10.0..110.0), rng.gen_range(-10.0..110.0));
        let k = rng.gen_range(1..20usize);
        let bulk = rng.gen_bool(0.5);
        let tree = build(&items, bulk);
        let got: Vec<u64> = tree.knn(q, k).into_iter().map(|(i, _)| i.id).collect();
        let got_df: Vec<u64> = tree
            .knn_depth_first(q, k)
            .into_iter()
            .map(|(i, _)| i.id)
            .collect();
        let mut all: Vec<(f64, u64)> = items.iter().map(|i| (q.dist_sq(i.point), i.id)).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        let want: Vec<u64> = all.into_iter().take(k).map(|(_, id)| id).collect();
        assert_eq!(&got, &want, "case {case}: best-first");
        assert_eq!(&got_df, &want, "case {case}: depth-first");
    }
}

#[test]
fn tp_knn_matches_brute_force() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x7972);
    let mut tested = 0;
    while tested < cases(64) {
        let items = rand_items(&mut rng, 250);
        let qx = rng.gen_range(0.0..100.0);
        let qy = rng.gen_range(0.0..100.0);
        let theta = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let k = rng.gen_range(1..6usize);
        let t_max = rng.gen_range(1.0..200.0);
        if items.len() <= k {
            continue;
        }
        tested += 1;
        let tree = build(&items, true);
        let q = Point::new(qx, qy);
        let dir = Vec2::from_angle(theta);
        let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();

        let got = tree.tp_knn(q, dir, t_max, &inner);

        // Brute force: minimum bisector-crossing time over all outer
        // points and inner partners.
        let mut want: Option<(f64, u64)> = None;
        for item in &items {
            if inner.iter().any(|o| o.id == item.id) {
                continue;
            }
            let dp = q.dist_sq(item.point);
            for o in &inner {
                let f0 = dp - q.dist_sq(o.point);
                let denom = 2.0 * dir.dot(o.point.to(item.point));
                let t = if f0 <= 0.0 {
                    Some(0.0)
                } else if denom > 0.0 {
                    Some(f0 / denom)
                } else {
                    None
                };
                if let Some(t) = t {
                    if t <= t_max
                        && want.is_none_or(|(bt, bid)| t < bt || (t == bt && item.id < bid))
                    {
                        want = Some((t, item.id));
                    }
                }
            }
        }
        match (got, want) {
            (None, None) => {}
            (Some(g), Some((wt, _))) => {
                // Times must agree; the object may differ only on exact ties.
                assert!(
                    (g.time - wt).abs() <= 1e-9 * wt.max(1.0),
                    "time {} vs brute {}",
                    g.time,
                    wt
                );
            }
            (g, w) => panic!("presence mismatch: {g:?} vs {w:?}"),
        }
    }
}

#[test]
fn delete_keeps_queries_correct() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xDE1E);
    for case in 0..cases(64) {
        let items = rand_items(&mut rng, 200);
        let q = rand_rect(&mut rng);
        let mut tree = build(&items, false);
        let mut live: Vec<Item> = Vec::new();
        for &item in &items {
            if rng.gen_bool(0.5) {
                assert!(
                    tree.delete(item.point, item.id),
                    "case {case}: delete failed"
                );
            } else {
                live.push(item);
            }
        }
        tree.check_invariants()
            .expect("structural invariants after deletes");
        assert_eq!(tree.len(), live.len(), "case {case}");
        let mut got: Vec<u64> = tree.window(&q).into_iter().map(|i| i.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = live
            .iter()
            .filter(|i| q.contains(i.point))
            .map(|i| i.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

#[test]
fn bulk_and_incremental_agree() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xB01C);
    for case in 0..cases(64) {
        let items = rand_items(&mut rng, 300);
        let q = rand_rect(&mut rng);
        let bulk = build(&items, true);
        let incr = build(&items, false);
        let mut a: Vec<u64> = bulk.window(&q).into_iter().map(|i| i.id).collect();
        let mut b: Vec<u64> = incr.window(&q).into_iter().map(|i| i.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "case {case}");
    }
}
