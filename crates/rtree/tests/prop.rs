//! Property-based tests: the R\*-tree agrees with brute force on every
//! query type, under random data, random construction method and random
//! mutation.

use lbq_geom::{Point, Rect, Vec2};
use lbq_rtree::{Item, RTree, RTreeConfig};
use proptest::prelude::*;

fn items_strategy(max: usize) -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(Point::new(x, y), i as u64))
            .collect()
    })
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0.0..100.0f64, 0.0..100.0f64, 0.1..60.0f64, 0.1..60.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(100.0), (y + h).min(100.0)))
}

fn build(items: &[Item], bulk: bool) -> RTree {
    if bulk {
        RTree::bulk_load(items.to_vec(), RTreeConfig::tiny())
    } else {
        let mut t = RTree::new(RTreeConfig::tiny());
        for &i in items {
            t.insert(i);
        }
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_query_matches_brute_force(
        items in items_strategy(400),
        q in rect_strategy(),
        bulk in any::<bool>(),
    ) {
        let tree = build(&items, bulk);
        tree.check_invariants().unwrap();
        let mut got: Vec<u64> = tree.window(&q).into_iter().map(|i| i.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|i| q.contains(i.point))
            .map(|i| i.id)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute_force(
        items in items_strategy(300),
        qx in -10.0..110.0f64,
        qy in -10.0..110.0f64,
        k in 1usize..20,
        bulk in any::<bool>(),
    ) {
        let tree = build(&items, bulk);
        let q = Point::new(qx, qy);
        let got: Vec<u64> = tree.knn(q, k).into_iter().map(|(i, _)| i.id).collect();
        let got_df: Vec<u64> =
            tree.knn_depth_first(q, k).into_iter().map(|(i, _)| i.id).collect();
        let mut all: Vec<(f64, u64)> =
            items.iter().map(|i| (q.dist_sq(i.point), i.id)).collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<u64> = all.into_iter().take(k).map(|(_, id)| id).collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(&got_df, &want);
    }

    #[test]
    fn tp_knn_matches_brute_force(
        items in items_strategy(250),
        qx in 0.0..100.0f64,
        qy in 0.0..100.0f64,
        theta in 0.0..(2.0 * std::f64::consts::PI),
        k in 1usize..6,
        t_max in 1.0..200.0f64,
    ) {
        let tree = build(&items, true);
        prop_assume!(items.len() > k);
        let q = Point::new(qx, qy);
        let dir = Vec2::from_angle(theta);
        let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();

        let got = tree.tp_knn(q, dir, t_max, &inner);

        // Brute force: minimum bisector-crossing time over all outer
        // points and inner partners.
        let mut want: Option<(f64, u64)> = None;
        for item in &items {
            if inner.iter().any(|o| o.id == item.id) { continue; }
            let dp = q.dist_sq(item.point);
            for o in &inner {
                let f0 = dp - q.dist_sq(o.point);
                let denom = 2.0 * dir.dot(o.point.to(item.point));
                let t = if f0 <= 0.0 { Some(0.0) }
                    else if denom > 0.0 { Some(f0 / denom) }
                    else { None };
                if let Some(t) = t {
                    if t <= t_max
                        && want.is_none_or(|(bt, bid)| t < bt || (t == bt && item.id < bid))
                    {
                        want = Some((t, item.id));
                    }
                }
            }
        }
        match (got, want) {
            (None, None) => {}
            (Some(g), Some((wt, _))) => {
                // Times must agree; the object may differ only on exact ties.
                prop_assert!((g.time - wt).abs() <= 1e-9 * wt.max(1.0),
                    "time {} vs brute {}", g.time, wt);
            }
            (g, w) => prop_assert!(false, "presence mismatch: {:?} vs {:?}", g, w),
        }
    }

    #[test]
    fn delete_keeps_queries_correct(
        items in items_strategy(200),
        del_mask in proptest::collection::vec(any::<bool>(), 200),
        q in rect_strategy(),
    ) {
        let mut tree = build(&items, false);
        let mut live: Vec<Item> = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            if del_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(tree.delete(item.point, item.id));
            } else {
                live.push(item);
            }
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(tree.len(), live.len());
        let mut got: Vec<u64> = tree.window(&q).into_iter().map(|i| i.id).collect();
        got.sort_unstable();
        let mut want: Vec<u64> =
            live.iter().filter(|i| q.contains(i.point)).map(|i| i.id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_and_incremental_agree(
        items in items_strategy(300),
        q in rect_strategy(),
    ) {
        let bulk = build(&items, true);
        let incr = build(&items, false);
        let mut a: Vec<u64> = bulk.window(&q).into_iter().map(|i| i.id).collect();
        let mut b: Vec<u64> = incr.window(&q).into_iter().map(|i| i.id).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
