//! Analytical models — Section 5 of the paper.
//!
//! The paper derives the *expected size of the validity region* for both
//! query types under uniform data (and, via a Minskew histogram, for
//! skewed data), plus R-tree node-access estimates. These models drive
//! the "estimated" series of Figs. 22, 23, 29 and 30.
//!
//! ## Window queries (eqs. 5-4, 5-5)
//!
//! The validity region is star-shaped around the query focus; its area
//! is `A = ½ ∫₀^{2π} E[dist(θ)²] dθ`, where `dist(θ)` is how far the
//! focus can travel in direction θ before the result changes. The result
//! changes exactly when the window boundary *sweeps* over a point; for
//! travel ξ at angle θ the swept area is
//! `P_single(ξ,θ) = 2ξ(q_y cosθ + q_x sinθ) − ξ² cosθ sinθ`
//! (window extents `q_x × q_y`, unit-square universe), so
//! `P{dist(θ) > ξ} = (1 − P_single)^N`. `E[dist(θ)²]` follows by the
//! tail formula and numeric quadrature.
//!
//! ## Nearest-neighbor queries
//!
//! Same sweeping-region argument with a disk: the 1-NN result at
//! distance `r` is invalidated when a point falls in the *lune*
//! `D(q+ξe_θ, r′) ∖ D(q, r)` (`r′` = distance from the moved focus to
//! the old neighbor). Averaging the Poisson void probability of that
//! lune over the NN-distance density `2πNr·e^{−Nπr²}` and the
//! neighbor's bearing gives the survival function; the region area is
//! again `π·E[dist²]`. For `k > 1` the paper invokes the `[OBSC00]`
//! result that the expected order-k cell area scales as `1/(2k−1)`,
//! which is exactly how [`nn_validity_area`] extends the k = 1 integral.
//!
//! ## Non-uniform data (eq. 5-6)
//!
//! All formulas take the cardinality `N` as a parameter; for skewed
//! data, pass the **effective cardinality** `N′` from
//! [`lbq_hist::Minskew`] (local density around the query scaled to the
//! universe).

use lbq_geom::quad::{expect_sq_from_survival, simpson};
use std::f64::consts::PI;

/// Expected validity-region area of a location-based **window query**
/// with extents `qx × qy` among `n` uniform points in the unit square
/// (eqs. 5-4 / 5-5).
pub fn window_validity_area(n: f64, qx: f64, qy: f64) -> f64 {
    assert!(n > 0.0 && qx > 0.0 && qy > 0.0);
    // 4-fold symmetry: integrate θ over one quadrant.
    let quadrant = simpson(
        |theta| window_e_dist_sq(n, qx, qy, theta),
        0.0,
        PI / 2.0,
        48,
    );
    // A = ½∫₀^{2π} = ½ · 4 · ∫ quadrant.
    2.0 * quadrant
}

/// `E[dist(θ)²]` for the window model.
fn window_e_dist_sq(n: f64, qx: f64, qy: f64, theta: f64) -> f64 {
    let s = qy * theta.cos() + qx * theta.sin(); // linear sweep coefficient
    let cs = theta.cos() * theta.sin();
    if s <= 0.0 {
        return 0.0;
    }
    // Survival S(ξ) = (1 − P_single)^n, P_single = 2ξs − ξ²cs.
    let survival = move |xi: f64| {
        let p = (2.0 * xi * s - xi * xi * cs).clamp(0.0, 1.0);
        (1.0 - p).powf(n)
    };
    // Integrate until the survival is negligible: P_single ≈ 2ξs, so
    // n·2ξs ≈ 40 ⇒ ξ* = 20/(n·s); cap at the universe diagonal.
    let cutoff = (20.0 / (n * s)).min(std::f64::consts::SQRT_2);
    expect_sq_from_survival(survival, cutoff, 512)
}

/// Expected validity-region area of a location-based **k-NN query**
/// among `n` uniform points in the unit square.
///
/// k = 1 is the full sweeping-lune integral. For k > 1 the *typical*
/// order-k Voronoi cell shrinks as `1/(2k−1)` `[OBSC00]` — the law the
/// paper's Fig. 22b cites — but the validity region is the cell
/// **containing the query point**, which is size-biased
/// (`E[A²]/E[A]`), and the bias grows with the cell-area variance of
/// higher-order diagrams. The correction `γ(k) = 3 − 2·k^(−0.7)`
/// (γ(1) = 1, saturating near 3) was calibrated once against uniform
/// workloads (see `tests/models_vs_measurement.rs` and EXPERIMENTS.md)
/// and holds across n and k to within ~15%.
pub fn nn_validity_area(n: f64, k: usize) -> f64 {
    assert!(n > 0.0 && k >= 1);
    let kf = k as f64;
    let size_bias = 3.0 - 2.0 * kf.powf(-0.7);
    nn_validity_area_1(n) * size_bias / (2.0 * kf - 1.0)
}

/// The k = 1 integral: `A = π · E[dist²]` with the lune-void survival
/// function.
fn nn_validity_area_1(n: f64) -> f64 {
    // Scales: NN distance ~ 1/(2√n); travel distances of interest are a
    // few times that.
    let r_max = (30.0 / (n * PI)).sqrt();
    let xi_max = 5.0 / n.sqrt();
    let survival = |xi: f64| -> f64 {
        // lbq-check: allow(float-eq) — exact sentinel for the zero-travel case
        if xi == 0.0 {
            return 1.0;
        }
        // E over r (NN distance) of E over α (neighbor bearing) of the
        // void probability of the swept lune.
        simpson(
            |r| {
                let pdf = 2.0 * PI * n * r * (-n * PI * r * r).exp();
                if pdf < 1e-300 {
                    return 0.0;
                }
                let inner = simpson(
                    |alpha| {
                        let r2_sq = r * r + xi * xi - 2.0 * r * xi * alpha.cos();
                        let r2 = r2_sq.max(0.0).sqrt();
                        let lune = (PI * r2_sq - circle_overlap_area(r, r2, xi)).max(0.0);
                        (-n * lune).exp()
                    },
                    0.0,
                    PI, // cos symmetry halves the bearing integral
                    24,
                ) / PI;
                pdf * inner
            },
            0.0,
            r_max,
            48,
        )
    };
    PI * expect_sq_from_survival(survival, xi_max, 96)
}

/// Area of the intersection of two disks with radii `r1`, `r2` and
/// center distance `d` (the standard lens formula).
pub fn circle_overlap_area(r1: f64, r2: f64, d: f64) -> f64 {
    if d >= r1 + r2 {
        return 0.0;
    }
    let (small, big) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
    if d + small <= big {
        return PI * small * small; // full containment
    }
    let d2 = d * d;
    let a1 = ((d2 + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
    let a2 = ((d2 + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
    let t1 = a1.acos();
    let t2 = a2.acos();
    r1 * r1 * t1 + r2 * r2 * t2
        - 0.5
            * ((-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2))
                .max(0.0)
                .sqrt()
}

/// Expected inner-validity-rectangle extents of a window query
/// (eq. 5-7): the focus travels `1/(N·q_y)` along ±x and `1/(N·q_x)`
/// along ±y before an inner point hits the window edge.
pub fn window_inner_extents(n: f64, qx: f64, qy: f64) -> (f64, f64) {
    (1.0 / (n * qy), 1.0 / (n * qx))
}

/// The `[TSS00]` R-tree cost model for uniform unit-square data: node
/// geometry per level and expected node accesses for window queries.
#[derive(Debug, Clone, Copy)]
pub struct RtreeCostModel {
    /// Data cardinality.
    pub n: f64,
    /// Average entries per leaf (capacity × fill).
    pub leaf_occupancy: f64,
    /// Average fan-out of internal nodes.
    pub fanout: f64,
}

impl RtreeCostModel {
    /// Model for a tree built like the paper's (204-entry pages at 70%
    /// fill).
    pub fn paper(n: f64) -> Self {
        RtreeCostModel {
            n,
            leaf_occupancy: 204.0 * 0.7,
            fanout: 204.0 * 0.7,
        }
    }

    /// `(node_count, node_extent)` per level, level 0 = leaves, root
    /// excluded when it would hold one node.
    pub fn levels(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut count = (self.n / self.leaf_occupancy).max(1.0);
        loop {
            // A node at this level covers n/count of the data ⇒ its
            // expected extent is √(1/count) on uniform data.
            let s = (1.0 / count).sqrt().min(1.0);
            out.push((count, s));
            if count <= 1.0 {
                break;
            }
            count = (count / self.fanout).max(1.0);
        }
        out
    }

    /// Expected node accesses of a window query `qx × qy` (the Minkowski
    /// sum argument of `[TSS00]`): a node is visited iff its MBR
    /// intersects the window.
    pub fn window_na(&self, qx: f64, qy: f64) -> f64 {
        self.levels()
            .iter()
            .map(|(count, s)| (count * (s + qx).min(1.0) * (s + qy).min(1.0)).min(*count))
            .sum()
    }

    /// Expected number of nodes fully *contained* in the window.
    pub fn window_contained(&self, qx: f64, qy: f64) -> f64 {
        self.levels()
            .iter()
            .map(|(count, s)| {
                let fx = (qx - s).max(0.0);
                let fy = (qy - s).max(0.0);
                (count * fx * fy).min(*count)
            })
            .sum()
    }

    /// The paper's estimate for the *second* (outer-candidate) window
    /// query: nodes intersecting the extended window `q′` minus nodes
    /// contained in the original `q` (those are buffer-resident).
    pub fn marginal_query_na(&self, qx: f64, qy: f64, qx_ext: f64, qy_ext: f64) -> f64 {
        (self.window_na(qx_ext, qy_ext) - self.window_contained(qx, qy)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_overlap_limits() {
        // Disjoint.
        assert_eq!(circle_overlap_area(1.0, 1.0, 3.0), 0.0);
        // Identical circles, zero distance.
        assert!((circle_overlap_area(1.0, 1.0, 0.0) - PI).abs() < 1e-12);
        // Containment.
        assert!((circle_overlap_area(0.5, 2.0, 1.0) - PI * 0.25).abs() < 1e-12);
        // Half-overlap sanity: circles r=1 at distance 1 overlap in a
        // lens of area 2π/3 − √3/2.
        let lens = 2.0 * PI / 3.0 - 3.0f64.sqrt() / 2.0;
        assert!((circle_overlap_area(1.0, 1.0, 1.0) - lens).abs() < 1e-9);
        // Symmetry.
        assert!(
            (circle_overlap_area(0.7, 1.3, 1.1) - circle_overlap_area(1.3, 0.7, 1.1)).abs() < 1e-12
        );
        // Monotone in d.
        let mut prev = circle_overlap_area(1.0, 1.5, 0.0);
        for i in 1..=10 {
            let cur = circle_overlap_area(1.0, 1.5, i as f64 * 0.3);
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }

    #[test]
    fn nn_area_k1_matches_poisson_voronoi_theory() {
        // The area of the Voronoi cell *containing a random point* of a
        // Poisson process has expectation ≈ 1.280/N (size-biased cell).
        for n in [1e4, 1e5] {
            let a = nn_validity_area(n, 1);
            let ratio = a * n;
            assert!(
                (1.0..1.6).contains(&ratio),
                "N={n}: N·E[A] = {ratio}, expected ≈ 1.28"
            );
        }
    }

    #[test]
    fn nn_area_scales_inverse_n_and_2k_minus_1() {
        let a10k = nn_validity_area(1e4, 1);
        let a100k = nn_validity_area(1e5, 1);
        let ratio = a10k / a100k;
        assert!((8.0..12.5).contains(&ratio), "1/N scaling: ratio {ratio}");
        // Order-k law with the size-bias correction:
        // a(1)/a(10) = 19 / γ(10), γ(10) = 3 − 2·10^{−0.7} ≈ 2.60.
        let a_k10 = nn_validity_area(1e5, 10);
        let gamma10 = 3.0 - 2.0 * 10f64.powf(-0.7);
        assert!(
            (a100k / a_k10 - 19.0 / gamma10).abs() < 1e-9,
            "order-k law with size bias: got {}",
            a100k / a_k10
        );
        // Monotone decreasing in k.
        let mut prev = a100k;
        for k in [2usize, 5, 20, 100] {
            let a = nn_validity_area(1e5, k);
            assert!(a < prev, "k={k}");
            prev = a;
        }
    }

    #[test]
    fn window_area_decreases_in_n_and_qs() {
        let a = window_validity_area(1e5, 0.0316, 0.0316); // qs ≈ 0.1 %
        let b = window_validity_area(1e6, 0.0316, 0.0316);
        assert!(a > b, "larger N shrinks the region: {a} vs {b}");
        let c = window_validity_area(1e5, 0.1, 0.1); // qs = 1 %
        assert!(a > c, "larger window shrinks the region: {a} vs {c}");
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn window_area_closed_form_sanity() {
        // For very small windows the region behaves like
        // dist ~ Exp-ish with rate 2ns̄; E[A] ≈ ∫ ... within a factor.
        // Check against a direct Monte-Carlo of the model (not data):
        // simulate dist(θ) by inverting the survival, per θ.
        let (n, q) = (1e4, 0.05);
        let model = window_validity_area(n, q, q);
        let mut s: u64 = 99;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let mut acc = 0.0;
        let trials = 4000;
        for t in 0..trials {
            let theta = (t as f64 + 0.5) / trials as f64 * std::f64::consts::TAU;
            let s_theta = q * theta.cos().abs() + q * theta.sin().abs();
            let cs = (theta.cos() * theta.sin()).abs();
            // Sample dist by inverse CDF on a grid.
            let u: f64 = next();
            let mut xi = 0.0;
            let step = 1e-5;
            while xi < 1.0 {
                let p = (2.0 * xi * s_theta - xi * xi * cs).clamp(0.0, 1.0);
                if (1.0 - p).powf(n) <= u {
                    break;
                }
                xi += step;
            }
            acc += xi * xi;
        }
        let mc = 0.5 * acc / trials as f64 * std::f64::consts::TAU;
        assert!((model - mc).abs() / mc < 0.05, "model {model} vs MC {mc}");
    }

    #[test]
    fn inner_extents_formula() {
        let (dx, dy) = window_inner_extents(1e5, 0.02, 0.04);
        assert!((dx - 1.0 / (1e5 * 0.04)).abs() < 1e-18);
        assert!((dy - 1.0 / (1e5 * 0.02)).abs() < 1e-18);
    }

    #[test]
    fn cost_model_shapes() {
        let m = RtreeCostModel::paper(1e5);
        let lv = m.levels();
        assert!(lv.len() >= 2, "100k points need at least 2 levels");
        // Bigger windows touch more nodes; containment below
        // intersection.
        let small = m.window_na(0.01, 0.01);
        let large = m.window_na(0.2, 0.2);
        assert!(large > small);
        assert!(m.window_contained(0.2, 0.2) < m.window_na(0.2, 0.2));
        // The whole universe touches every node.
        let total: f64 = lv.iter().map(|(c, _)| c).sum();
        assert!((m.window_na(1.0, 1.0) - total).abs() < 1e-9);
        // Marginal query never negative.
        assert!(m.marginal_query_na(0.1, 0.1, 0.12, 0.12) >= 0.0);
    }
}
