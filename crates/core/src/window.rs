//! Location-based window queries — Section 4 of the paper.
//!
//! The client at `c` sees a window of half-extents `(hx, hy)` centered
//! on itself; the window translates rigidly as the client moves. The
//! result (points inside the window) stays valid while:
//!
//! * no **inner** point leaves — the client stays inside the *inner
//!   validity rectangle* `⋂ᵢ Rect(pᵢ ± (hx,hy))`, whose binding points
//!   are the *inner influence objects*; and
//! * no **outer** point enters — the client stays outside each outer
//!   candidate's **Minkowski region** `Rect(p ± (hx,hy))`; candidates
//!   are fetched with one extra window query over the *extended window*
//!   (the original window inflated by the inner rectangle's extents —
//!   the paper's "marginal rectangle" is that extension minus the
//!   original, Fig. 17), and the candidates whose Minkowski regions
//!   actually shape the region are the *outer influence objects*.
//!
//! The exact validity region is rectilinear (`inner − ⋃ Minkowski`);
//! its area is computed exactly by the sweepline in
//! [`lbq_geom::rect_union_area`]. A **conservative rectangle** (paper
//! Fig. 19) is also produced for clients that want a constant-time
//! check.

use lbq_geom::{rect_difference_area, rect_union_area, Point, Rect};
use lbq_rtree::{Item, QueryScratch, RTree};

/// The validity structure of a location-based window query.
#[derive(Debug, Clone)]
pub struct WindowValidity {
    /// Window half-extents (the client knows these; kept for
    /// self-containment of the wire format).
    pub half: (f64, f64),
    /// The inner validity rectangle (already clipped to the universe).
    pub inner_rect: Rect,
    /// Inner influence objects: result points binding `inner_rect`
    /// edges (≤ 4, ≈2 on average — Fig. 31).
    pub inner_influence: Vec<Item>,
    /// Outer influence objects: candidates whose Minkowski regions
    /// overlap `inner_rect` and contribute boundary (≈2 on average).
    pub outer_influence: Vec<Item>,
    /// The conservative rectangular validity region (Fig. 19):
    /// contains the query focus, avoids every Minkowski hole.
    pub conservative: Rect,
}

impl WindowValidity {
    /// Minkowski region of an outer point for this window geometry.
    fn minkowski(&self, p: Point) -> Rect {
        Rect::centered(p, self.half.0, self.half.1)
    }

    /// Exact client-side validity check at position `c`:
    /// inside the inner rectangle and outside every hole.
    pub fn contains(&self, c: Point) -> bool {
        self.inner_rect.contains(c)
            && !self
                .outer_influence
                .iter()
                .any(|p| self.minkowski(p.point).contains(c))
    }

    /// Constant-time conservative check (sound, may say `false` inside
    /// the exact region).
    pub fn contains_conservative(&self, c: Point) -> bool {
        self.conservative.contains(c)
    }

    /// Exact area of the validity region — the quantity of the paper's
    /// Figs. 29/30.
    // lbq-check: cold — owned-response metric computed off the hot path; builds a scratch hole list by design
    pub fn area(&self) -> f64 {
        let holes: Vec<Rect> = self
            .outer_influence
            .iter()
            .map(|p| self.minkowski(p.point))
            .collect();
        rect_difference_area(&self.inner_rect, &holes)
    }

    /// Total influence objects |S_inf| (Figs. 31/32).
    pub fn influence_count(&self) -> usize {
        self.inner_influence.len() + self.outer_influence.len()
    }
}

/// Server response to a location-based window query.
#[derive(Debug, Clone)]
pub struct WindowResponse {
    /// The query focus (window center).
    pub query: Point,
    /// The window evaluated.
    pub window: Rect,
    /// Points currently inside the window.
    pub result: Vec<Item>,
    /// Validity structure.
    pub validity: WindowValidity,
}

/// Evaluates a location-based window query: result, influence sets and
/// validity region. `c` is the client location (window center).
pub fn window_with_validity(
    tree: &RTree,
    c: Point,
    hx: f64,
    hy: f64,
    universe: Rect,
) -> WindowResponse {
    let mut scratch = QueryScratch::new();
    window_with_validity_in(tree, c, hx, hy, universe, &mut scratch)
}

/// [`window_with_validity`] against a reusable [`QueryScratch`]: both
/// tree traversals (the result window and the extended candidate
/// window) run on caller-owned buffers.
pub fn window_with_validity_in(
    tree: &RTree,
    c: Point,
    hx: f64,
    hy: f64,
    universe: Rect,
    scratch: &mut QueryScratch,
) -> WindowResponse {
    assert!(hx > 0.0 && hy > 0.0, "window extents must be positive");
    let _stage = lbq_obs::stage_timer(lbq_obs::Stage::WindowPass);
    let window = Rect::centered(c, hx, hy);
    // Query 1: the result itself. Copied out of the scratch because the
    // second (extended-window) query reuses the same buffers.
    let result = tree.window_in(&window, scratch).to_vec();
    window_validity_from_result_in(tree, c, hx, hy, universe, result, scratch)
}

/// Second phase of [`window_with_validity`], split out so a cost harness
/// can attribute the result query and the outer-candidate query to
/// separate counters: takes a `result` already fetched for the window
/// centered at `c` and issues only the extended-window query.
pub fn window_validity_from_result(
    tree: &RTree,
    c: Point,
    hx: f64,
    hy: f64,
    universe: Rect,
    result: Vec<Item>,
) -> WindowResponse {
    let mut scratch = QueryScratch::new();
    window_validity_from_result_in(tree, c, hx, hy, universe, result, &mut scratch)
}

/// [`window_validity_from_result`] against a reusable [`QueryScratch`].
pub fn window_validity_from_result_in(
    tree: &RTree,
    c: Point,
    hx: f64,
    hy: f64,
    universe: Rect,
    result: Vec<Item>,
    scratch: &mut QueryScratch,
) -> WindowResponse {
    let window = Rect::centered(c, hx, hy);
    let mut span = lbq_obs::span("window-validity");
    span.record("results", result.len());
    if result.is_empty() {
        return empty_window_response(tree, c, hx, hy, universe, window, scratch);
    }

    // Inner validity rectangle: intersection of per-point containment
    // rectangles. Track which point binds each side.
    let mut xmin = (f64::NEG_INFINITY, None::<Item>);
    let mut xmax = (f64::INFINITY, None::<Item>);
    let mut ymin = (f64::NEG_INFINITY, None::<Item>);
    let mut ymax = (f64::INFINITY, None::<Item>);
    for &it in &result {
        let p = it.point;
        if p.x - hx > xmin.0 {
            xmin = (p.x - hx, Some(it));
        }
        if p.x + hx < xmax.0 {
            xmax = (p.x + hx, Some(it));
        }
        if p.y - hy > ymin.0 {
            ymin = (p.y - hy, Some(it));
        }
        if p.y + hy < ymax.0 {
            ymax = (p.y + hy, Some(it));
        }
    }
    let mut inner_rect = Rect::new(xmin.0, ymin.0, xmax.0, ymax.0);
    debug_assert!(inner_rect.contains_eps(c, lbq_geom::EPS * universe.width().max(1.0)));
    // Sides can also be bound by the universe (client cannot meaningfully
    // see beyond it); keep influence attribution only for object-bound
    // sides.
    let mut inner_influence: Vec<Item> = Vec::new();
    let push_unique = |it: Option<Item>, binding: bool, list: &mut Vec<Item>| {
        if let (Some(it), true) = (it, binding) {
            if !list.iter().any(|o| o.id == it.id) {
                list.push(it);
            }
        }
    };
    if let Some(u) = inner_rect.intersection(&universe) {
        push_unique(
            xmin.1,
            inner_rect.xmin >= universe.xmin,
            &mut inner_influence,
        );
        push_unique(
            xmax.1,
            inner_rect.xmax <= universe.xmax,
            &mut inner_influence,
        );
        push_unique(
            ymin.1,
            inner_rect.ymin >= universe.ymin,
            &mut inner_influence,
        );
        push_unique(
            ymax.1,
            inner_rect.ymax <= universe.ymax,
            &mut inner_influence,
        );
        inner_rect = u;
    }

    // Query 2: outer candidates from the extended window (original
    // window inflated to cover every position the window can reach
    // while the client stays in the inner rectangle).
    let extended = window.extend(
        c.x - inner_rect.xmin,
        inner_rect.xmax - c.x,
        c.y - inner_rect.ymin,
        inner_rect.ymax - c.y,
    );
    let candidates = tree.window_in(&extended, scratch);
    span.record("candidates", candidates.len());
    let result_ids: std::collections::HashSet<u64> = result.iter().map(|i| i.id).collect();

    // Outer influence objects: candidates whose Minkowski region
    // overlaps the inner rectangle...
    let mut outers: Vec<(Item, Rect)> = candidates
        .iter()
        .copied()
        .filter(|it| !result_ids.contains(&it.id))
        .filter_map(|it| {
            Rect::centered(it.point, hx, hy)
                .intersection(&inner_rect)
                .filter(|ov| ov.area() > 0.0)
                .map(|ov| (it, ov))
        })
        .collect();
    // ...minimized in two passes. First, containment dominance: a hole
    // whose clipped rect lies inside a kept hole contributes nothing.
    // This is O(m·|kept|) and collapses the pathological case of
    // boundary-overhanging windows, where thousands of same-size
    // Minkowski rects nest along a thin inner rectangle.
    outers.sort_by(|a, b| b.1.area().total_cmp(&a.1.area()).then(a.0.id.cmp(&b.0.id)));
    let mut kept: Vec<(Item, Rect)> = Vec::new();
    for (it, ov) in outers {
        if !kept.iter().any(|(_, k)| k.contains_rect(&ov)) {
            kept.push((it, ov));
        }
    }
    // Second, exact union minimality (drop a hole covered by the union
    // of the others) — O(m³ log m), affordable only on the small sets
    // dominance leaves behind; beyond the cap the influence set may be
    // slightly non-minimal, which costs bytes, never correctness.
    if kept.len() <= 64 {
        kept.sort_by(|a, b| a.1.area().total_cmp(&b.1.area()));
        let mut keep: Vec<bool> = vec![true; kept.len()];
        for i in 0..kept.len() {
            let others: Vec<Rect> = kept
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i && keep[*j])
                .filter_map(|(_, (_, ov))| ov.intersection(&kept[i].1))
                .collect();
            let covered = rect_union_area(&others);
            // lbq-check: allow(local-epsilon) — 1e-300 is an underflow guard, not a tolerance
            if covered >= kept[i].1.area() - lbq_geom::EPS_TIGHT * kept[i].1.area().max(1e-300) {
                keep[i] = false;
            }
        }
        kept = kept
            .into_iter()
            .zip(keep)
            .filter(|(_, k)| *k)
            .map(|(h, _)| h)
            .collect();
    }
    let outer_influence: Vec<Item> = kept.iter().map(|(it, _)| *it).collect();

    let conservative = conservative_rect(
        inner_rect,
        c,
        outer_influence
            .iter()
            .map(|it| Rect::centered(it.point, hx, hy)),
    );

    let validity = WindowValidity {
        half: (hx, hy),
        inner_rect,
        inner_influence,
        outer_influence,
        conservative,
    };
    crate::invariants::debug_validate_window(&validity, c);
    if span.is_active() {
        span.record("inner-influence", validity.inner_influence.len());
        span.record("outer-influence", validity.outer_influence.len());
        span.record("inner-w", inner_rect.width());
        span.record("inner-h", inner_rect.height());
    }
    WindowResponse {
        query: c,
        window,
        result,
        validity,
    }
}

/// Empty-result handling (not discussed by the paper): a sound
/// conservative region derived from the nearest point. The window at
/// `c'` is certainly empty while `dist(c', p*) > √(hx²+hy²)` for the
/// nearest point `p*`, so a square of half-extent
/// `(dist(c,p*) − √(hx²+hy²)) / √2` around `c` is valid.
fn empty_window_response(
    tree: &RTree,
    c: Point,
    hx: f64,
    hy: f64,
    universe: Rect,
    window: Rect,
    scratch: &mut QueryScratch,
) -> WindowResponse {
    let nearest = tree.knn_in(c, 1, scratch).first().copied();
    let (inner_rect, outer_influence) = match nearest {
        Some((nearest, d)) => {
            let slack = d - (hx * hx + hy * hy).sqrt();
            let half = (slack / std::f64::consts::SQRT_2).max(0.0);
            let r = Rect::centered(c, half, half)
                .intersection(&universe)
                .unwrap_or(Rect::from_point(c));
            (r, vec![nearest])
        }
        // Empty dataset: every position shows the same (empty) window.
        None => (universe, Vec::new()),
    };
    let validity = WindowValidity {
        half: (hx, hy),
        inner_rect,
        inner_influence: Vec::new(),
        outer_influence,
        conservative: inner_rect,
    };
    crate::invariants::debug_validate_window(&validity, c);
    WindowResponse {
        query: c,
        window,
        result: Vec::new(),
        validity,
    }
}

/// The conservative rectangular validity region (paper Fig. 19):
/// greedily clip `rect` by an axis-aligned half-plane avoiding each
/// overlapping hole, choosing the cut that keeps `c` and the most area.
fn conservative_rect(mut rect: Rect, c: Point, holes: impl Iterator<Item = Rect>) -> Rect {
    for hole in holes {
        let Some(ov) = hole.intersection(&rect) else {
            continue;
        };
        if ov.area() <= 0.0 {
            continue;
        }
        // Four candidate cuts; each valid only if it excises the hole
        // while keeping c.
        let mut best: Option<Rect> = None;
        let candidates = [
            (hole.xmax <= rect.xmax && c.x >= hole.xmax)
                .then(|| Rect::new(hole.xmax, rect.ymin, rect.xmax, rect.ymax)),
            (hole.xmin >= rect.xmin && c.x <= hole.xmin)
                .then(|| Rect::new(rect.xmin, rect.ymin, hole.xmin, rect.ymax)),
            (hole.ymax <= rect.ymax && c.y >= hole.ymax)
                .then(|| Rect::new(rect.xmin, hole.ymax, rect.xmax, rect.ymax)),
            (hole.ymin >= rect.ymin && c.y <= hole.ymin)
                .then(|| Rect::new(rect.xmin, rect.ymin, rect.xmax, hole.ymin)),
        ];
        for cand in candidates.into_iter().flatten() {
            if cand.xmin <= cand.xmax
                && cand.ymin <= cand.ymax
                && cand.contains(c)
                && best.as_ref().is_none_or(|b| cand.area() > b.area())
            {
                best = Some(cand);
            }
        }
        match best {
            Some(b) => rect = b,
            // The hole contains c (possible only in degenerate tie
            // cases): the conservative region collapses to the point.
            None => return Rect::from_point(c),
        }
    }
    rect
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_rtree::RTreeConfig;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect()
    }

    /// Brute-force result of a window query centered at `c`.
    fn brute_window(items: &[Item], c: Point, hx: f64, hy: f64) -> Vec<u64> {
        let w = Rect::centered(c, hx, hy);
        let mut v: Vec<u64> = items
            .iter()
            .filter(|i| w.contains(i.point))
            .map(|i| i.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn hand_crafted_inner_and_outer() {
        // Window half-extent 1 around c=(5,5). Inside: (4.6,5), (5.5,5.3).
        // Outside: (6.5,5) — 0.5 beyond the right edge.
        let items = vec![
            Item::new(Point::new(4.6, 5.0), 0),
            Item::new(Point::new(5.5, 5.3), 1),
            Item::new(Point::new(6.5, 5.0), 2),
        ];
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let resp = window_with_validity(&tree, Point::new(5.0, 5.0), 1.0, 1.0, universe);
        assert_eq!(resp.result.len(), 2);
        // Inner rect: x ∈ [max(3.6,4.5), min(5.6,6.5)] = [4.5, 5.6],
        //             y ∈ [max(4.0,4.3), min(6.0,6.3)] = [4.3, 6.0].
        let ir = resp.validity.inner_rect;
        assert!((ir.xmin - 4.5).abs() < 1e-12);
        assert!((ir.xmax - 5.6).abs() < 1e-12);
        assert!((ir.ymin - 4.3).abs() < 1e-12);
        assert!((ir.ymax - 6.0).abs() < 1e-12);
        // Both result points bind sides → inner influence objects.
        assert_eq!(resp.validity.inner_influence.len(), 2);
        // Point 2's Minkowski region [5.5,7.5]×[4,6] overlaps the inner
        // rect in [5.5,5.6]×[4.3,6.0] → outer influence.
        assert_eq!(resp.validity.outer_influence.len(), 1);
        assert_eq!(resp.validity.outer_influence[0].id, 2);
        // Exact area: inner (1.1 × 1.7 = 1.87) minus hole (0.1 × 1.7).
        assert!((resp.validity.area() - (1.87 - 0.17)).abs() < 1e-9);
        // Conservative rectangle: cut at the hole's left edge x = 5.5.
        let cons = resp.validity.conservative;
        assert!((cons.xmax - 5.5).abs() < 1e-12);
        assert!((cons.area() - 1.0 * 1.7).abs() < 1e-9);
    }

    #[test]
    fn result_matches_brute_force_and_region_is_sound() {
        let items = pseudo_random_items(400, 11);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let (hx, hy) = (0.06, 0.05);
        for &(cx, cy) in &[(0.5, 0.5), (0.2, 0.8), (0.93, 0.5), (0.05, 0.04)] {
            let c = Point::new(cx, cy);
            let resp = window_with_validity(&tree, c, hx, hy, unit());
            let mut got: Vec<u64> = resp.result.iter().map(|i| i.id).collect();
            got.sort_unstable();
            assert_eq!(got, brute_window(&items, c, hx, hy));
            let baseline = got;

            // Sample the plane: inside validity region ⇒ identical
            // result; outside (clear of boundary, within universe) ⇒
            // different.
            for i in 0..30 {
                for j in 0..30 {
                    let p = Point::new((i as f64 + 0.41) / 30.0, (j as f64 + 0.59) / 30.0);
                    let res = brute_window(&items, p, hx, hy);
                    if resp.validity.contains(p) {
                        assert_eq!(
                            res, baseline,
                            "inside region at {p} but result changed (c={c})"
                        );
                    }
                    if resp.validity.contains_conservative(p) {
                        assert!(resp.validity.contains(p), "conservative ⊄ exact at {p}");
                        assert_eq!(res, baseline);
                    }
                }
            }
        }
    }

    #[test]
    fn region_is_tight_outside() {
        // Points just outside the exact region (but inside the universe
        // and excluded by an object constraint) must see a different
        // result. Probe along rays from the query.
        let items = pseudo_random_items(300, 41);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(0.5, 0.5);
        let (hx, hy) = (0.07, 0.07);
        let resp = window_with_validity(&tree, c, hx, hy, unit());
        let baseline = brute_window(&items, c, hx, hy);
        for k in 0..32 {
            let theta = k as f64 * std::f64::consts::TAU / 32.0;
            let dir = lbq_geom::Vec2::from_angle(theta);
            // March until exiting the region; the first clearly-outside
            // point decided by an *object* (not the universe) must have
            // a different result.
            let mut t = 0.0;
            while t < 1.0 {
                t += 1e-3;
                let p = c + dir * t;
                if !unit().contains(p) {
                    break;
                }
                if !resp.validity.contains(p) {
                    let p2 = c + dir * (t + 2e-3); // clear the boundary band
                    if unit().contains(p2) && resp.validity.inner_rect.contains(p2)
                    // exited through a Minkowski hole
                    {
                        let res = brute_window(&items, p2, hx, hy);
                        assert_ne!(res, baseline, "hole at {p2} did not change result");
                    }
                    break;
                }
            }
        }
    }

    #[test]
    fn fig33_outer_object_replaces_inner_edge() {
        // The paper's Fig. 33 scenario: an outer object whose Minkowski
        // region spans an entire edge of the inner rectangle replaces
        // the inner influence object on that side; |S_inf| stays 4-ish
        // and the exact region remains a rectangle.
        let items = vec![
            Item::new(Point::new(5.0, 5.0), 0), // inner, binds everything
            Item::new(Point::new(6.2, 5.0), 1), // outer, right side, tall overlap
        ];
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let resp = window_with_validity(&tree, Point::new(5.0, 5.0), 1.0, 1.0, universe);
        // Inner rect = [4,6]²; hole = [5.2,7.2]×[4,6] covers the whole
        // right part; exact region = [4,5.2]×[4,6] — a rectangle.
        assert!((resp.validity.area() - 1.2 * 2.0).abs() < 1e-9);
        let cons = resp.validity.conservative;
        assert!(
            (cons.area() - 1.2 * 2.0).abs() < 1e-9,
            "conservative is exact here"
        );
        assert_eq!(resp.validity.outer_influence.len(), 1);
    }

    #[test]
    fn empty_window_gets_sound_region() {
        let items = vec![Item::new(Point::new(0.9, 0.9), 0)];
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(0.2, 0.2);
        let resp = window_with_validity(&tree, c, 0.05, 0.05, unit());
        assert!(resp.result.is_empty());
        assert!(resp.validity.contains(c));
        // Everywhere inside the region the window must remain empty.
        let r = resp.validity.inner_rect;
        for i in 0..10 {
            for j in 0..10 {
                let p = Point::new(
                    r.xmin + r.width() * i as f64 / 9.0,
                    r.ymin + r.height() * j as f64 / 9.0,
                );
                assert!(brute_window(&items, p, 0.05, 0.05).is_empty());
            }
        }
    }

    #[test]
    fn empty_dataset_window() {
        let tree = RTree::new(RTreeConfig::tiny());
        let resp = window_with_validity(&tree, Point::new(0.5, 0.5), 0.1, 0.1, unit());
        assert!(resp.result.is_empty());
        assert!((resp.validity.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conservative_rect_cases() {
        let base = Rect::new(0.0, 0.0, 10.0, 10.0);
        let c = Point::new(2.0, 2.0);
        // Hole to the right: cut at its left edge.
        let r = conservative_rect(base, c, [Rect::new(6.0, 0.0, 8.0, 10.0)].into_iter());
        assert_eq!(r, Rect::new(0.0, 0.0, 6.0, 10.0));
        // Hole overlapping nothing: unchanged.
        let r = conservative_rect(base, c, [Rect::new(20.0, 20.0, 30.0, 30.0)].into_iter());
        assert_eq!(r, base);
        // Two holes boxing the query in.
        let r = conservative_rect(
            base,
            c,
            [
                Rect::new(5.0, 0.0, 7.0, 10.0),
                Rect::new(0.0, 5.0, 10.0, 7.0),
            ]
            .into_iter(),
        );
        assert_eq!(r, Rect::new(0.0, 0.0, 5.0, 5.0));
        // Hole containing c: collapses to the point but never panics.
        let r = conservative_rect(base, c, [Rect::new(1.0, 1.0, 3.0, 3.0)].into_iter());
        assert_eq!(r, Rect::from_point(c));
    }

    #[test]
    fn influence_counts_are_small() {
        // The paper's Fig. 31: ≈2 inner + ≈2 outer on uniform data.
        let items = pseudo_random_items(3000, 99);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let mut inner_total = 0usize;
        let mut outer_total = 0usize;
        let mut n = 0usize;
        for i in 0..40 {
            let c = Point::new(0.15 + (i % 8) as f64 * 0.1, 0.15 + (i / 8) as f64 * 0.15);
            let resp = window_with_validity(&tree, c, 0.02, 0.02, unit());
            if resp.result.is_empty() {
                continue;
            }
            inner_total += resp.validity.inner_influence.len();
            outer_total += resp.validity.outer_influence.len();
            n += 1;
        }
        assert!(n > 20);
        let avg_inner = inner_total as f64 / n as f64;
        let avg_outer = outer_total as f64 / n as f64;
        assert!(avg_inner > 0.5 && avg_inner < 4.5, "avg inner {avg_inner}");
        assert!(avg_outer < 6.0, "avg outer {avg_outer}");
    }
}
