//! Location-based (k-)nearest-neighbor queries — Section 3 of the
//! paper.
//!
//! The server answers a kNN query with the result **plus** an
//! *influence set*: the minimal set of outer objects whose perpendicular
//! bisectors with result objects bound the **validity region** — the
//! (order-k) Voronoi cell within which the result set cannot change.
//! The client re-uses the result for free while it stays inside.
//!
//! The region is computed *without* any precomputed Voronoi structure,
//! by the vertex-confirmation loop of the paper's Fig. 10 (k = 1) and
//! Fig. 12 (k > 1): start from the data universe, shoot a
//! time-parameterized NN query ([`lbq_rtree::RTree::tp_knn`]) toward an
//! unconfirmed region vertex, and either (a) discover a new influence
//! object — clip the region by its bisector — or (b) confirm the vertex.
//! Lemma 3.1 (completeness/soundness) and Lemma 3.2 (exactly
//! `n_inf + n_v` TPNN queries) carry over verbatim; both are asserted in
//! the test suite.

use lbq_geom::{ConvexPolygon, HalfPlane, Point, Rect};
use lbq_rtree::{Item, QueryScratch, RTree, TpEvent, TpProbe};

/// An influence pair `⟨inner, outer⟩`: the bisector of the two is an
/// edge (or potential edge) of the validity region; `inner` belongs to
/// the result, `outer` does not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InfluencePair {
    pub inner: Item,
    pub outer: Item,
}

impl InfluencePair {
    /// The half-plane this pair contributes (the `inner` side of the
    /// bisector).
    pub fn half_plane(&self) -> HalfPlane {
        HalfPlane::bisector(self.inner.point, self.outer.point)
    }
}

/// The validity region of a kNN query: the order-k Voronoi cell of the
/// result, as both its polygon and the influence pairs that generate it.
///
/// The *wire format* is `pairs` (plus the result set itself) — a handful
/// of points, as the paper's Figs. 25/26 show (≈6 for k = 1, dropping
/// toward 4 as k grows). The polygon is kept for convenience and
/// plotting; it is derivable from the pairs.
#[derive(Debug, Clone)]
pub struct NnValidity {
    /// Influence pairs in discovery order.
    pub pairs: Vec<InfluencePair>,
    /// The region polygon (clipped to the data universe).
    pub polygon: ConvexPolygon,
    /// The data universe used as the initial region.
    pub universe: Rect,
}

impl NnValidity {
    /// Client-side validity check: is the result still exact at `p`?
    ///
    /// O(|pairs| + 4) comparisons — the "limited computational
    /// capability" budget the paper allots the mobile client. Uses the
    /// half-plane tests directly (not the polygon) because that is what
    /// a client holding only the influence set can do.
    pub fn contains(&self, p: Point) -> bool {
        self.universe.contains(p)
            && self
                .pairs
                .iter()
                .all(|pr| p.dist_sq(pr.inner.point) <= p.dist_sq(pr.outer.point))
    }

    /// Area of the validity region.
    pub fn area(&self) -> f64 {
        self.polygon.area()
    }

    /// Number of region edges (the client-side check cost metric of the
    /// paper's Fig. 24; ≈6 on uniform data).
    pub fn edge_count(&self) -> usize {
        self.polygon.len()
    }

    /// Number of *distinct* influence objects |S_inf| (Figs. 25/26; an
    /// outer object may contribute several pairs when k > 1).
    // lbq-check: cold — owned-response metric; the hot path uses the scratch-backed NnValidityRef variant
    pub fn influence_count(&self) -> usize {
        let mut ids: Vec<u64> = self.pairs.iter().map(|p| p.outer.id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The distinct influence objects (the payload actually shipped).
    pub fn influence_objects(&self) -> Vec<Item> {
        let mut out: Vec<Item> = Vec::new();
        for p in &self.pairs {
            if !out.iter().any(|o| o.id == p.outer.id) {
                out.push(p.outer);
            }
        }
        out
    }
}

/// A borrowed view of a validity region whose backing storage lives in
/// a [`QueryScratch`].
///
/// This is what [`retrieve_influence_set_in`] returns: the influence
/// pairs and the region polygon are read straight out of the scratch
/// buffers the retrieval built them in, so the steady-state hot path
/// performs **zero** heap allocations. The view stays valid until the
/// next query touches the same scratch; call
/// [`NnValidityRef::to_owned`] to detach an [`NnValidity`] that can
/// outlive it (that copy is the only allocation, paid exactly by the
/// paths that need ownership).
#[derive(Debug, Clone, Copy)]
pub struct NnValidityRef<'s> {
    pairs: &'s [(Item, Item)],
    polygon: &'s ConvexPolygon,
    universe: Rect,
}

impl<'s> NnValidityRef<'s> {
    /// Influence pairs in discovery order.
    pub fn pairs(&self) -> impl Iterator<Item = InfluencePair> + 's {
        self.pairs
            .iter()
            .map(|&(inner, outer)| InfluencePair { inner, outer })
    }

    /// Number of influence pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The region polygon (clipped to the data universe).
    pub fn polygon(&self) -> &'s ConvexPolygon {
        self.polygon
    }

    /// The data universe used as the initial region.
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Client-side validity check — see [`NnValidity::contains`].
    pub fn contains(&self, p: Point) -> bool {
        self.universe.contains(p)
            && self
                .pairs
                .iter()
                .all(|&(inner, outer)| p.dist_sq(inner.point) <= p.dist_sq(outer.point))
    }

    /// Area of the validity region.
    pub fn area(&self) -> f64 {
        self.polygon.area()
    }

    /// Number of region edges.
    pub fn edge_count(&self) -> usize {
        self.polygon.len()
    }

    /// Number of *distinct* influence objects |S_inf|. Quadratic scan
    /// over the (≈6-element) pair list so the view allocates nothing.
    pub fn influence_count(&self) -> usize {
        self.pairs
            .iter()
            .enumerate()
            .filter(|&(i, &(_, outer))| {
                !self.pairs[..i].iter().any(|&(_, prev)| prev.id == outer.id)
            })
            .count()
    }

    /// Detaches an owned [`NnValidity`] (copies pairs and polygon off
    /// the scratch).
    pub fn to_owned(&self) -> NnValidity {
        NnValidity {
            pairs: self.pairs().collect(),
            polygon: self.polygon.clone(),
            universe: self.universe,
        }
    }
}

/// Server response to a location-based kNN query.
#[derive(Debug, Clone)]
pub struct NnResponse {
    /// The query focus.
    pub query: Point,
    /// The k nearest neighbors, ascending by distance.
    pub result: Vec<Item>,
    /// Validity region + influence set.
    pub validity: NnValidity,
    /// Instrumentation: TPNN queries issued (Lemma 3.2: `n_inf + n_v`).
    pub tpnn_queries: usize,
}

/// Tolerance for vertex identity across clips, relative to the universe
/// scale.
fn vertex_eps(universe: &Rect) -> f64 {
    lbq_geom::EPS * universe.width().max(universe.height()).max(1.0)
}

/// Index of the unconfirmed vertex nearest to `q`, or `None` when all
/// are confirmed. The single-query loop and the grouped lockstep driver
/// share this selector, so both probe in the identical order.
fn nearest_unconfirmed(q: Point, vertices: &[(Point, bool)]) -> Option<usize> {
    vertices
        .iter()
        .enumerate()
        .filter(|(_, (_, confirmed))| !confirmed)
        .min_by(|(_, (a, _)), (_, (b, _))| {
            q.dist_sq(*a)
                .partial_cmp(&q.dist_sq(*b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
}

/// Computes the influence set and validity region for a kNN result
/// (`inner`, non-empty) of the query at `q` — Figs. 10/12 of the paper.
///
/// Returns the validity structure plus the number of TPNN queries
/// issued.
pub fn retrieve_influence_set(
    tree: &RTree,
    q: Point,
    inner: &[Item],
    universe: Rect,
) -> (NnValidity, usize) {
    let mut scratch = QueryScratch::new();
    let (validity, tpnn) = retrieve_influence_set_in(tree, q, inner, universe, &mut scratch);
    (validity.to_owned(), tpnn)
}

/// [`retrieve_influence_set`] against a reusable [`QueryScratch`]: the
/// whole shrinking-polygon TPNN chain (one query per vertex probe), the
/// influence-pair list *and* the region polygon all live on one set of
/// scratch buffers, so in steady state the region hot path performs
/// zero heap allocations. The returned [`NnValidityRef`] borrows the
/// scratch; `.to_owned()` it if the region must outlive the next query.
// lbq-check: hot — static twin of the pr4_bench zero-alloc assertion on this entry point
pub fn retrieve_influence_set_in<'s>(
    tree: &RTree,
    q: Point,
    inner: &[Item],
    universe: Rect,
    scratch: &'s mut QueryScratch,
) -> (NnValidityRef<'s>, usize) {
    assert!(!inner.is_empty(), "kNN result must be non-empty");
    let mut span = lbq_obs::span("nn-influence-set");
    span.record("k", inner.len());
    // When the dataset is exactly the result set, nothing can ever
    // change: the region is the whole universe.
    if tree.len() <= inner.len() {
        scratch.region_pairs.clear();
        scratch.region_polygon.assign_rect(&universe);
        return (
            NnValidityRef {
                pairs: &scratch.region_pairs,
                polygon: &scratch.region_polygon,
                universe,
            },
            0,
        );
    }
    let eps = vertex_eps(&universe);
    let mut pairs = std::mem::take(&mut scratch.region_pairs);
    let mut polygon = std::mem::take(&mut scratch.region_polygon);
    pairs.clear();
    polygon.assign_rect(&universe);
    // Vertex set V with confirmation flags, and the clip staging buffer
    // — all borrowed from the scratch (and returned below) so the loop
    // allocates nothing in steady state. Taking them out lets the TPNN
    // calls borrow the scratch mutably in between.
    let mut vertices = std::mem::take(&mut scratch.region_vertices);
    let mut spare = std::mem::take(&mut scratch.region_spare);
    let mut clip_buf = std::mem::take(&mut scratch.region_clip);
    vertices.clear();
    vertices.extend(polygon.vertices().iter().map(|&v| (v, false)));
    let mut tpnn_count = 0usize;

    // Probe the *nearest* unconfirmed vertex first. Each discovered
    // pair clips the polygon, so near probes (cheap, short TPNN travel)
    // tend to cut away the far vertices before they are ever probed
    // with a universe-scale `t_max`. The confirmation loop is correct
    // under any probe order (each query still ends in a new pair or a
    // confirmed vertex, so Lemma 3.2's count is unchanged); this order
    // just makes the expensive probes vanishingly rare.
    while let Some(idx) = nearest_unconfirmed(q, &vertices) {
        let v = vertices[idx].0;
        let Some(dir) = q.to(v).normalized() else {
            // The vertex coincides with the query point (degenerate,
            // zero-area region) — nothing to probe.
            vertices[idx].1 = true;
            continue;
        };
        let t_max = q.dist(v);
        tpnn_count += 1;
        let event = tree.tp_knn_in(q, dir, t_max, inner, scratch);
        if lbq_obs::enabled() {
            lbq_obs::event_with(
                "tpnn-iteration",
                [
                    ("vertices", lbq_obs::Value::from(vertices.len())),
                    ("pairs", lbq_obs::Value::from(pairs.len())),
                    ("found", lbq_obs::Value::from(event.is_some())),
                ],
            );
        }
        match event {
            None => {
                vertices[idx].1 = true;
            }
            Some(ev) => {
                let known = pairs
                    .iter()
                    .any(|&(pi, po)| pi.id == ev.partner.id && po.id == ev.object.id);
                if known {
                    // Lemma 3.1 bookkeeping: a re-discovered pair means
                    // the vertex lies (numerically) on that bisector.
                    vertices[idx].1 = true;
                } else {
                    let _clip = lbq_obs::stage_timer(lbq_obs::Stage::Clip);
                    let pair = InfluencePair {
                        inner: ev.partner,
                        outer: ev.object,
                    };
                    polygon.clip_in_place(&pair.half_plane(), &mut clip_buf);
                    pairs.push((pair.inner, pair.outer));
                    if polygon.is_empty() {
                        // Degenerate: q sits on a bisector (tie). The
                        // region has zero area; report it honestly.
                        vertices.clear();
                        break;
                    }
                    // Carry confirmation flags to surviving vertices:
                    // read the old ring, write the new one, swap.
                    spare.clear();
                    spare.extend(polygon.vertices().iter().map(|&nv| {
                        let confirmed = vertices.iter().any(|(ov, c)| *c && ov.dist(nv) <= eps);
                        (nv, confirmed)
                    }));
                    std::mem::swap(&mut vertices, &mut spare);
                }
            }
        }
    }
    // Hand the (capacity-retaining) buffers back to the scratch. The
    // pair list and polygon go back too — the returned view borrows
    // them in place.
    vertices.clear();
    spare.clear();
    clip_buf.clear();
    scratch.region_vertices = vertices;
    scratch.region_spare = spare;
    scratch.region_clip = clip_buf;
    scratch.region_pairs = pairs;
    scratch.region_polygon = polygon;
    let validity = NnValidityRef {
        pairs: &scratch.region_pairs,
        polygon: &scratch.region_polygon,
        universe,
    };
    crate::invariants::debug_validate_nn(&validity, q);
    if span.is_active() {
        span.record("tpnn-queries", tpnn_count);
        span.record("pairs", validity.pair_count());
        span.record("influence", validity.influence_count());
        span.record("edges", validity.edge_count());
        span.record("area", validity.area());
    }
    (validity, tpnn_count)
}

/// Per-member loop state of [`retrieve_influence_set_group`].
struct MemberLoop {
    pairs: Vec<(Item, Item)>,
    polygon: ConvexPolygon,
    vertices: Vec<(Point, bool)>,
    tpnn: usize,
    done: bool,
}

/// Grouped [`retrieve_influence_set`]: computes the influence set and
/// validity region of every member `(q, result)` of one locality tile,
/// batching the members' TPNN probes into shared-frontier traversals
/// ([`lbq_rtree::RTree::tp_knn_group_in`]).
///
/// Every member's vertex-confirmation loop runs exactly as in
/// [`retrieve_influence_set_in`] — same vertex selection (shared
/// `nearest_unconfirmed`), same clips, same Lemma 3.2 query count — but
/// the loops advance in lockstep: each round collects every unfinished
/// member's next vertex probe and answers the whole round in one shared
/// traversal. The grouped TPNN returns bit-identical events, and no
/// member's state feeds another's, so each member's pairs, polygon, and
/// TPNN count equal the single-query path's bit for bit. On a Hilbert
/// tile the ~`n_inf + n_v` probes of all members search the same
/// neighborhood, so the shared frontier reads each node page once per
/// round instead of once per member.
///
/// Returns one `(validity, tpnn_queries)` per member, in member order.
pub fn retrieve_influence_set_group(
    tree: &RTree,
    members: &[(Point, &[Item])],
    universe: Rect,
    scratch: &mut QueryScratch,
) -> Vec<(NnValidity, usize)> {
    let mut span = lbq_obs::span("nn-influence-set-group");
    span.record("members", members.len());
    let eps = vertex_eps(&universe);
    let mut states: Vec<MemberLoop> = members
        .iter()
        .map(|&(_, inner)| {
            assert!(!inner.is_empty(), "kNN result must be non-empty");
            let polygon = ConvexPolygon::from_rect(&universe);
            // Whole dataset in the result: nothing can ever change.
            let done = tree.len() <= inner.len();
            let vertices = if done {
                Vec::new()
            } else {
                polygon.vertices().iter().map(|&v| (v, false)).collect()
            };
            MemberLoop {
                pairs: Vec::new(),
                polygon,
                vertices,
                tpnn: 0,
                done,
            }
        })
        .collect();
    let mut spare: Vec<(Point, bool)> = Vec::new();
    let mut clip_buf: Vec<Point> = Vec::new();
    let mut probes: Vec<TpProbe<'_>> = Vec::new();
    let mut slots: Vec<(usize, usize)> = Vec::new();
    let mut events: Vec<Option<TpEvent>> = Vec::new();
    loop {
        probes.clear();
        slots.clear();
        for (mi, st) in states.iter_mut().enumerate() {
            if st.done {
                continue;
            }
            let (q, inner) = members[mi];
            loop {
                let Some(idx) = nearest_unconfirmed(q, &st.vertices) else {
                    st.done = true;
                    break;
                };
                let v = st.vertices[idx].0;
                if let Some(dir) = q.to(v).normalized() {
                    st.tpnn += 1;
                    probes.push(TpProbe {
                        q,
                        dir,
                        t_max: q.dist(v),
                        inner,
                    });
                    slots.push((mi, idx));
                    break;
                }
                // The vertex coincides with the query point (degenerate,
                // zero-area region) — confirm and pick the next one, as
                // the single-query loop does.
                st.vertices[idx].1 = true;
            }
        }
        if probes.is_empty() {
            break;
        }
        tree.tp_knn_group_in(&probes, scratch, &mut events);
        for (&(mi, idx), event) in slots.iter().zip(&events) {
            let st = &mut states[mi];
            match *event {
                None => {
                    st.vertices[idx].1 = true;
                }
                Some(ev) => {
                    let known = st
                        .pairs
                        .iter()
                        .any(|&(pi, po)| pi.id == ev.partner.id && po.id == ev.object.id);
                    if known {
                        st.vertices[idx].1 = true;
                    } else {
                        let _clip = lbq_obs::stage_timer(lbq_obs::Stage::Clip);
                        let pair = InfluencePair {
                            inner: ev.partner,
                            outer: ev.object,
                        };
                        st.polygon.clip_in_place(&pair.half_plane(), &mut clip_buf);
                        st.pairs.push((pair.inner, pair.outer));
                        if st.polygon.is_empty() {
                            // Degenerate: q sits on a bisector (tie).
                            st.vertices.clear();
                            st.done = true;
                        } else {
                            spare.clear();
                            spare.extend(st.polygon.vertices().iter().map(|&nv| {
                                let confirmed =
                                    st.vertices.iter().any(|(ov, c)| *c && ov.dist(nv) <= eps);
                                (nv, confirmed)
                            }));
                            std::mem::swap(&mut st.vertices, &mut spare);
                        }
                    }
                }
            }
        }
    }
    if span.is_active() {
        span.record("tpnn-queries", states.iter().map(|s| s.tpnn).sum::<usize>());
    }
    states
        .into_iter()
        .zip(members)
        .map(|(st, &(q, _))| {
            let view = NnValidityRef {
                pairs: &st.pairs,
                polygon: &st.polygon,
                universe,
            };
            crate::invariants::debug_validate_nn(&view, q);
            (view.to_owned(), st.tpnn)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_rtree::RTreeConfig;

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect()
    }

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn five_point_cross_region_is_voronoi_cell() {
        // The canonical fixture: center point's cell is the middle
        // square (2.5,2.5)-(7.5,7.5) of the [0,10]² universe.
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let items = vec![
            Item::new(Point::new(5.0, 5.0), 0),
            Item::new(Point::new(0.0, 5.0), 1),
            Item::new(Point::new(10.0, 5.0), 2),
            Item::new(Point::new(5.0, 0.0), 3),
            Item::new(Point::new(5.0, 10.0), 4),
        ];
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let q = Point::new(5.2, 4.9);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        assert_eq!(inner[0].id, 0);
        let (validity, tpnn) = retrieve_influence_set(&tree, q, &inner, universe);
        assert!(
            (validity.area() - 25.0).abs() < 1e-6,
            "area {}",
            validity.area()
        );
        assert_eq!(validity.influence_count(), 4);
        assert_eq!(validity.edge_count(), 4);
        // Lemma 3.2: n_inf + n_v TPNN queries.
        assert_eq!(tpnn, 4 + 4);
        // The query itself is inside; the neighbors' positions are not.
        assert!(validity.contains(q));
        assert!(!validity.contains(Point::new(9.0, 9.0)));
    }

    #[test]
    fn region_matches_brute_force_voronoi_cell() {
        let items = pseudo_random_items(150, 17);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        for &(qx, qy) in &[(0.5, 0.5), (0.12, 0.83), (0.95, 0.07)] {
            let q = Point::new(qx, qy);
            let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
            let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
            // Brute-force Voronoi cell of the NN.
            let o = inner[0].point;
            let mut cell = ConvexPolygon::from_rect(&unit());
            for it in &items {
                if it.id != inner[0].id {
                    cell = cell.clip(&HalfPlane::bisector(o, it.point));
                }
            }
            assert!(
                (validity.area() - cell.area()).abs() < 1e-9,
                "q=({qx},{qy}): got {} want {}",
                validity.area(),
                cell.area()
            );
        }
    }

    #[test]
    fn knn_region_sound_by_sampling() {
        let items = pseudo_random_items(200, 5);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let q = Point::new(0.4, 0.6);
        for k in [1usize, 3, 7] {
            let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
            let inner_ids: std::collections::BTreeSet<u64> = inner.iter().map(|i| i.id).collect();
            let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
            assert!(validity.contains(q), "k={k}: query inside its own region");
            // Sample a grid: inside region ⇒ same kNN set; outside (but
            // well clear of the boundary) ⇒ different set.
            for i in 0..25 {
                for j in 0..25 {
                    let p = Point::new(i as f64 / 25.0 + 0.017, j as f64 / 25.0 + 0.013);
                    let set: std::collections::BTreeSet<u64> =
                        tree.knn(p, k).into_iter().map(|(it, _)| it.id).collect();
                    let same = set == inner_ids;
                    if validity.contains(p) {
                        assert!(same, "k={k}: {p} inside region but kNN differs");
                    } else if validity.polygon.contains_eps(p, -1e-6) {
                        // Skip points hugging the boundary.
                    } else {
                        // Outside the region the set must differ...
                        // unless the region was truncated by the
                        // universe (kNN sets remain valid outside the
                        // data universe too). Only check interior
                        // points whose exclusion came from a bisector.
                        let excluded_by_pair = validity
                            .pairs
                            .iter()
                            .any(|pr| p.dist_sq(pr.inner.point) > p.dist_sq(pr.outer.point) + 1e-9);
                        if excluded_by_pair {
                            assert!(!same, "k={k}: {p} outside region but kNN identical");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn influence_set_is_minimal() {
        // Dropping any influence pair must strictly grow the region.
        let items = pseudo_random_items(120, 23);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let q = Point::new(0.55, 0.45);
        for k in [1usize, 4] {
            let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
            let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
            let full_area = validity.area();
            assert!(full_area > 0.0);
            for skip in 0..validity.pairs.len() {
                let poly = ConvexPolygon::from_rect(&unit()).clip_all(
                    validity
                        .pairs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, p)| p.half_plane())
                        .collect::<Vec<_>>()
                        .iter(),
                );
                assert!(
                    poly.area() > full_area + 1e-12,
                    "k={k}: pair {skip} is redundant"
                );
            }
        }
    }

    #[test]
    fn lemma_3_2_query_count() {
        // TPNN queries = n_inf(pairs) + n_vertices for k = 1 (each pair
        // is a distinct discovery; vertices of the final region each
        // consume one confirming query).
        let items = pseudo_random_items(300, 77);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        for &(qx, qy) in &[(0.3, 0.3), (0.7, 0.2), (0.5, 0.9)] {
            let q = Point::new(qx, qy);
            let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
            let (validity, tpnn) = retrieve_influence_set(&tree, q, &inner, unit());
            assert_eq!(
                tpnn,
                validity.pairs.len() + validity.edge_count(),
                "at ({qx},{qy})"
            );
        }
    }

    #[test]
    fn whole_dataset_in_result_means_universe_region() {
        let items = pseudo_random_items(5, 3);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 5).into_iter().map(|(i, _)| i).collect();
        let (validity, tpnn) = retrieve_influence_set(&tree, q, &inner, unit());
        assert_eq!(tpnn, 0);
        assert!((validity.area() - 1.0).abs() < 1e-12);
        assert!(validity.contains(Point::new(0.01, 0.99)));
    }

    #[test]
    fn grouped_retrieval_is_bit_identical_to_single() {
        let items = pseudo_random_items(2500, 41);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let mut scratch = QueryScratch::new();
        // A tight tile (the serve shape) plus spread members, mixed k.
        let mut members: Vec<(Point, Vec<Item>)> = Vec::new();
        for i in 0..20 {
            let q = Point::new(0.41 + (i % 5) as f64 * 0.003, 0.58 + (i / 5) as f64 * 0.003);
            let inner: Vec<Item> = tree
                .knn_in(q, 1 + i % 3, &mut scratch)
                .iter()
                .map(|&(it, _)| it)
                .collect();
            members.push((q, inner));
        }
        for &(x, y) in &[(0.07, 0.93), (0.88, 0.12)] {
            let q = Point::new(x, y);
            let inner: Vec<Item> = tree
                .knn_in(q, 4, &mut scratch)
                .iter()
                .map(|&(it, _)| it)
                .collect();
            members.push((q, inner));
        }
        let refs: Vec<(Point, &[Item])> = members.iter().map(|(q, r)| (*q, r.as_slice())).collect();
        let grouped = retrieve_influence_set_group(&tree, &refs, unit(), &mut scratch);
        assert_eq!(grouped.len(), members.len());
        for ((q, inner), (validity, tpnn)) in members.iter().zip(&grouped) {
            let (want, want_tpnn) =
                retrieve_influence_set_in(&tree, *q, inner, unit(), &mut scratch);
            assert_eq!(*tpnn, want_tpnn, "TPNN count at {q}");
            let want_pairs: Vec<(u64, u64)> =
                want.pairs().map(|p| (p.inner.id, p.outer.id)).collect();
            let got_pairs: Vec<(u64, u64)> = validity
                .pairs
                .iter()
                .map(|p| (p.inner.id, p.outer.id))
                .collect();
            assert_eq!(got_pairs, want_pairs, "pair discovery order at {q}");
            let want_bits: Vec<(u64, u64)> = want
                .polygon()
                .vertices()
                .iter()
                .map(|v| (v.x.to_bits(), v.y.to_bits()))
                .collect();
            let got_bits: Vec<(u64, u64)> = validity
                .polygon
                .vertices()
                .iter()
                .map(|v| (v.x.to_bits(), v.y.to_bits()))
                .collect();
            assert_eq!(got_bits, want_bits, "polygon vertex bits at {q}");
        }
    }

    #[test]
    fn single_point_dataset() {
        let items = vec![Item::new(Point::new(0.2, 0.8), 0)];
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let q = Point::new(0.9, 0.1);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
        assert!((validity.area() - 1.0).abs() < 1e-12);
        assert!(validity.pairs.is_empty());
    }
}
