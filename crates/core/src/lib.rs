//! # lbq — location-based spatial queries
//!
//! A from-scratch Rust implementation of **"Location-based Spatial
//! Queries"** (Zhang, Zhu, Papadias, Tao, Lee — SIGMOD 2003).
//!
//! A mobile client issues a spatial query at its current position; the
//! server returns the result **plus a validity region**: an area within
//! which the result provably cannot change. While the client stays
//! inside, it answers follow-up queries locally — zero server
//! round-trips, zero network traffic. The region is represented
//! compactly by an *influence set* of data points (≈6 for nearest
//! neighbors, ≈4 for windows), and checking it costs a handful of
//! comparisons.
//!
//! ```
//! use lbq_core::LbqServer;
//! use lbq_geom::{Point, Rect};
//! use lbq_rtree::{Item, RTree, RTreeConfig};
//!
//! let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
//! let items = vec![
//!     Item::new(Point::new(5.0, 5.0), 0),
//!     Item::new(Point::new(0.0, 5.0), 1),
//!     Item::new(Point::new(10.0, 5.0), 2),
//!     Item::new(Point::new(5.0, 0.0), 3),
//!     Item::new(Point::new(5.0, 10.0), 4),
//! ];
//! let server = LbqServer::new(RTree::bulk_load(items, RTreeConfig::tiny()), universe);
//!
//! let resp = server.knn_with_validity(Point::new(5.2, 4.9), 1);
//! assert_eq!(resp.result[0].id, 0);
//! // The validity region is the Voronoi cell of point 0 — the client
//! // keeps the answer anywhere inside it:
//! assert!(resp.validity.contains(Point::new(4.0, 6.0)));
//! assert!(!resp.validity.contains(Point::new(9.0, 5.0)));
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`nn`] | §3 | kNN validity regions via TPNN vertex confirmation |
//! | [`window`] | §4 | window validity regions (inner rect − Minkowski holes) |
//! | [`analysis`] | §5 | expected region sizes, R-tree cost model |
//! | [`baselines`] | §2 | `[SR01]`, `[ZL01]`, `[TP02]` comparison techniques |
//! | [`client`] | §1 | trajectories, caching strategies, simulation |

pub mod analysis;
pub mod baselines;
pub mod client;
pub mod invariants;
pub mod nn;
pub mod region;
pub mod window;

pub use nn::{
    retrieve_influence_set, retrieve_influence_set_group, retrieve_influence_set_in, InfluencePair,
    NnResponse, NnValidity, NnValidityRef,
};
pub use region::{region_with_validity, RegionResponse, RegionValidity};
pub use window::{window_with_validity, window_with_validity_in, WindowResponse, WindowValidity};

use lbq_geom::{Point, Rect};
use lbq_rtree::{Item, QueryScratch, RTree, RTreeConfig, Stats};

/// The location-based query server: an R\*-tree over static points plus
/// the query-processing of the paper's Sections 3 and 4.
#[derive(Debug)]
pub struct LbqServer {
    tree: RTree,
    universe: Rect,
}

// Compile-time proof that an `Arc<LbqServer>` can fan out across the
// serve worker pool; a field losing Send or Sync must fail the build.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LbqServer>();
};

impl LbqServer {
    /// Wraps an existing tree.
    pub fn new(tree: RTree, universe: Rect) -> Self {
        LbqServer { tree, universe }
    }

    /// Bulk-loads a server from items with the paper's page geometry.
    pub fn from_items(items: Vec<Item>, universe: Rect) -> Self {
        Self::new(RTree::bulk_load(items, RTreeConfig::paper()), universe)
    }

    /// The underlying index (e.g. to attach a buffer or read counters).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// The data universe.
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Location-based kNN (paper §3): result, influence set, validity
    /// region.
    ///
    /// Step (i) runs a best-first kNN `[HS99]`; step (ii) the
    /// TPNN-driven influence-set retrieval of Figs. 10/12; step (iii)
    /// packages the response.
    pub fn knn_with_validity(&self, q: Point, k: usize) -> NnResponse {
        let mut scratch = QueryScratch::new();
        self.knn_with_validity_in(q, k, &mut scratch)
    }

    /// [`LbqServer::knn_with_validity`] against a reusable
    /// [`QueryScratch`]: the initial kNN and the whole TPNN chain of the
    /// influence-set retrieval share one set of buffers. This is the
    /// entry point `lbq-serve` workers use with their thread-owned
    /// scratch.
    pub fn knn_with_validity_in(
        &self,
        q: Point,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> NnResponse {
        let result: Vec<Item> = self
            .tree
            .knn_in(q, k, scratch)
            .iter()
            .map(|&(i, _)| i)
            .collect();
        self.knn_response_from_result_in(q, result, scratch)
    }

    /// Packages an already-computed kNN `result` (ascending by
    /// distance) into a full [`NnResponse`]: runs the influence-set
    /// retrieval on the scratch and detaches an owned validity region.
    ///
    /// This is step (ii)+(iii) of [`LbqServer::knn_with_validity`]
    /// without step (i) — for callers that answered the kNN itself some
    /// other way, such as the tile-batched shared-frontier traversal
    /// ([`lbq_rtree::RTree::knn_group_in`]) in `lbq-serve`.
    pub fn knn_response_from_result_in(
        &self,
        q: Point,
        result: Vec<Item>,
        scratch: &mut QueryScratch,
    ) -> NnResponse {
        if result.is_empty() {
            return NnResponse {
                query: q,
                result,
                validity: NnValidity {
                    pairs: Vec::new(),
                    polygon: lbq_geom::ConvexPolygon::from_rect(&self.universe),
                    universe: self.universe,
                },
                tpnn_queries: 0,
            };
        }
        let (validity, tpnn_queries) =
            nn::retrieve_influence_set_in(&self.tree, q, &result, self.universe, scratch);
        let validity = validity.to_owned();
        NnResponse {
            query: q,
            result,
            validity,
            tpnn_queries,
        }
    }

    /// Packages a whole tile of already-computed kNN results into
    /// [`NnResponse`]s, batching the members' influence-set TPNN probes
    /// into shared-frontier traversals
    /// ([`lbq_rtree::RTree::tp_knn_group_in`]) instead of running each
    /// member's validity chain against the tree alone.
    ///
    /// Response `i` is byte-identical to
    /// `self.knn_response_from_result_in(queries[i], results[i], …)` —
    /// see [`nn::retrieve_influence_set_group`] for why. `queries` and
    /// `results` must be index-aligned.
    pub fn knn_responses_from_results_group_in(
        &self,
        queries: &[Point],
        results: Vec<Vec<Item>>,
        scratch: &mut QueryScratch,
    ) -> Vec<NnResponse> {
        assert_eq!(queries.len(), results.len(), "one result set per query");
        let members: Vec<(Point, &[Item])> = queries
            .iter()
            .zip(&results)
            .filter(|(_, r)| !r.is_empty())
            .map(|(&q, r)| (q, r.as_slice()))
            .collect();
        let mut regions =
            nn::retrieve_influence_set_group(&self.tree, &members, self.universe, scratch)
                .into_iter();
        queries
            .iter()
            .zip(results)
            .map(|(&q, result)| {
                if result.is_empty() {
                    return NnResponse {
                        query: q,
                        result,
                        validity: NnValidity {
                            pairs: Vec::new(),
                            polygon: lbq_geom::ConvexPolygon::from_rect(&self.universe),
                            universe: self.universe,
                        },
                        tpnn_queries: 0,
                    };
                }
                let (validity, tpnn_queries) =
                    // lbq-check: allow(no-unwrap-core) — one region per non-empty member, in order
                    regions.next().expect("one region per non-empty member");
                NnResponse {
                    query: q,
                    result,
                    validity,
                    tpnn_queries,
                }
            })
            .collect()
    }

    /// Location-based window query (paper §4) for a client at `c` with
    /// a window of half-extents `(hx, hy)`.
    pub fn window_with_validity(&self, c: Point, hx: f64, hy: f64) -> WindowResponse {
        window::window_with_validity(&self.tree, c, hx, hy, self.universe)
    }

    /// [`LbqServer::window_with_validity`] against a reusable
    /// [`QueryScratch`].
    pub fn window_with_validity_in(
        &self,
        c: Point,
        hx: f64,
        hy: f64,
        scratch: &mut QueryScratch,
    ) -> WindowResponse {
        window::window_with_validity_in(&self.tree, c, hx, hy, self.universe, scratch)
    }

    /// Location-based circular region query (the paper's §7 future-work
    /// extension) for a client at `c` with search radius `r`.
    pub fn region_with_validity(&self, c: Point, r: f64) -> RegionResponse {
        region::region_with_validity(&self.tree, c, r, self.universe)
    }

    /// Runs `f` against this server and returns its result together
    /// with the [`Stats`] delta the call incurred (see
    /// [`lbq_rtree::RTree::with_stats`] for the metering contract,
    /// including the caveat under concurrent access).
    pub fn with_stats<R>(&self, f: impl FnOnce(&Self) -> R) -> (R, Stats) {
        let before = self.tree.stats();
        let out = f(self);
        (out, self.tree.stats().delta_since(before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_server_responses() {
        let server = LbqServer::new(
            RTree::new(RTreeConfig::tiny()),
            Rect::new(0.0, 0.0, 1.0, 1.0),
        );
        let nn = server.knn_with_validity(Point::new(0.5, 0.5), 3);
        assert!(nn.result.is_empty());
        assert_eq!(nn.tpnn_queries, 0);
        // Empty dataset: the (empty) result is valid everywhere.
        assert!(nn.validity.contains(Point::new(0.1, 0.9)));
        let w = server.window_with_validity(Point::new(0.5, 0.5), 0.1, 0.1);
        assert!(w.result.is_empty());
    }

    #[test]
    fn doc_example_compiles_and_holds() {
        let universe = Rect::new(0.0, 0.0, 10.0, 10.0);
        let items = vec![
            Item::new(Point::new(5.0, 5.0), 0),
            Item::new(Point::new(0.0, 5.0), 1),
            Item::new(Point::new(10.0, 5.0), 2),
            Item::new(Point::new(5.0, 0.0), 3),
            Item::new(Point::new(5.0, 10.0), 4),
        ];
        let server = LbqServer::new(RTree::bulk_load(items, RTreeConfig::tiny()), universe);
        let resp = server.knn_with_validity(Point::new(5.2, 4.9), 1);
        assert_eq!(resp.result[0].id, 0);
        assert!(resp.validity.contains(Point::new(4.0, 6.0)));
        assert!(!resp.validity.contains(Point::new(9.0, 5.0)));
    }
}
