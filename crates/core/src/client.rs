//! The mobile-client side: trajectories, caching strategies and the
//! end-to-end simulation that motivates the whole paper — *how many
//! server round-trips does a moving client save?*
//!
//! The paper's introduction frames the problem (re-querying on every
//! position update "could lead to high network overhead"); this module
//! quantifies it by replaying a client trajectory against every
//! strategy:
//!
//! * [`NnStrategy::Naive`] — query the server at every step;
//! * [`NnStrategy::Lbq`] — this paper: influence-set validity regions;
//! * [`NnStrategy::Sr01`] — cached `m`-of-`k` neighbors;
//! * [`NnStrategy::Zl01`] — Voronoi safe distance (k = 1 only);
//! * [`NnStrategy::Tp`] — time-parameterized expiry, invalidated by
//!   direction changes.
//!
//! Every simulation *verifies* each strategy's answer against the
//! ground-truth kNN at every step, so the reports compare equally
//! correct systems.

use crate::baselines::{sr01_query, tp_query, Sr01Cache, Zl01Server};
use crate::nn::retrieve_influence_set;
use lbq_geom::{Point, Rect, Vec2};
use lbq_obs::{Histogram, HistogramSummary};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, RTree};

/// A random-waypoint trajectory: head toward a waypoint in fixed-length
/// steps; on arrival draw a new waypoint.
pub fn random_waypoint(
    universe: Rect,
    start: Point,
    steps: usize,
    step_len: f64,
    seed: u64,
) -> Vec<Point> {
    let mut rng = Xoshiro256ss::seed_from_u64(seed ^ 0x57A9);
    let mut out = Vec::with_capacity(steps + 1);
    let mut cur = universe.clamp_point(start);
    out.push(cur);
    let mut waypoint = random_point(&mut rng, &universe);
    for _ in 0..steps {
        while cur.dist(waypoint) < step_len {
            waypoint = random_point(&mut rng, &universe);
        }
        // lbq-check: allow(no-unwrap-core) — the loop above guarantees distance
        let dir = cur.to(waypoint).normalized().expect("waypoint ≠ cur");
        cur = universe.clamp_point(cur + dir * step_len);
        out.push(cur);
    }
    out
}

fn random_point(rng: &mut Xoshiro256ss, r: &Rect) -> Point {
    Point::new(rng.gen_range(r.xmin..r.xmax), rng.gen_range(r.ymin..r.ymax))
}

/// Client strategy for continuous kNN monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NnStrategy {
    /// Re-query the server at every step.
    Naive,
    /// This paper: validity region from the influence set.
    Lbq,
    /// This paper + the §7 "incremental computation" future-work item:
    /// on re-query the server ships only the result *delta* (objects
    /// added/removed versus the client's cached result) plus the fresh
    /// influence set.
    LbqDelta,
    /// `[SR01]` with the given `m`.
    Sr01 { m: usize },
    /// `[ZL01]` Voronoi safe distance (requires `k == 1`).
    Zl01,
    /// `[TP02]` expiry times; a direction change invalidates the cache.
    Tp,
}

/// Size of the delta payload between two result sets: objects that must
/// be shipped (additions, full objects) plus removal tombstones (ids,
/// counted as one "object" each — pessimistic for the delta side).
pub fn delta_payload(old: &[Item], new: &[Item]) -> usize {
    let old_ids: std::collections::HashSet<u64> = old.iter().map(|i| i.id).collect();
    let new_ids: std::collections::HashSet<u64> = new.iter().map(|i| i.id).collect();
    let added = new.iter().filter(|i| !old_ids.contains(&i.id)).count();
    let removed = old.iter().filter(|i| !new_ids.contains(&i.id)).count();
    added + removed
}

/// Outcome of a simulated trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    /// Steps simulated (positions after the start).
    pub steps: usize,
    /// Server queries issued (the headline metric).
    pub server_queries: usize,
    /// Objects shipped server→client in total (network payload proxy).
    pub objects_shipped: usize,
    /// Client-side validity checks performed.
    pub validity_checks: usize,
    /// R-tree node accesses incurred by the strategy's server work
    /// (ground-truth verification queries excluded).
    pub na: u64,
    /// Buffer faults (page accesses) incurred by the strategy's server
    /// work.
    pub pa: u64,
    /// Wall-clock latency distribution of the server round-trips.
    pub latency: HistogramSummary,
}

impl SimReport {
    /// Queries saved relative to querying at every step.
    pub fn savings_ratio(&self) -> f64 {
        1.0 - self.server_queries as f64 / self.steps.max(1) as f64
    }
}

/// Runs one server round-trip `f`, charging its wall-clock time to
/// `latency` and its NA/PA delta (plus one query) to `report`. The
/// ground-truth verification queries the harness issues around it are
/// deliberately *not* routed through here, so the report reflects only
/// the strategy's own cost.
fn metered_query<R>(
    tree: &RTree,
    report: &mut SimReport,
    latency: &Histogram,
    f: impl FnOnce() -> R,
) -> R {
    report.server_queries += 1;
    let t0 = std::time::Instant::now();
    let (out, stats) = tree.with_stats(|_| f());
    latency.record(t0.elapsed());
    report.na += stats.node_accesses;
    report.pa += stats.page_faults;
    out
}

/// Feeds a cache-probe outcome to the global `lbq_obs` counters and,
/// when tracing is on, emits the per-step hit/miss event.
fn note_cache(hits: &lbq_obs::Counter, misses: &lbq_obs::Counter, hit: bool) {
    if hit {
        hits.incr();
        if lbq_obs::enabled() {
            lbq_obs::event("client-cache-hit");
        }
    } else {
        misses.incr();
        if lbq_obs::enabled() {
            lbq_obs::event("client-cache-miss");
        }
    }
}

/// Replays `trajectory` under `strategy`, asserting answer correctness
/// at every step. `zl01` must be provided iff the strategy is
/// [`NnStrategy::Zl01`].
pub fn simulate_nn(
    tree: &RTree,
    universe: Rect,
    trajectory: &[Point],
    k: usize,
    strategy: NnStrategy,
    zl01: Option<&Zl01Server>,
) -> SimReport {
    assert!(k >= 1 && !trajectory.is_empty());
    let mut report = SimReport {
        steps: trajectory.len() - 1,
        server_queries: 0,
        objects_shipped: 0,
        validity_checks: 0,
        na: 0,
        pa: 0,
        latency: HistogramSummary::default(),
    };
    let latency = Histogram::new();
    let cache_hits = lbq_obs::counter("client-cache-hits");
    let cache_misses = lbq_obs::counter("client-cache-misses");

    // Per-strategy cache state.
    let mut lbq_cache: Option<crate::nn::NnValidity> = None;
    let mut lbq_result: Vec<Item> = Vec::new();
    let mut sr_cache: Option<Sr01Cache> = None;
    let mut zl_cache: Option<(crate::baselines::Zl01Response, Point)> = None;
    let mut tp_cache: Option<(Vec<Item>, Option<f64>, Point, Vec2)> = None;

    for (step, &pos) in trajectory.iter().enumerate() {
        let truth: Vec<u64> = tree.knn(pos, k).into_iter().map(|(i, _)| i.id).collect();
        let answer: Vec<u64> = match strategy {
            NnStrategy::Naive => {
                // Re-issue the query under the meter rather than reusing
                // `truth`: the report charges the strategy its real cost.
                let res = metered_query(tree, &mut report, &latency, || tree.knn(pos, k));
                report.objects_shipped += k;
                res.into_iter().map(|(i, _)| i.id).collect()
            }
            NnStrategy::Lbq | NnStrategy::LbqDelta => {
                let hit = match &lbq_cache {
                    Some(v) => {
                        report.validity_checks += 1;
                        v.contains(pos)
                    }
                    None => false,
                };
                note_cache(&cache_hits, &cache_misses, hit);
                if !hit {
                    let (inner, validity) = metered_query(tree, &mut report, &latency, || {
                        let inner: Vec<Item> =
                            tree.knn(pos, k).into_iter().map(|(i, _)| i).collect();
                        let (validity, _) = retrieve_influence_set(tree, pos, &inner, universe);
                        (inner, validity)
                    });
                    let result_payload = if strategy == NnStrategy::LbqDelta {
                        delta_payload(&lbq_result, &inner)
                    } else {
                        k
                    };
                    report.objects_shipped += result_payload + validity.influence_count();
                    lbq_result = inner;
                    lbq_cache = Some(validity);
                }
                lbq_result.iter().map(|i| i.id).collect()
            }
            NnStrategy::Sr01 { m } => {
                let hit = match &sr_cache {
                    Some(c) => {
                        report.validity_checks += 1;
                        c.valid_at(pos)
                    }
                    None => false,
                };
                note_cache(&cache_hits, &cache_misses, hit);
                if !hit {
                    let c = metered_query(tree, &mut report, &latency, || {
                        sr01_query(tree, pos, k, m.max(k))
                    });
                    report.objects_shipped += c.payload();
                    sr_cache = Some(c);
                }
                sr_cache
                    .as_ref()
                    // lbq-check: allow(no-unwrap-core) — filled on miss above
                    .expect("just filled")
                    .knn_at(pos)
                    .into_iter()
                    .map(|i| i.id)
                    .collect()
            }
            NnStrategy::Zl01 => {
                assert_eq!(k, 1, "[ZL01] supports single NN only");
                // lbq-check: allow(no-unwrap-core) — strategy precondition
                let server = zl01.expect("ZL01 strategy needs the Voronoi server");
                let hit = match &zl_cache {
                    Some((resp, origin)) => {
                        report.validity_checks += 1;
                        origin.dist(pos) < resp.safe_distance
                    }
                    None => false,
                };
                note_cache(&cache_hits, &cache_misses, hit);
                if !hit {
                    report.objects_shipped += 1;
                    let resp = metered_query(tree, &mut report, &latency, || {
                        // lbq-check: allow(no-unwrap-core) — harness datasets are non-empty
                        server.query(pos).expect("non-empty dataset")
                    });
                    zl_cache = Some((resp, pos));
                }
                // lbq-check: allow(no-unwrap-core) — filled on miss above
                vec![zl_cache.as_ref().expect("just filled").0.nn.id]
            }
            NnStrategy::Tp => {
                // Direction of travel this step (undefined at the last
                // position; reuse the previous one).
                let dir = trajectory
                    .get(step + 1)
                    .and_then(|next| pos.to(*next).normalized())
                    .or(tp_cache.as_ref().map(|(_, _, _, d)| *d));
                let hit = match (&tp_cache, dir) {
                    (Some((_, expiry, origin, cached_dir)), Some(d)) => {
                        report.validity_checks += 1;
                        let same_dir = cached_dir.dot(d) > 1.0 - lbq_geom::EPS;
                        let traveled = origin.dist(pos);
                        same_dir && expiry.is_none_or(|t| traveled < t)
                    }
                    _ => false,
                };
                note_cache(&cache_hits, &cache_misses, hit);
                if !hit {
                    let d = dir.unwrap_or(Vec2::new(1.0, 0.0));
                    let horizon = universe.width().hypot(universe.height());
                    let resp = metered_query(tree, &mut report, &latency, || {
                        tp_query(tree, pos, d, k, horizon)
                    });
                    report.objects_shipped += resp.result.len() + 1;
                    tp_cache = Some((resp.result.clone(), resp.expiry.map(|e| e.time), pos, d));
                }
                tp_cache
                    .as_ref()
                    // lbq-check: allow(no-unwrap-core) — filled on miss above
                    .expect("just filled")
                    .0
                    .iter()
                    .map(|i| i.id)
                    .collect()
            }
        };
        let mut sorted = answer.clone();
        sorted.sort_unstable();
        let mut truth_sorted = truth.clone();
        truth_sorted.sort_unstable();
        assert_eq!(
            sorted, truth_sorted,
            "strategy {strategy:?} answered wrong at step {step} ({pos})"
        );
    }
    report.latency = latency.summary();
    report
}

/// Client strategy for continuous window monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowStrategy {
    /// Re-query at every step.
    Naive,
    /// This paper: exact validity region (inner rect minus Minkowski
    /// holes).
    Lbq,
    /// This paper, conservative rectangle only (constant-time check;
    /// re-queries earlier).
    LbqConservative,
    /// `[TP02]` moving-window expiry; invalidated by direction changes.
    TpWindow,
}

/// Replays `trajectory` under a window-monitoring strategy (window of
/// half-extents `(hx, hy)` centered on the client), asserting result
/// exactness at every step.
pub fn simulate_window(
    tree: &RTree,
    universe: Rect,
    trajectory: &[Point],
    hx: f64,
    hy: f64,
    strategy: WindowStrategy,
) -> SimReport {
    assert!(!trajectory.is_empty());
    let mut report = SimReport {
        steps: trajectory.len() - 1,
        server_queries: 0,
        objects_shipped: 0,
        validity_checks: 0,
        na: 0,
        pa: 0,
        latency: HistogramSummary::default(),
    };
    let latency = Histogram::new();
    let cache_hits = lbq_obs::counter("client-cache-hits");
    let cache_misses = lbq_obs::counter("client-cache-misses");
    let mut lbq_cache: Option<(crate::window::WindowValidity, Vec<Item>)> = None;
    let mut tp_cache: Option<(Vec<Item>, Option<f64>, Point, Vec2)> = None;

    for (step, &pos) in trajectory.iter().enumerate() {
        let truth: Vec<u64> = {
            let mut v: Vec<u64> = tree
                .window(&lbq_geom::Rect::centered(pos, hx, hy))
                .into_iter()
                .map(|i| i.id)
                .collect();
            v.sort_unstable();
            v
        };
        let answer: Vec<u64> = match strategy {
            WindowStrategy::Naive => {
                // As in `simulate_nn`: pay for the query under the meter.
                let res = metered_query(tree, &mut report, &latency, || {
                    tree.window(&lbq_geom::Rect::centered(pos, hx, hy))
                });
                report.objects_shipped += res.len();
                res.into_iter().map(|i| i.id).collect()
            }
            WindowStrategy::Lbq | WindowStrategy::LbqConservative => {
                let hit = match &lbq_cache {
                    Some((v, _)) => {
                        report.validity_checks += 1;
                        if strategy == WindowStrategy::LbqConservative {
                            v.contains_conservative(pos)
                        } else {
                            v.contains(pos)
                        }
                    }
                    None => false,
                };
                note_cache(&cache_hits, &cache_misses, hit);
                if !hit {
                    let resp = metered_query(tree, &mut report, &latency, || {
                        crate::window::window_with_validity(tree, pos, hx, hy, universe)
                    });
                    report.objects_shipped += resp.result.len() + resp.validity.influence_count();
                    lbq_cache = Some((resp.validity, resp.result));
                }
                lbq_cache
                    .as_ref()
                    // lbq-check: allow(no-unwrap-core) — filled on miss above
                    .expect("just filled")
                    .1
                    .iter()
                    .map(|i| i.id)
                    .collect()
            }
            WindowStrategy::TpWindow => {
                let dir = trajectory
                    .get(step + 1)
                    .and_then(|next| pos.to(*next).normalized())
                    .or(tp_cache.as_ref().map(|(_, _, _, d)| *d));
                let hit = match (&tp_cache, dir) {
                    (Some((_, expiry, origin, cached_dir)), Some(d)) => {
                        report.validity_checks += 1;
                        cached_dir.dot(d) > 1.0 - lbq_geom::EPS
                            && expiry.is_none_or(|t| origin.dist(pos) < t)
                    }
                    _ => false,
                };
                note_cache(&cache_hits, &cache_misses, hit);
                if !hit {
                    let d = dir.unwrap_or(Vec2::new(1.0, 0.0));
                    let horizon = universe.width().hypot(universe.height());
                    let (result, ev) = metered_query(tree, &mut report, &latency, || {
                        let result = tree.window(&lbq_geom::Rect::centered(pos, hx, hy));
                        let ev = tree.tp_window(pos, d, horizon, hx, hy, &result);
                        (result, ev)
                    });
                    report.objects_shipped += result.len() + 1;
                    tp_cache = Some((result, ev.map(|e| e.time), pos, d));
                }
                tp_cache
                    .as_ref()
                    // lbq-check: allow(no-unwrap-core) — filled on miss above
                    .expect("just filled")
                    .0
                    .iter()
                    .map(|i| i.id)
                    .collect()
            }
        };
        let mut sorted = answer;
        sorted.sort_unstable();
        assert_eq!(
            sorted, truth,
            "window strategy {strategy:?} wrong at step {step} ({pos})"
        );
    }
    report.latency = latency.summary();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_rtree::RTreeConfig;

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect()
    }

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn trajectory_stays_in_universe_with_fixed_steps() {
        let traj = random_waypoint(unit(), Point::new(0.5, 0.5), 200, 0.01, 7);
        assert_eq!(traj.len(), 201);
        for w in traj.windows(2) {
            assert!(unit().contains(w[1]));
            // Clamping can shorten a step at the border, never lengthen.
            assert!(w[0].dist(w[1]) <= 0.01 + 1e-12);
        }
    }

    #[test]
    fn all_strategies_correct_and_lbq_saves() {
        let items = pseudo_random_items(800, 21);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let zl = Zl01Server::build(&items, unit());
        let traj = random_waypoint(unit(), Point::new(0.3, 0.3), 300, 0.002, 5);

        let naive = simulate_nn(&tree, unit(), &traj, 1, NnStrategy::Naive, None);
        let lbq = simulate_nn(&tree, unit(), &traj, 1, NnStrategy::Lbq, None);
        let sr = simulate_nn(&tree, unit(), &traj, 1, NnStrategy::Sr01 { m: 6 }, None);
        let zl01 = simulate_nn(&tree, unit(), &traj, 1, NnStrategy::Zl01, Some(&zl));
        let tp = simulate_nn(&tree, unit(), &traj, 1, NnStrategy::Tp, None);

        assert_eq!(naive.server_queries, 301);
        // The validity-region approach must beat naive by a wide margin
        // on a slow-moving client.
        assert!(
            lbq.server_queries * 5 < naive.server_queries,
            "lbq used {} queries",
            lbq.server_queries
        );
        // And every cached strategy beats naive.
        for (name, r) in [("sr01", &sr), ("zl01", &zl01), ("tp", &tp)] {
            assert!(
                r.server_queries < naive.server_queries,
                "{name}: {} vs naive {}",
                r.server_queries,
                naive.server_queries
            );
        }
        // ZL01's region (the full Voronoi cell) can't beat LBQ's (the
        // same cell) by queries; safe-*distance* is conservative, so it
        // re-queries at least as often.
        assert!(zl01.server_queries >= lbq.server_queries);
    }

    #[test]
    fn knn_strategies_correct() {
        let items = pseudo_random_items(600, 3);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let traj = random_waypoint(unit(), Point::new(0.6, 0.4), 150, 0.003, 11);
        for k in [2usize, 5] {
            let lbq = simulate_nn(&tree, unit(), &traj, k, NnStrategy::Lbq, None);
            let sr = simulate_nn(&tree, unit(), &traj, k, NnStrategy::Sr01 { m: 3 * k }, None);
            let tp = simulate_nn(&tree, unit(), &traj, k, NnStrategy::Tp, None);
            assert!(lbq.server_queries < 151);
            assert!(sr.server_queries < 151);
            assert!(tp.server_queries <= 151);
            assert!(lbq.savings_ratio() > 0.0);
        }
    }

    #[test]
    fn delta_strategy_ships_less() {
        let items = pseudo_random_items(700, 31);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let traj = random_waypoint(unit(), Point::new(0.5, 0.5), 250, 0.002, 3);
        let k = 5;
        let full = simulate_nn(&tree, unit(), &traj, k, NnStrategy::Lbq, None);
        let delta = simulate_nn(&tree, unit(), &traj, k, NnStrategy::LbqDelta, None);
        // Same query count (identical validity logic), smaller payload:
        // exiting a validity region changes at most one set member.
        assert_eq!(full.server_queries, delta.server_queries);
        assert!(
            delta.objects_shipped < full.objects_shipped,
            "delta {} vs full {}",
            delta.objects_shipped,
            full.objects_shipped
        );
    }

    #[test]
    fn delta_payload_counts() {
        let a = [Item::new(Point::ORIGIN, 1), Item::new(Point::ORIGIN, 2)];
        let b = [Item::new(Point::ORIGIN, 2), Item::new(Point::ORIGIN, 3)];
        assert_eq!(delta_payload(&a, &b), 2); // +3, −1
        assert_eq!(delta_payload(&a, &a), 0);
        assert_eq!(delta_payload(&[], &b), 2);
        assert_eq!(delta_payload(&a, &[]), 2);
    }

    #[test]
    fn window_strategies_correct_and_ordered() {
        let items = pseudo_random_items(500, 13);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        // A slow client: the expected validity travel at this density is
        // ~1/(2·N·s) ≈ 0.011, an order of magnitude above the step.
        let traj = random_waypoint(unit(), Point::new(0.4, 0.4), 200, 0.001, 9);
        let (hx, hy) = (0.05, 0.04);
        let naive = simulate_window(&tree, unit(), &traj, hx, hy, WindowStrategy::Naive);
        let lbq = simulate_window(&tree, unit(), &traj, hx, hy, WindowStrategy::Lbq);
        let cons = simulate_window(
            &tree,
            unit(),
            &traj,
            hx,
            hy,
            WindowStrategy::LbqConservative,
        );
        let tp = simulate_window(&tree, unit(), &traj, hx, hy, WindowStrategy::TpWindow);
        assert_eq!(naive.server_queries, 201);
        assert!(lbq.server_queries < naive.server_queries / 2);
        // The conservative rectangle is a subset of the exact region:
        // it can only re-query more often.
        assert!(cons.server_queries >= lbq.server_queries);
        assert!(tp.server_queries <= naive.server_queries);
    }

    #[test]
    #[should_panic]
    fn zl01_rejects_k_above_one() {
        let items = pseudo_random_items(50, 2);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let zl = Zl01Server::build(&items, unit());
        let traj = random_waypoint(unit(), Point::new(0.5, 0.5), 5, 0.01, 1);
        let _ = simulate_nn(&tree, unit(), &traj, 2, NnStrategy::Zl01, Some(&zl));
    }
}
