//! Location-based **circular region queries** — the first future-work
//! item of the paper's Section 7 ("find all restaurants within a 5 km
//! radius"), where "the problem is more complex, conceptually and
//! computationally, since the validity region is defined by arcs
//! resulting from circle intersections".
//!
//! A client at `c` with search radius `r` sees every point of
//! `D(c, r)`. Translating the NN/window machinery:
//!
//! * the result is stable at `c'` iff every result point stays within
//!   `r` of `c'` (i.e. `c' ∈ ⋂_{p∈R} D(p, r)` — a convex lens bounded by
//!   arcs) **and** no other point comes within `r`
//!   (`c' ∉ ⋃_{p∉R} D(p, r)`);
//! * only points within `3r` of `c` can ever bound the region (any
//!   affecting disk must reach the region, which lies inside `D(p₀, r)`
//!   for any result point `p₀`, itself inside `D(c, 2r)`), so one range
//!   query fetches every candidate;
//! * a **conservative validity disk** of radius
//!   `min(min_{p∈R}(r − d(c,p)), min_{p∉R}(d(c,p) − r))` gives the
//!   constant-time client check, while the influence sets give the
//!   exact check.
//!
//! Exact arc-bounded *areas* are not needed by any client operation
//! (membership tests are plain distance comparisons); [`RegionValidity::area_grid`]
//! offers a grid approximation for instrumentation.

use lbq_geom::{Point, Rect};
use lbq_rtree::{Item, RTree};

/// Validity structure of a location-based circular region query.
#[derive(Debug, Clone)]
pub struct RegionValidity {
    /// The query radius.
    pub radius: f64,
    /// Result points whose disks bound the region ("stay close to
    /// these").
    pub inner_influence: Vec<Item>,
    /// Non-result candidates whose disks carve the region ("stay away
    /// from these").
    pub outer_influence: Vec<Item>,
    /// Radius of the conservative validity disk around the query focus
    /// (0 when a point lies exactly on the search circle).
    pub safe_radius: f64,
    /// Sound bound on how far from `origin` the validity region can
    /// extend: `min_{p∈R} d(origin, p) + radius` for non-empty results
    /// (implied by the inner constraints, made explicit), and the
    /// conservative disk for empty ones (where no inner constraint
    /// exists to bound the region, and candidates beyond it were never
    /// fetched).
    pub travel_bound: f64,
    /// The query focus the structure was computed at.
    pub origin: Point,
    /// The data universe (region clipped to it).
    pub universe: Rect,
}

impl RegionValidity {
    /// Exact client-side check: the cached result is still exact at
    /// `c`. O(|influence sets|) distance comparisons.
    pub fn contains(&self, c: Point) -> bool {
        let r_sq = self.radius * self.radius;
        self.universe.contains(c)
            && self.origin.dist(c) <= self.travel_bound
            && self
                .inner_influence
                .iter()
                .all(|p| c.dist_sq(p.point) <= r_sq)
            && !self
                .outer_influence
                .iter()
                .any(|p| c.dist_sq(p.point) < r_sq)
    }

    /// Constant-time conservative check: inside the safe disk.
    pub fn contains_conservative(&self, c: Point) -> bool {
        self.origin.dist(c) <= self.safe_radius && self.universe.contains(c)
    }

    /// Total influence objects (the wire payload beyond the result).
    pub fn influence_count(&self) -> usize {
        self.inner_influence.len() + self.outer_influence.len()
    }

    /// Grid approximation of the arc-bounded region's area, with
    /// `resolution²` samples over the candidate bounding box. For
    /// instrumentation only — no client operation needs areas.
    pub fn area_grid(&self, resolution: usize) -> f64 {
        assert!(resolution >= 2);
        // The region lies within `radius` of the origin's own disk
        // intersection; a 2r box around the origin always covers it.
        let bb = Rect::centered(self.origin, 2.0 * self.radius, 2.0 * self.radius);
        let bb = bb.intersection(&self.universe).unwrap_or(bb);
        let (w, h) = (bb.width(), bb.height());
        let cell = w * h / (resolution * resolution) as f64;
        let mut hits = 0usize;
        for i in 0..resolution {
            for j in 0..resolution {
                let p = Point::new(
                    bb.xmin + w * (i as f64 + 0.5) / resolution as f64,
                    bb.ymin + h * (j as f64 + 0.5) / resolution as f64,
                );
                if self.contains(p) {
                    hits += 1;
                }
            }
        }
        hits as f64 * cell
    }
}

/// Server response to a location-based region query.
#[derive(Debug, Clone)]
pub struct RegionResponse {
    pub query: Point,
    pub radius: f64,
    /// Points within `radius` of the query focus.
    pub result: Vec<Item>,
    pub validity: RegionValidity,
}

/// Evaluates a location-based circular region query at `c` with search
/// radius `r`.
pub fn region_with_validity(tree: &RTree, c: Point, r: f64, universe: Rect) -> RegionResponse {
    assert!(r > 0.0, "search radius must be positive");
    let mut span = lbq_obs::span("region-validity");
    let r_sq = r * r;
    // One range query fetches the result and every possible influence
    // object (see module docs for the 3r bound).
    let candidates = tree.window(&Rect::centered(c, 3.0 * r, 3.0 * r));
    span.record("candidates", candidates.len());
    let (mut result, mut outer): (Vec<Item>, Vec<Item>) = (Vec::new(), Vec::new());
    for it in candidates {
        if c.dist_sq(it.point) <= r_sq {
            result.push(it);
        } else {
            outer.push(it);
        }
    }
    // Deterministic result order (ascending distance, then id).
    result.sort_by(|a, b| {
        c.dist_sq(a.point)
            .total_cmp(&c.dist_sq(b.point))
            .then(a.id.cmp(&b.id))
    });

    // Conservative disk: slack before any point crosses the circle.
    let inner_slack = result
        .iter()
        .map(|p| r - c.dist(p.point))
        .fold(f64::INFINITY, f64::min);
    let outer_slack = outer
        .iter()
        .map(|p| c.dist(p.point) - r)
        .fold(f64::INFINITY, f64::min);
    let safe_radius = inner_slack.min(outer_slack).min(2.0 * r).max(0.0);

    // Sound travel bound: the region lies inside D(p*, r) for the
    // closest result point p*, hence inside D(c, d(c,p*) + r). With an
    // empty result nothing bounds the region from inside, so fall back
    // to the conservative disk (candidates beyond it were never
    // inspected).
    let travel_bound = match result.first() {
        Some(p0) => c.dist(p0.point) + r, // result sorted by distance
        None => safe_radius,
    };
    // Outer pruning: a disk D(q, r) can carve the region only if it
    // reaches it, i.e. d(c, q) < r + travel_bound. (All candidates are
    // within the 3r fetch box because travel_bound ≤ 2r.)
    debug_assert!(travel_bound <= 2.0 * r + lbq_geom::EPS_TIGHT);
    let outer_influence: Vec<Item> = outer
        .into_iter()
        .filter(|p| c.dist(p.point) < r + travel_bound)
        .collect();

    if span.is_active() {
        span.record("results", result.len());
        span.record("outer-influence", outer_influence.len());
        span.record("safe-radius", safe_radius);
    }
    RegionResponse {
        query: c,
        radius: r,
        result: result.clone(),
        validity: RegionValidity {
            radius: r,
            inner_influence: result,
            outer_influence,
            safe_radius,
            travel_bound,
            origin: c,
            universe,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_rtree::RTreeConfig;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect()
    }

    fn brute_region(items: &[Item], c: Point, r: f64) -> Vec<u64> {
        let mut v: Vec<u64> = items
            .iter()
            .filter(|i| c.dist(i.point) <= r)
            .map(|i| i.id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn result_matches_brute_force() {
        let items = pseudo_random_items(500, 3);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        for &(cx, cy, r) in &[(0.5, 0.5, 0.1), (0.05, 0.9, 0.2), (0.99, 0.01, 0.05)] {
            let c = Point::new(cx, cy);
            let resp = region_with_validity(&tree, c, r, unit());
            let mut got: Vec<u64> = resp.result.iter().map(|i| i.id).collect();
            got.sort_unstable();
            assert_eq!(got, brute_region(&items, c, r));
        }
    }

    #[test]
    fn region_is_sound_by_sampling() {
        let items = pseudo_random_items(400, 9);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(0.45, 0.55);
        let r = 0.08;
        let resp = region_with_validity(&tree, c, r, unit());
        let baseline = brute_region(&items, c, r);
        assert!(resp.validity.contains(c));
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(
                    c.x - 0.2 + 0.4 * i as f64 / 39.0,
                    c.y - 0.2 + 0.4 * j as f64 / 39.0,
                );
                if resp.validity.contains(p) {
                    assert_eq!(
                        brute_region(&items, p, r),
                        baseline,
                        "result drifted inside region at {p}"
                    );
                }
                if resp.validity.contains_conservative(p) {
                    assert!(
                        resp.validity.contains(p),
                        "conservative disk ⊄ exact region at {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn safe_radius_semantics() {
        // One point just inside, one just outside: slack is the min gap.
        let items = vec![
            Item::new(Point::new(0.50, 0.58), 0), // dist 0.08 from c, inside r=0.1
            Item::new(Point::new(0.50, 0.35), 1), // dist 0.15, outside by 0.05
        ];
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let c = Point::new(0.5, 0.5);
        let resp = region_with_validity(&tree, c, 0.1, unit());
        assert_eq!(resp.result.len(), 1);
        // inner slack 0.02, outer slack 0.05 → safe radius 0.02.
        assert!((resp.validity.safe_radius - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_region_still_guarded() {
        let items = vec![Item::new(Point::new(0.9, 0.9), 0)];
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(0.2, 0.2);
        let resp = region_with_validity(&tree, c, 0.05, unit());
        assert!(resp.result.is_empty());
        // Conservative disk only (no inner points): anywhere inside it
        // the region stays empty.
        let r = resp.validity.safe_radius;
        for k in 0..12 {
            let theta = k as f64 * std::f64::consts::TAU / 12.0;
            let p = c + lbq_geom::Vec2::from_angle(theta) * (r * 0.95);
            if unit().contains(p) {
                assert!(brute_region(&items, p, 0.05).is_empty());
            }
        }
    }

    #[test]
    fn area_grid_reasonable() {
        // Single point at the center, generous radius: the validity
        // region is the lens ∩ complement of nothing = D(p, r) clipped
        // to the universe ∩ ... with only one inner point the region is
        // D(p, r) (stay within r of p). Area ≈ πr².
        let items = vec![Item::new(Point::new(0.5, 0.5), 0)];
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let resp = region_with_validity(&tree, Point::new(0.5, 0.5), 0.1, unit());
        let a = resp.validity.area_grid(200);
        let expect = std::f64::consts::PI * 0.01;
        assert!(
            (a - expect).abs() / expect < 0.05,
            "grid area {a} vs πr² {expect}"
        );
    }

    #[test]
    fn outer_influence_pruned_but_sound() {
        let items = pseudo_random_items(800, 5);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(0.5, 0.5);
        let r = 0.06;
        let resp = region_with_validity(&tree, c, r, unit());
        // Pruning keeps strictly fewer objects than the 3r candidate
        // fetch on dense data...
        let all_candidates = items
            .iter()
            .filter(|i| {
                let d = c.dist(i.point);
                d > r && d < 3.0 * r
            })
            .count();
        assert!(resp.validity.outer_influence.len() <= all_candidates);
        // ...and the check stays exact (verified by the sampling test);
        // here verify no kept outer is a result member.
        for o in &resp.validity.outer_influence {
            assert!(!resp.result.iter().any(|i| i.id == o.id));
        }
    }
}
