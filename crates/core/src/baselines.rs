//! The competing techniques surveyed in the paper's Section 2, built as
//! faithful baselines for the experiments and the client simulator:
//!
//! * **`[SR01]`** Song & Roussopoulos — the server returns `m > k`
//!   neighbors; the client can re-answer the kNN query locally while
//!   `2·dist(q, q′) ≤ dist(m) − dist(k)`.
//! * **`[ZL01]`** Zheng & Lee — the server precomputes the Voronoi
//!   diagram, answers 1-NN queries from it and returns a validity
//!   *time* assuming a maximum client speed (here exposed as the
//!   underlying safe *distance*: the distance from the query to the
//!   nearest Voronoi cell boundary).
//! * **`[TP02]`** time-parameterized queries — the server returns
//!   `⟨R, T, C⟩`: the result, its expiry time under the client's
//!   *current velocity*, and the object swap happening at `T`. Valid
//!   only while the velocity holds.

use lbq_geom::{Point, Rect, Vec2};
use lbq_rtree::{Item, RTree, TpEvent};
use lbq_voronoi::VoronoiDiagram;

// ---------------------------------------------------------------- SR01

/// The client-side cache of the `[SR01]` technique.
#[derive(Debug, Clone)]
pub struct Sr01Cache {
    /// Where the cached answer was computed.
    pub origin: Point,
    /// The k requested.
    pub k: usize,
    /// The `m ≥ k` nearest neighbors of `origin`, ascending by distance.
    pub items: Vec<(Item, f64)>,
}

impl Sr01Cache {
    /// Is the cache still able to answer exactly at `p`?
    /// (`[SR01]` guarantee: `2·dist(origin, p) ≤ dist(m) − dist(k)`.)
    pub fn valid_at(&self, p: Point) -> bool {
        if self.items.len() < self.k || self.items.len() < 2 {
            return false;
        }
        let dist_k = self.items[self.k - 1].1;
        // lbq-check: allow(no-unwrap-core) — len ≥ 2 checked above
        let dist_m = self.items.last().expect("non-empty").1;
        2.0 * self.origin.dist(p) <= dist_m - dist_k
    }

    /// Recomputes the kNN at `p` from the cached `m` objects (exact when
    /// [`Sr01Cache::valid_at`] holds).
    pub fn knn_at(&self, p: Point) -> Vec<Item> {
        let mut v: Vec<(f64, Item)> = self
            .items
            .iter()
            .map(|(it, _)| (p.dist_sq(it.point), *it))
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        v.into_iter().take(self.k).map(|(_, it)| it).collect()
    }

    /// Objects shipped over the network for this cache.
    pub fn payload(&self) -> usize {
        self.items.len()
    }
}

/// Executes an `[SR01]` server query: `m` neighbors for a kNN request.
pub fn sr01_query(tree: &RTree, q: Point, k: usize, m: usize) -> Sr01Cache {
    assert!(m >= k && k >= 1);
    Sr01Cache {
        origin: q,
        k,
        items: tree.knn(q, m),
    }
}

// ---------------------------------------------------------------- ZL01

/// The `[ZL01]` server: a precomputed Voronoi diagram (plus the R-tree it
/// would use for point location — here the diagram's own locator).
#[derive(Debug)]
pub struct Zl01Server {
    diagram: VoronoiDiagram,
    items: Vec<Item>,
}

/// Response of a `[ZL01]` 1-NN query.
#[derive(Debug, Clone, Copy)]
pub struct Zl01Response {
    /// The nearest neighbor.
    pub nn: Item,
    /// Distance the client can travel (in any direction) with the
    /// answer guaranteed — the distance to the Voronoi cell boundary.
    /// The original paper reports this as a *time* `T = dist / v_max`.
    pub safe_distance: f64,
}

impl Zl01Server {
    /// Precomputes the diagram — the expensive step the location-based
    /// approach avoids (and which must be redone on updates; see the
    /// paper's Section 3 for the full argument).
    pub fn build(items: &[Item], universe: Rect) -> Self {
        let sites: Vec<Point> = items.iter().map(|i| i.point).collect();
        Zl01Server {
            diagram: VoronoiDiagram::build(&sites, universe),
            items: items.to_vec(),
        }
    }

    /// Answers a 1-NN query with its safe travel distance.
    pub fn query(&self, q: Point) -> Option<Zl01Response> {
        let idx = self.diagram.nearest_site(q)?;
        let safe = self.diagram.escape_distance(idx, q).unwrap_or(0.0);
        Some(Zl01Response {
            nn: self.items[idx],
            safe_distance: safe,
        })
    }

    /// The precomputed diagram (for inspection/tests).
    pub fn diagram(&self) -> &VoronoiDiagram {
        &self.diagram
    }
}

// ---------------------------------------------------------------- TP02

/// Response of a time-parameterized kNN query `[TP02]`: `⟨R, T, C⟩`.
#[derive(Debug, Clone)]
pub struct TpResponse {
    /// The current result.
    pub result: Vec<Item>,
    /// The first result-changing event along the stated velocity, or
    /// `None` if the result holds for the whole horizon.
    pub expiry: Option<TpEvent>,
}

/// Executes a TP kNN query for a client moving from `q` with unit
/// direction `dir`, looking ahead `horizon` distance units.
pub fn tp_query(tree: &RTree, q: Point, dir: Vec2, k: usize, horizon: f64) -> TpResponse {
    let result: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
    let expiry = if result.is_empty() {
        None
    } else {
        tree.tp_knn(q, dir, horizon, &result)
    };
    TpResponse { result, expiry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbq_rtree::RTreeConfig;

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect()
    }

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn sr01_guarantee_holds() {
        let items = pseudo_random_items(500, 4);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let q = Point::new(0.5, 0.5);
        let cache = sr01_query(&tree, q, 2, 8);
        assert_eq!(cache.payload(), 8);
        // Probe positions; wherever the cache claims validity its local
        // answer must equal the true kNN.
        for i in 0..40 {
            let theta = i as f64 * std::f64::consts::TAU / 40.0;
            for r in [0.001, 0.005, 0.02, 0.1] {
                let p = q + Vec2::from_angle(theta) * r;
                if cache.valid_at(p) {
                    let local: Vec<u64> = cache.knn_at(p).into_iter().map(|i| i.id).collect();
                    let truth: Vec<u64> = tree.knn(p, 2).into_iter().map(|(i, _)| i.id).collect();
                    assert_eq!(local, truth, "at {p}");
                }
            }
        }
        // Validity shrinks to nothing far away.
        assert!(!cache.valid_at(Point::new(0.0, 0.0)));
    }

    #[test]
    fn sr01_m_equals_k_is_useless() {
        let items = pseudo_random_items(100, 9);
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let cache = sr01_query(&tree, Point::new(0.4, 0.4), 3, 3);
        // dist(m) − dist(k) = 0 ⇒ only the exact origin qualifies.
        assert!(!cache.valid_at(Point::new(0.41, 0.4)));
    }

    #[test]
    fn zl01_agrees_with_rtree_nn() {
        let items = pseudo_random_items(120, 17);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let server = Zl01Server::build(&items, unit());
        for &(x, y) in &[(0.1, 0.2), (0.5, 0.5), (0.9, 0.8), (0.02, 0.97)] {
            let q = Point::new(x, y);
            let resp = server.query(q).unwrap();
            let truth = tree.nn(q).unwrap().0;
            assert_eq!(resp.nn.id, truth.id, "at {q}");
            // Safe distance really is safe.
            if resp.safe_distance > 1e-9 {
                for k in 0..8 {
                    let theta = k as f64 * std::f64::consts::TAU / 8.0;
                    let p = q + Vec2::from_angle(theta) * (resp.safe_distance * 0.95);
                    if unit().contains(p) {
                        assert_eq!(tree.nn(p).unwrap().0.id, resp.nn.id);
                    }
                }
            }
        }
    }

    #[test]
    fn tp_expiry_is_exact() {
        let items = pseudo_random_items(200, 33);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let q = Point::new(0.3, 0.7);
        let dir = Vec2::new(1.0, 0.0);
        let resp = tp_query(&tree, q, dir, 1, 2.0);
        let ev = resp.expiry.expect("something ahead");
        // Just before the expiry the result holds; just after it
        // changed.
        let before = q + dir * (ev.time * 0.999);
        let after = q + dir * (ev.time * 1.001);
        assert_eq!(tree.nn(before).unwrap().0.id, resp.result[0].id);
        assert_eq!(tree.nn(after).unwrap().0.id, ev.object.id);
    }
}
