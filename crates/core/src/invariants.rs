//! Runtime invariant layer for the query machinery.
//!
//! Every validity structure the server ships to a client carries
//! mathematical obligations (the soundness side of the paper's
//! Lemma 3.1 for kNN, the inner-rectangle/Minkowski construction of
//! Section 4 for windows). This module states those obligations as
//! executable validators:
//!
//! * [`NnValidity::validate`] — the region polygon is consistent with
//!   the influence pairs that supposedly generate it;
//! * [`WindowValidity::validate`] — the conservative rectangle nests
//!   inside the exact region and avoids every Minkowski hole;
//! * [`lbq_rtree::RTree::validate`] and
//!   `lbq_geom::ConvexPolygon::validate` — the structural counterparts
//!   in the substrate crates.
//!
//! The query paths call the `debug_validate_*` wrappers, which run the
//! full check in debug builds and compile to nothing in release builds
//! — queries stay O(answer), but every test run exercises the
//! validators on every region ever built. Corruption tests in each
//! crate verify the validators actually fire (a validator that cannot
//! fail verifies nothing).

use crate::nn::NnValidity;
use crate::window::WindowValidity;
use lbq_geom::Point;

/// Relative tolerance used by the validators, scaled to the size of the
/// geometry being checked. Derived from [`lbq_geom::EPS`] so the whole
/// workspace agrees on what "numerically equal" means.
fn scaled_eps(extent: f64) -> f64 {
    lbq_geom::EPS * extent.abs().max(1.0)
}

impl NnValidity {
    /// Checks the region against the influence pairs that generated it.
    ///
    /// Verified obligations, for a query focus `q`:
    ///
    /// 1. the polygon is structurally valid (CCW, convex, no duplicate
    ///    vertices) — delegated to `ConvexPolygon::validate`;
    /// 2. every polygon vertex lies inside the data universe;
    /// 3. `q` itself lies inside the polygon (a region that excludes
    ///    its own query is useless and wrong);
    /// 4. every polygon vertex lies on the *inner* side of every
    ///    influence pair's bisector — the polygon really is (a subset
    ///    of) the intersection the pairs describe;
    /// 5. every pair's bisector touches the region boundary: some
    ///    vertex lies on it (within tolerance). A pair whose bisector
    ///    misses the region entirely is redundant wire weight and
    ///    indicates a bookkeeping bug in the vertex-confirmation loop.
    ///
    /// The empty polygon (a degenerate tie: `q` equidistant from an
    /// inner and an outer object) is legal and skips the geometric
    /// checks.
    pub fn validate(&self, q: Point) -> Result<(), String> {
        if self.polygon.is_empty() {
            return Ok(());
        }
        self.polygon.validate()?;
        let eps = scaled_eps(self.universe.width().max(self.universe.height()));
        for (i, v) in self.polygon.vertices().iter().enumerate() {
            if !self.universe.contains_eps(*v, eps) {
                return Err(format!("vertex {i} {v} escapes the universe"));
            }
        }
        if !self.polygon.contains_eps(q, eps) {
            return Err(format!("region excludes its own query focus {q}"));
        }
        for (i, pair) in self.pairs.iter().enumerate() {
            let h = pair.half_plane();
            let mut touches = false;
            for v in self.polygon.vertices() {
                let d = h.signed_dist(*v);
                if d > eps {
                    return Err(format!(
                        "vertex {v} lies {d} outside the bisector of pair {i} \
                         (inner {}, outer {})",
                        pair.inner.id, pair.outer.id
                    ));
                }
                if d.abs() <= eps {
                    touches = true;
                }
            }
            if !touches {
                return Err(format!(
                    "bisector of pair {i} (inner {}, outer {}) never touches \
                     the region boundary",
                    pair.inner.id, pair.outer.id
                ));
            }
        }
        Ok(())
    }
}

impl WindowValidity {
    /// Checks the window validity structure for a query focus `c`.
    ///
    /// Verified obligations:
    ///
    /// 1. the inner rectangle is well-formed and contains `c`;
    /// 2. the conservative rectangle nests inside the inner rectangle
    ///    and also contains `c`;
    /// 3. the conservative rectangle avoids every Minkowski hole — a
    ///    client trusting the constant-time check must never sit on a
    ///    stale result;
    /// 4. no object is both inner and outer influence.
    pub fn validate(&self, c: Point) -> Result<(), String> {
        let ir = self.inner_rect;
        if !(ir.xmin <= ir.xmax && ir.ymin <= ir.ymax) {
            return Err(format!("inner rectangle {ir:?} is inverted"));
        }
        let eps = scaled_eps(ir.width().max(ir.height()));
        if !ir.contains_eps(c, eps) {
            return Err(format!("inner rectangle {ir:?} excludes the client {c}"));
        }
        let cons = self.conservative;
        if !ir.contains_rect(&cons.inflate(-eps, -eps)) {
            return Err(format!(
                "conservative rectangle {cons:?} is not nested in {ir:?}"
            ));
        }
        if !cons.contains_eps(c, eps) {
            return Err(format!(
                "conservative rectangle {cons:?} excludes the client {c}"
            ));
        }
        let area_eps = eps * ir.width().max(ir.height()).max(1.0);
        for it in &self.outer_influence {
            let hole = lbq_geom::Rect::centered(it.point, self.half.0, self.half.1);
            if hole.overlap_area(&cons) > area_eps {
                return Err(format!(
                    "conservative rectangle overlaps the Minkowski hole of \
                     outer object {}",
                    it.id
                ));
            }
        }
        for it in &self.inner_influence {
            if self.outer_influence.iter().any(|o| o.id == it.id) {
                return Err(format!(
                    "object {} is both inner and outer influence",
                    it.id
                ));
            }
        }
        Ok(())
    }
}

/// Debug-build trap for [`NnValidity::validate`]; compiled out in
/// release builds. Called at the end of the vertex-confirmation loop
/// on the scratch-backed view — the owned copy the validator needs is
/// built only in debug builds, keeping the release hot path
/// allocation-free.
// lbq-check: cold — debug_assertions-only; absent from the release builds the zero-alloc proof measures
#[inline]
pub(crate) fn debug_validate_nn(validity: &crate::nn::NnValidityRef<'_>, q: Point) {
    #[cfg(debug_assertions)]
    if let Err(e) = validity.to_owned().validate(q) {
        // lbq-check: allow(no-unwrap-core) — debug-only invariant trap
        panic!("NN validity invariant violated: {e}");
    }
    let _ = (validity, q);
}

/// Debug-build trap for [`WindowValidity::validate`]; compiled out in
/// release builds. Called when a window validity structure is built.
// lbq-check: cold — debug_assertions-only; absent from the release builds the zero-alloc proof measures
#[inline]
pub(crate) fn debug_validate_window(validity: &WindowValidity, c: Point) {
    #[cfg(debug_assertions)]
    if let Err(e) = validity.validate(c) {
        // lbq-check: allow(no-unwrap-core) — debug-only invariant trap
        panic!("window validity invariant violated: {e}");
    }
    let _ = (validity, c);
}

#[cfg(test)]
mod tests {
    use crate::nn::{retrieve_influence_set, InfluencePair};
    use crate::window::window_with_validity;
    use lbq_geom::{ConvexPolygon, Point, Rect};
    use lbq_rtree::{Item, RTree, RTreeConfig};

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    fn pseudo_random_items(n: usize, seed: u64) -> Vec<Item> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| Item::new(Point::new(next(), next()), i as u64))
            .collect()
    }

    #[test]
    fn real_nn_regions_pass_validation() {
        let tree = RTree::bulk_load(pseudo_random_items(250, 61), RTreeConfig::tiny());
        for &(x, y) in &[(0.5, 0.5), (0.05, 0.93), (0.99, 0.01)] {
            let q = Point::new(x, y);
            for k in [1usize, 5] {
                let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
                let (v, _) = retrieve_influence_set(&tree, q, &inner, unit());
                v.validate(q).unwrap();
            }
        }
    }

    #[test]
    fn corrupt_nn_polygon_is_caught() {
        let tree = RTree::bulk_load(pseudo_random_items(250, 61), RTreeConfig::tiny());
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (mut v, _) = retrieve_influence_set(&tree, q, &inner, unit());
        // Reversing the vertex ring turns the polygon CW — exactly what
        // a sign error in the clipper would produce. `try_new` already
        // refuses to build it...
        let mut verts = v.polygon.vertices().to_vec();
        verts.reverse();
        assert!(ConvexPolygon::try_new(verts).is_err());
        // ...so corrupt the structure a validator can still receive: a
        // well-formed polygon translated clean out of the universe.
        let shifted: Vec<Point> = v
            .polygon
            .vertices()
            .iter()
            .map(|p| Point::new(p.x + 5.0, p.y + 5.0))
            .collect();
        v.polygon = ConvexPolygon::try_new(shifted).unwrap();
        assert!(v.validate(q).is_err());
    }

    #[test]
    fn corrupt_nn_pair_is_caught() {
        let tree = RTree::bulk_load(pseudo_random_items(250, 61), RTreeConfig::tiny());
        let q = Point::new(0.4, 0.6);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (mut v, _) = retrieve_influence_set(&tree, q, &inner, unit());
        assert!(!v.pairs.is_empty());
        // A pair whose bisector slices through the region interior:
        // swap inner and outer — the kept side flips.
        let p = v.pairs[0];
        v.pairs[0] = InfluencePair {
            inner: p.outer,
            outer: p.inner,
        };
        assert!(v.validate(q).is_err());
        // A pair whose bisector misses the region entirely (far-away
        // phantom object) is also rejected.
        let (mut v, _) = retrieve_influence_set(&tree, q, &inner, unit());
        v.pairs.push(InfluencePair {
            inner: inner[0],
            outer: Item::new(Point::new(100.0, 100.0), 9999),
        });
        assert!(v.validate(q).is_err());
    }

    #[test]
    fn corrupt_nn_query_outside_region_is_caught() {
        let tree = RTree::bulk_load(pseudo_random_items(250, 61), RTreeConfig::tiny());
        let q = Point::new(0.5, 0.5);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (v, _) = retrieve_influence_set(&tree, q, &inner, unit());
        // Validating against a focus far outside the cell must fail.
        assert!(v.validate(Point::new(0.01, 0.99)).is_err());
    }

    #[test]
    fn real_window_regions_pass_validation() {
        let tree = RTree::bulk_load(pseudo_random_items(500, 13), RTreeConfig::tiny());
        for &(x, y) in &[(0.5, 0.5), (0.2, 0.8), (0.97, 0.5)] {
            let c = Point::new(x, y);
            let resp = window_with_validity(&tree, c, 0.06, 0.05, unit());
            resp.validity.validate(c).unwrap();
        }
    }

    #[test]
    fn corrupt_window_conservative_is_caught() {
        let tree = RTree::bulk_load(pseudo_random_items(500, 13), RTreeConfig::tiny());
        let c = Point::new(0.5, 0.5);
        let resp = window_with_validity(&tree, c, 0.06, 0.05, unit());
        let mut v = resp.validity;
        // Inflate the conservative rectangle beyond the inner rectangle:
        // the constant-time client check would accept stale positions.
        v.conservative = v.inner_rect.inflate(0.1, 0.1);
        assert!(v.validate(c).is_err());
    }

    #[test]
    fn corrupt_window_hole_overlap_is_caught() {
        // Hand-build a geometry where the conservative rect covers a
        // hole: inner [0,1]², hole centered at (0.5, 0.5).
        let tree = RTree::bulk_load(
            vec![
                Item::new(Point::new(0.5, 0.2), 0),
                Item::new(Point::new(0.62, 0.2), 1),
            ],
            RTreeConfig::tiny(),
        );
        let c = Point::new(0.5, 0.2);
        let resp = window_with_validity(&tree, c, 0.1, 0.1, unit());
        let mut v = resp.validity;
        assert_eq!(v.outer_influence.len(), 1);
        // Un-cut the conservative rectangle (pretend the hole was never
        // excised).
        v.conservative = v.inner_rect;
        assert!(v.validate(c).is_err());
    }
}
