//! Property tests for the paper's central soundness claims:
//!
//! * anywhere inside a kNN validity region, the kNN result set is
//!   byte-identical to the one computed at the query point (the region
//!   is the order-k Voronoi cell — Observation, §3.1);
//! * anywhere inside a window validity region, the window result is
//!   identical; the conservative rectangle is contained in the exact
//!   region;
//! * for k = 1 the region *equals* the Voronoi cell of the nearest
//!   neighbor (checked against the independent Delaunay-based
//!   construction in `lbq-voronoi`).

use lbq_core::{retrieve_influence_set, window_with_validity};
use lbq_geom::{Point, Rect};
use lbq_rtree::{Item, RTree, RTreeConfig};
use lbq_voronoi::VoronoiDiagram;
use proptest::prelude::*;

fn items_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), min..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (x, y))| Item::new(Point::new(x, y), i as u64))
            .collect()
    })
}

fn unit() -> Rect {
    Rect::new(0.0, 0.0, 1.0, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn nn_region_equals_voronoi_cell(
        items in items_strategy(3, 60),
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
    ) {
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let q = Point::new(qx, qy);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());

        // Independent ground truth: Delaunay-dual Voronoi cell.
        let sites: Vec<Point> = items.iter().map(|i| i.point).collect();
        let vd = VoronoiDiagram::build(&sites, unit());
        let cell = vd.cell(inner[0].id as usize);
        prop_assert!(
            (validity.area() - cell.area()).abs() <= 1e-7 * cell.area().max(1e-12),
            "region {} vs voronoi cell {}", validity.area(), cell.area()
        );
    }

    #[test]
    fn knn_region_is_sound(
        items in items_strategy(8, 120),
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
        k in 1usize..6,
        probes in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 30),
    ) {
        prop_assume!(items.len() > k);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let q = Point::new(qx, qy);
        let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
        let inner_ids: std::collections::BTreeSet<u64> = inner.iter().map(|i| i.id).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
        prop_assert!(validity.contains(q) || validity.area() == 0.0);
        for (px, py) in probes {
            let p = Point::new(px, py);
            if validity.contains(p) {
                let set: std::collections::BTreeSet<u64> =
                    tree.knn(p, k).into_iter().map(|(i, _)| i.id).collect();
                prop_assert_eq!(&set, &inner_ids, "at {} (q={})", p, q);
            }
        }
    }

    #[test]
    fn window_region_is_sound_and_conservative_nested(
        items in items_strategy(5, 150),
        qx in 0.1..0.9f64,
        qy in 0.1..0.9f64,
        hx in 0.01..0.15f64,
        hy in 0.01..0.15f64,
        probes in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 30),
    ) {
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let c = Point::new(qx, qy);
        let resp = window_with_validity(&tree, c, hx, hy, unit());
        let baseline: std::collections::BTreeSet<u64> =
            resp.result.iter().map(|i| i.id).collect();
        prop_assert!(resp.validity.contains(c));
        for (px, py) in probes {
            let p = Point::new(px, py);
            if resp.validity.contains_conservative(p) {
                prop_assert!(resp.validity.contains(p), "conservative ⊄ exact at {}", p);
            }
            if resp.validity.contains(p) {
                let w = Rect::centered(p, hx, hy);
                let set: std::collections::BTreeSet<u64> = items
                    .iter()
                    .filter(|i| w.contains(i.point))
                    .map(|i| i.id)
                    .collect();
                prop_assert_eq!(&set, &baseline, "at {} (c={})", p, c);
            }
        }
        // Area consistency: conservative ≤ exact ≤ inner rect.
        let exact = resp.validity.area();
        prop_assert!(resp.validity.conservative.area() <= exact + 1e-9);
        prop_assert!(exact <= resp.validity.inner_rect.area() + 1e-9);
    }

    #[test]
    fn influence_pairs_are_necessary(
        items in items_strategy(5, 50),
        qx in 0.0..1.0f64,
        qy in 0.0..1.0f64,
    ) {
        // Each influence pair's half-plane must cut the region built
        // from the remaining pairs (minimality, Lemma 3.1 part ii).
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let q = Point::new(qx, qy);
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
        prop_assume!(validity.area() > 1e-12);
        let planes: Vec<_> = validity.pairs.iter().map(|p| p.half_plane()).collect();
        for skip in 0..planes.len() {
            let rest: Vec<_> = planes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, h)| *h)
                .collect();
            let poly = lbq_geom::ConvexPolygon::from_rect(&unit()).clip_all(rest.iter());
            // Removing a constraint can only grow the region.
            prop_assert!(
                poly.area() > validity.area() - 1e-12,
                "pair {} did not constrain the region", skip
            );
            // "No false hits" (Lemma 3.1 ii): every pair's bisector
            // touches the region boundary — it contributes an edge,
            // possibly a degenerate one through a vertex.
            let touch = validity
                .polygon
                .vertices()
                .iter()
                .map(|&v| planes[skip].signed_dist(v).abs())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                touch <= 1e-7,
                "pair {}'s bisector is {} away from the region", skip, touch
            );
        }
    }
}
