//! Randomized property tests for the paper's central soundness claims:
//!
//! * anywhere inside a kNN validity region, the kNN result set is
//!   byte-identical to the one computed at the query point (the region
//!   is the order-k Voronoi cell — Observation, §3.1);
//! * anywhere inside a window validity region, the window result is
//!   identical; the conservative rectangle is contained in the exact
//!   region;
//! * for k = 1 the region *equals* the Voronoi cell of the nearest
//!   neighbor (checked against the independent Delaunay-based
//!   construction in `lbq-voronoi`).
//!
//! Formerly `proptest`; now seeded [`lbq_rng`] randomness (no crates.io
//! access in the build environment). The `heavy-tests` feature
//! multiplies case counts.

use lbq_core::{retrieve_influence_set, window_with_validity};
use lbq_geom::{Point, Rect};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, RTree, RTreeConfig};
use lbq_voronoi::VoronoiDiagram;

/// Case-count knob: 8× under `--features heavy-tests`.
fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

fn rand_items(rng: &mut Xoshiro256ss, min: usize, max: usize) -> Vec<Item> {
    let n = rng.gen_range(min..max);
    (0..n)
        .map(|i| {
            Item::new(
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                i as u64,
            )
        })
        .collect()
}

fn rand_probes(rng: &mut Xoshiro256ss, n: usize) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect()
}

fn unit() -> Rect {
    Rect::new(0.0, 0.0, 1.0, 1.0)
}

#[test]
fn nn_region_equals_voronoi_cell() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xF00);
    for case in 0..cases(40) {
        let items = rand_items(&mut rng, 3, 60);
        let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());

        // Independent ground truth: Delaunay-dual Voronoi cell.
        let sites: Vec<Point> = items.iter().map(|i| i.point).collect();
        let vd = VoronoiDiagram::build(&sites, unit());
        let cell = vd.cell(usize::try_from(inner[0].id).expect("small test id"));
        assert!(
            (validity.area() - cell.area()).abs() <= 1e-7 * cell.area().max(1e-12),
            "case {case}: region {} vs voronoi cell {}",
            validity.area(),
            cell.area()
        );
    }
}

#[test]
fn knn_region_is_sound() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x50D);
    let mut tested = 0;
    while tested < cases(40) {
        let items = rand_items(&mut rng, 8, 120);
        let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        let k = rng.gen_range(1..6usize);
        let probes = rand_probes(&mut rng, 30);
        if items.len() <= k {
            continue;
        }
        tested += 1;
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
        let inner_ids: std::collections::BTreeSet<u64> = inner.iter().map(|i| i.id).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
        // lbq-check: allow(float-eq) — degenerate regions report an exact 0.0
        assert!(validity.contains(q) || validity.area() == 0.0);
        for p in probes {
            if validity.contains(p) {
                let set: std::collections::BTreeSet<u64> =
                    tree.knn(p, k).into_iter().map(|(i, _)| i.id).collect();
                assert_eq!(&set, &inner_ids, "at {p} (q={q})");
            }
        }
    }
}

#[test]
fn window_region_is_sound_and_conservative_nested() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x31D0);
    for case in 0..cases(40) {
        let items = rand_items(&mut rng, 5, 150);
        let c = Point::new(rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9));
        let hx = rng.gen_range(0.01..0.15);
        let hy = rng.gen_range(0.01..0.15);
        let probes = rand_probes(&mut rng, 30);
        let tree = RTree::bulk_load(items.clone(), RTreeConfig::tiny());
        let resp = window_with_validity(&tree, c, hx, hy, unit());
        let baseline: std::collections::BTreeSet<u64> = resp.result.iter().map(|i| i.id).collect();
        assert!(resp.validity.contains(c), "case {case}");
        for p in probes {
            if resp.validity.contains_conservative(p) {
                assert!(resp.validity.contains(p), "conservative ⊄ exact at {p}");
            }
            if resp.validity.contains(p) {
                let w = Rect::centered(p, hx, hy);
                let set: std::collections::BTreeSet<u64> = items
                    .iter()
                    .filter(|i| w.contains(i.point))
                    .map(|i| i.id)
                    .collect();
                assert_eq!(&set, &baseline, "at {p} (c={c})");
            }
        }
        // Area consistency: conservative ≤ exact ≤ inner rect.
        let exact = resp.validity.area();
        assert!(
            resp.validity.conservative.area() <= exact + 1e-9,
            "case {case}"
        );
        assert!(
            exact <= resp.validity.inner_rect.area() + 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn influence_pairs_are_necessary() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x4EC);
    let mut tested = 0;
    while tested < cases(40) {
        let items = rand_items(&mut rng, 5, 50);
        let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        // Each influence pair's half-plane must cut the region built
        // from the remaining pairs (minimality, Lemma 3.1 part ii).
        let tree = RTree::bulk_load(items, RTreeConfig::tiny());
        let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
        let (validity, _) = retrieve_influence_set(&tree, q, &inner, unit());
        if validity.area() <= 1e-12 {
            continue;
        }
        tested += 1;
        let planes: Vec<_> = validity.pairs.iter().map(|p| p.half_plane()).collect();
        for skip in 0..planes.len() {
            let rest: Vec<_> = planes
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, h)| *h)
                .collect();
            let poly = lbq_geom::ConvexPolygon::from_rect(&unit()).clip_all(rest.iter());
            // Removing a constraint can only grow the region.
            assert!(
                poly.area() > validity.area() - 1e-12,
                "pair {skip} did not constrain the region"
            );
            // "No false hits" (Lemma 3.1 ii): every pair's bisector
            // touches the region boundary — it contributes an edge,
            // possibly a degenerate one through a vertex.
            let touch = validity
                .polygon
                .vertices()
                .iter()
                .map(|&v| planes[skip].signed_dist(v).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(
                touch <= 1e-7,
                "pair {skip}'s bisector is {touch} away from the region"
            );
        }
    }
}
