//! Equivalence suite for the scratch-backed validity pipeline: a
//! [`QueryScratch`] threaded through the full kNN → TPNN-chain →
//! region construction must yield **bit-identical** responses to the
//! plain allocating entry points, including when one scratch is reused
//! across a long mixed stream of queries (the `lbq-serve` worker
//! pattern).

use lbq_core::{retrieve_influence_set, retrieve_influence_set_in, LbqServer, NnValidity};
use lbq_geom::{Point, Rect};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::{Item, QueryScratch, RTree, RTreeConfig};

fn rand_items(rng: &mut Xoshiro256ss, n: usize) -> Vec<Item> {
    (0..n)
        .map(|i| {
            Item::new(
                Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
                i as u64,
            )
        })
        .collect()
}

fn unit() -> Rect {
    Rect::new(0.0, 0.0, 1.0, 1.0)
}

fn assert_validity_identical(plain: &NnValidity, reused: &NnValidity, ctx: &str) {
    assert_eq!(plain.pairs.len(), reused.pairs.len(), "{ctx}: pair count");
    for (i, (p, s)) in plain.pairs.iter().zip(&reused.pairs).enumerate() {
        assert_eq!(p.inner.id, s.inner.id, "{ctx}: pair {i} inner");
        assert_eq!(p.outer.id, s.outer.id, "{ctx}: pair {i} outer");
    }
    let pv = plain.polygon.vertices();
    let sv = reused.polygon.vertices();
    assert_eq!(pv.len(), sv.len(), "{ctx}: vertex count");
    for (i, (p, s)) in pv.iter().zip(sv).enumerate() {
        assert_eq!(
            (p.x.to_bits(), p.y.to_bits()),
            (s.x.to_bits(), s.y.to_bits()),
            "{ctx}: vertex {i} bits ({p:?} vs {s:?})"
        );
    }
}

#[test]
fn retrieve_influence_set_in_bit_identical() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x1F5E7);
    for config in [RTreeConfig::tiny(), RTreeConfig::paper()] {
        let tree = RTree::bulk_load(rand_items(&mut rng, 700), config);
        let mut scratch = QueryScratch::new();
        for case in 0..50 {
            let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let k = rng.gen_range(1..5usize);
            let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(i, _)| i).collect();
            let (plain, plain_tpnn) = retrieve_influence_set(&tree, q, &inner, unit());
            let (reused, reused_tpnn) =
                retrieve_influence_set_in(&tree, q, &inner, unit(), &mut scratch);
            let reused = reused.to_owned();
            assert_eq!(plain_tpnn, reused_tpnn, "case {case}: TPNN query count");
            assert_validity_identical(&plain, &reused, &format!("case {case}"));
        }
    }
}

#[test]
fn server_knn_and_window_validity_bit_identical_across_mixed_stream() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x5EE0E);
    let server = LbqServer::new(
        RTree::bulk_load(rand_items(&mut rng, 900), RTreeConfig::tiny()),
        unit(),
    );
    // One scratch for the whole stream — the serve-worker pattern.
    let mut scratch = QueryScratch::new();
    for case in 0..300 {
        let q = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        if case % 2 == 0 {
            let k = rng.gen_range(1..6usize);
            let plain = server.knn_with_validity(q, k);
            let reused = server.knn_with_validity_in(q, k, &mut scratch);
            assert_eq!(
                plain.result.iter().map(|i| i.id).collect::<Vec<_>>(),
                reused.result.iter().map(|i| i.id).collect::<Vec<_>>(),
                "case {case}: result set"
            );
            assert_eq!(plain.tpnn_queries, reused.tpnn_queries, "case {case}");
            assert_validity_identical(
                &plain.validity,
                &reused.validity,
                &format!("case {case} knn"),
            );
        } else {
            let (hx, hy) = (rng.gen_range(0.01..0.2), rng.gen_range(0.01..0.2));
            let plain = server.window_with_validity(q, hx, hy);
            let reused = server.window_with_validity_in(q, hx, hy, &mut scratch);
            assert_eq!(
                plain.result.iter().map(|i| i.id).collect::<Vec<_>>(),
                reused.result.iter().map(|i| i.id).collect::<Vec<_>>(),
                "case {case}: window result"
            );
            let (pv, sv) = (&plain.validity, &reused.validity);
            assert_eq!(pv.inner_rect, sv.inner_rect, "case {case}: inner rect");
            assert_eq!(
                pv.conservative, sv.conservative,
                "case {case}: conservative"
            );
            assert_eq!(
                pv.inner_influence.iter().map(|i| i.id).collect::<Vec<_>>(),
                sv.inner_influence.iter().map(|i| i.id).collect::<Vec<_>>(),
                "case {case}: inner influence"
            );
            assert_eq!(
                pv.outer_influence.iter().map(|i| i.id).collect::<Vec<_>>(),
                sv.outer_influence.iter().map(|i| i.id).collect::<Vec<_>>(),
                "case {case}: outer influence"
            );
        }
    }
}
