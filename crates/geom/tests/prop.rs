//! Randomized property-style tests for the geometry kernel.
//!
//! Formerly written with `proptest`; the build environment has no
//! crates.io access, so the same properties are now exercised with the
//! vendored, seeded [`lbq_rng`] generator. Every run is deterministic;
//! enable the `heavy-tests` feature to multiply the case counts.

use lbq_geom::{
    rect_difference_area, rect_union_area, ConvexPolygon, HalfPlane, Point, Rect, Vec2,
};
use lbq_rng::Xoshiro256ss;

/// Case-count knob: 8× under `--features heavy-tests`.
fn cases(base: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        base * 8
    } else {
        base
    }
}

fn rand_point(rng: &mut Xoshiro256ss, range: f64) -> Point {
    Point::new(rng.gen_range(-range..range), rng.gen_range(-range..range))
}

fn rand_rect(rng: &mut Xoshiro256ss, range: f64) -> Rect {
    let c = rand_point(rng, range);
    Rect::centered(c, rng.gen_range(0.01..range), rng.gen_range(0.01..range))
}

#[test]
fn bisector_agrees_with_distance() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xB15E);
    let mut tested = 0;
    while tested < cases(256) {
        let keep = rand_point(&mut rng, 100.0);
        let other = rand_point(&mut rng, 100.0);
        let probe = rand_point(&mut rng, 100.0);
        if keep.dist(other) <= 1e-6 {
            continue;
        }
        let dk = probe.dist(keep);
        let do_ = probe.dist(other);
        // Skip near-ties where float rounding decides arbitrarily.
        if (dk - do_).abs() <= 1e-7 {
            continue;
        }
        let h = HalfPlane::bisector(keep, other);
        assert_eq!(
            h.contains(probe),
            dk < do_,
            "keep {keep} other {other} probe {probe}"
        );
        tested += 1;
    }
}

#[test]
fn clip_area_never_grows() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xC11F);
    for case in 0..cases(256) {
        let rect = rand_rect(&mut rng, 50.0);
        let mut poly = ConvexPolygon::from_rect(&rect);
        let mut prev = poly.area();
        let n_planes = rng.gen_range(1..8usize);
        for _ in 0..n_planes {
            let keep = rand_point(&mut rng, 50.0);
            let other = rand_point(&mut rng, 50.0);
            if keep.dist(other) < 1e-6 {
                continue;
            }
            poly = poly.clip(&HalfPlane::bisector(keep, other));
            let a = poly.area();
            assert!(
                a <= prev + 1e-9 * prev.max(1.0),
                "case {case}: {prev} -> {a}"
            );
            assert!(poly.is_convex_ccw(), "case {case}");
            prev = a;
        }
    }
}

#[test]
fn clipped_polygon_points_satisfy_all_planes() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x9A7E);
    for case in 0..cases(256) {
        let rect = rand_rect(&mut rng, 50.0);
        let n_pairs = rng.gen_range(1..6usize);
        let planes: Vec<HalfPlane> = (0..n_pairs)
            .filter_map(|_| {
                let k = rand_point(&mut rng, 50.0);
                let o = rand_point(&mut rng, 50.0);
                (k.dist(o) > 1e-6).then(|| HalfPlane::bisector(k, o))
            })
            .collect();
        let poly = ConvexPolygon::from_rect(&rect).clip_all(planes.iter());
        if poly.is_empty() {
            continue;
        }
        // Every vertex and the centroid satisfy every clip plane.
        let mut probes = poly.vertices().to_vec();
        probes.push(poly.vertex_centroid().expect("non-empty polygon"));
        for p in probes {
            assert!(
                rect.contains_eps(p, 1e-6),
                "case {case}: {p} outside base rect"
            );
            for h in &planes {
                assert!(h.contains_eps(p, 1e-6), "case {case}: {p} violates plane");
            }
        }
    }
}

#[test]
fn union_area_bounds() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x0A1EA);
    for case in 0..cases(256) {
        let n = rng.gen_range(1..12usize);
        let rects: Vec<Rect> = (0..n).map(|_| rand_rect(&mut rng, 30.0)).collect();
        let union = rect_union_area(&rects);
        let max_single = rects.iter().map(|r| r.area()).fold(0.0, f64::max);
        let sum: f64 = rects.iter().map(|r| r.area()).sum();
        assert!(union >= max_single - 1e-9 * max_single, "case {case}");
        assert!(union <= sum + 1e-9 * sum, "case {case}");
        // Union fits in the bounding box of all rects.
        let mut bb = rects[0];
        for r in &rects[1..] {
            bb.expand_to_rect(r);
        }
        assert!(union <= bb.area() + 1e-9 * bb.area(), "case {case}");
    }
}

#[test]
fn difference_complements_union() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xD1FF);
    for case in 0..cases(256) {
        let base = rand_rect(&mut rng, 30.0);
        let n = rng.gen_range(0..8usize);
        let holes: Vec<Rect> = (0..n).map(|_| rand_rect(&mut rng, 30.0)).collect();
        let diff = rect_difference_area(&base, &holes);
        let clipped: Vec<Rect> = holes.iter().filter_map(|h| base.intersection(h)).collect();
        let covered = rect_union_area(&clipped);
        assert!(
            (diff + covered - base.area()).abs() <= 1e-6 * base.area().max(1.0),
            "case {case}: diff {diff} covered {covered} base {}",
            base.area()
        );
        assert!(diff >= 0.0, "case {case}");
        assert!(diff <= base.area() + 1e-9, "case {case}");
    }
}

#[test]
fn mindist_is_reachable() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x317D);
    for case in 0..cases(256) {
        let r = rand_rect(&mut rng, 40.0);
        let p = rand_point(&mut rng, 60.0);
        // mindist equals the distance to the clamped point, and no corner
        // is closer than mindist.
        let md = r.mindist(p);
        assert!(
            (md - r.clamp_point(p).dist(p)).abs() <= 1e-9 * md.max(1.0),
            "case {case}"
        );
        for c in r.corners() {
            assert!(c.dist(p) >= md - 1e-9 * md.max(1.0), "case {case}");
        }
        let mx = r.maxdist(p);
        assert!(mx >= md, "case {case}");
        // maxdist is attained at one of the corners.
        let corner_max = r.corners().iter().map(|c| c.dist(p)).fold(0.0, f64::max);
        assert!((mx - corner_max).abs() <= 1e-9 * mx.max(1.0), "case {case}");
    }
}

#[test]
fn ray_exit_time_is_boundary_crossing() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x4A7);
    let mut tested = 0;
    while tested < cases(256) {
        let keep = rand_point(&mut rng, 50.0);
        let other = rand_point(&mut rng, 50.0);
        let origin = rand_point(&mut rng, 50.0);
        let theta = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        if keep.dist(other) <= 1e-3 {
            continue;
        }
        tested += 1;
        let h = HalfPlane::bisector(keep, other);
        let dir = Vec2::from_angle(theta);
        if let Some(t) = h.ray_exit_time(origin, dir) {
            let hit = origin + dir * t;
            if t > 0.0 {
                // The exit point lies on the boundary (zero signed dist).
                assert!(h.signed_dist(hit).abs() <= 1e-6 * (1.0 + t));
            }
            // Just past the exit, we are strictly outside.
            let past = origin + dir * (t + 1e-3);
            assert!(h.signed_dist(past) > -1e-9);
        } else if h.contains(origin) {
            // Never exits: points along the ray stay inside (sample some).
            for i in 1..=8 {
                let p = origin + dir * (f64::from(i) * 10.0);
                assert!(h.contains_eps(p, 1e-6));
            }
        }
    }
}
