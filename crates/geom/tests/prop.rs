//! Property-based tests for the geometry kernel.

use lbq_geom::{
    rect_difference_area, rect_union_area, ConvexPolygon, HalfPlane, Point, Rect, Vec2,
};
use proptest::prelude::*;

fn point_strategy(range: f64) -> impl Strategy<Value = Point> {
    (-range..range, -range..range).prop_map(|(x, y)| Point::new(x, y))
}

fn rect_strategy(range: f64) -> impl Strategy<Value = Rect> {
    (point_strategy(range), 0.01..range, 0.01..range)
        .prop_map(|(c, hx, hy)| Rect::centered(c, hx, hy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bisector_agrees_with_distance(
        keep in point_strategy(100.0),
        other in point_strategy(100.0),
        probe in point_strategy(100.0),
    ) {
        prop_assume!(keep.dist(other) > 1e-6);
        let h = HalfPlane::bisector(keep, other);
        let dk = probe.dist(keep);
        let do_ = probe.dist(other);
        // Skip near-ties where float rounding decides arbitrarily.
        prop_assume!((dk - do_).abs() > 1e-7);
        prop_assert_eq!(h.contains(probe), dk < do_);
    }

    #[test]
    fn clip_area_never_grows(
        rect in rect_strategy(50.0),
        planes in proptest::collection::vec(
            (point_strategy(50.0), point_strategy(50.0)), 1..8),
    ) {
        let mut poly = ConvexPolygon::from_rect(&rect);
        let mut prev = poly.area();
        for (keep, other) in planes {
            if keep.dist(other) < 1e-6 { continue; }
            poly = poly.clip(&HalfPlane::bisector(keep, other));
            let a = poly.area();
            prop_assert!(a <= prev + 1e-9 * prev.max(1.0));
            prop_assert!(poly.is_convex_ccw());
            prev = a;
        }
    }

    #[test]
    fn clipped_polygon_points_satisfy_all_planes(
        rect in rect_strategy(50.0),
        pairs in proptest::collection::vec(
            (point_strategy(50.0), point_strategy(50.0)), 1..6),
    ) {
        let planes: Vec<HalfPlane> = pairs
            .into_iter()
            .filter(|(k, o)| k.dist(*o) > 1e-6)
            .map(|(k, o)| HalfPlane::bisector(k, o))
            .collect();
        let poly = ConvexPolygon::from_rect(&rect).clip_all(planes.iter());
        if poly.is_empty() { return Ok(()); }
        // Every vertex and the centroid satisfy every clip plane.
        let mut probes = poly.vertices().to_vec();
        probes.push(poly.vertex_centroid().unwrap());
        for p in probes {
            prop_assert!(rect.contains_eps(p, 1e-6));
            for h in &planes {
                prop_assert!(h.contains_eps(p, 1e-6));
            }
        }
    }

    #[test]
    fn union_area_bounds(rects in proptest::collection::vec(rect_strategy(30.0), 1..12)) {
        let union = rect_union_area(&rects);
        let max_single = rects.iter().map(|r| r.area()).fold(0.0, f64::max);
        let sum: f64 = rects.iter().map(|r| r.area()).sum();
        prop_assert!(union >= max_single - 1e-9 * max_single);
        prop_assert!(union <= sum + 1e-9 * sum);
        // Union fits in the bounding box of all rects.
        let mut bb = rects[0];
        for r in &rects[1..] { bb.expand_to_rect(r); }
        prop_assert!(union <= bb.area() + 1e-9 * bb.area());
    }

    #[test]
    fn difference_complements_union(
        base in rect_strategy(30.0),
        holes in proptest::collection::vec(rect_strategy(30.0), 0..8),
    ) {
        let diff = rect_difference_area(&base, &holes);
        let clipped: Vec<Rect> = holes.iter().filter_map(|h| base.intersection(h)).collect();
        let covered = rect_union_area(&clipped);
        prop_assert!((diff + covered - base.area()).abs() <= 1e-6 * base.area().max(1.0));
        prop_assert!(diff >= 0.0);
        prop_assert!(diff <= base.area() + 1e-9);
    }

    #[test]
    fn mindist_is_reachable(r in rect_strategy(40.0), p in point_strategy(60.0)) {
        // mindist equals the distance to the clamped point, and no corner
        // is closer than mindist.
        let md = r.mindist(p);
        prop_assert!((md - r.clamp_point(p).dist(p)).abs() <= 1e-9 * md.max(1.0));
        for c in r.corners() {
            prop_assert!(c.dist(p) >= md - 1e-9 * md.max(1.0));
        }
        let mx = r.maxdist(p);
        prop_assert!(mx >= md);
        // maxdist is attained at one of the corners.
        let corner_max = r.corners().iter().map(|c| c.dist(p)).fold(0.0, f64::max);
        prop_assert!((mx - corner_max).abs() <= 1e-9 * mx.max(1.0));
    }

    #[test]
    fn ray_exit_time_is_boundary_crossing(
        keep in point_strategy(50.0),
        other in point_strategy(50.0),
        origin in point_strategy(50.0),
        theta in 0.0..(2.0 * std::f64::consts::PI),
    ) {
        prop_assume!(keep.dist(other) > 1e-3);
        let h = HalfPlane::bisector(keep, other);
        let dir = Vec2::from_angle(theta);
        if let Some(t) = h.ray_exit_time(origin, dir) {
            let hit = origin + dir * t;
            if t > 0.0 {
                // The exit point lies on the boundary (zero signed dist).
                prop_assert!(h.signed_dist(hit).abs() <= 1e-6 * (1.0 + t));
            }
            // Just past the exit, we are strictly outside.
            let past = origin + dir * (t + 1e-3);
            prop_assert!(h.signed_dist(past) > -1e-9);
        } else {
            // Never exits: points along the ray stay inside (sample some).
            if h.contains(origin) {
                for i in 1..=8 {
                    let p = origin + dir * (i as f64 * 10.0);
                    prop_assert!(h.contains_eps(p, 1e-6));
                }
            }
        }
    }
}
