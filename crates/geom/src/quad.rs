//! Numeric quadrature used by the analytical models of the paper's
//! Section 5.
//!
//! The expected validity-region area integrates `E[dist(θ)²]` over the
//! travel direction θ (eq. 5-3) and, inside that, a probability density
//! over the travel distance ξ (eq. 5-5). Both integrands are smooth, so
//! composite Simpson with a modest panel count is accurate to far below
//! the statistical noise of the 500-query workloads.

/// Composite Simpson integration of `f` over `[a, b]` with `n` panels
/// (`n` is rounded up to the next even number, minimum 2).
pub fn simpson(f: impl Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    assert!(b >= a, "invalid integration bounds");
    if a == b {
        return 0.0;
    }
    let n = n.max(2).next_multiple_of(2);
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + h * i as f64;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

/// Expectation `E[g(X)] = ∫ g(ξ) p(ξ) dξ` computed from the survival
/// function `S(ξ) = P{X > ξ}` via the tail formula, avoiding an explicit
/// derivative:
///
/// `E[g(X)] = g(0) + ∫₀^∞ g'(ξ) S(ξ) dξ`.
///
/// Specialised here to `g(ξ) = ξ²` (the paper needs `E[dist(θ)²]`):
/// `E[X²] = 2 ∫₀^b ξ S(ξ) dξ`, with `b` a cutoff beyond which `S ≈ 0`.
pub fn expect_sq_from_survival(survival: impl Fn(f64) -> f64, cutoff: f64, n: usize) -> f64 {
    2.0 * simpson(|xi| xi * survival(xi).clamp(0.0, 1.0), 0.0, cutoff, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn simpson_polynomials_exact() {
        // Simpson is exact for cubics.
        let f = |x: f64| 3.0 * x * x * x - x + 2.0;
        let exact = |x: f64| 0.75 * x.powi(4) - 0.5 * x * x + 2.0 * x;
        let got = simpson(f, -1.0, 2.5, 2);
        assert!(approx_eq(got, exact(2.5) - exact(-1.0)));
    }

    #[test]
    fn simpson_sine() {
        let got = simpson(f64::sin, 0.0, std::f64::consts::PI, 64);
        // Composite Simpson error bound for n=64: (π^5/180·64⁴) ≈ 1e-7.
        assert!((got - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simpson_degenerate_interval() {
        assert_eq!(simpson(|x| x * x, 3.0, 3.0, 10), 0.0);
    }

    #[test]
    fn simpson_odd_panels_rounded_up() {
        // n = 3 gets rounded to 4; result must still be sane.
        let got = simpson(|x| x, 0.0, 1.0, 3);
        assert!(approx_eq(got, 0.5));
    }

    #[test]
    fn expectation_of_exponential() {
        // X ~ Exp(λ): S(ξ)=e^{−λξ}, E[X²] = 2/λ².
        let lambda = 3.0;
        let got = expect_sq_from_survival(|xi| (-lambda * xi).exp(), 10.0, 2000);
        assert!((got - 2.0 / (lambda * lambda)).abs() < 1e-6);
    }

    #[test]
    fn expectation_of_uniform() {
        // X ~ U[0,1]: S(ξ) = 1−ξ on [0,1], E[X²] = 1/3.
        let got = expect_sq_from_survival(|xi| (1.0 - xi).max(0.0), 1.0, 1000);
        assert!((got - 1.0 / 3.0).abs() < 1e-6);
    }
}
