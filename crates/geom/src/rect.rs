//! Axis-aligned rectangles.
//!
//! Rectangles serve three distinct roles in the workspace and this type
//! covers all of them:
//!
//! * **MBRs** of R-tree entries (`lbq-rtree`);
//! * **query windows**, described by a center (the mobile client's
//!   location) and half-extents;
//! * **Minkowski regions** of window queries: the set of client positions
//!   at which a given data point lies inside the (translating) window —
//!   a rectangle of the window's dimensions centered at the point.

use crate::point::{Point, Vec2};

/// A closed axis-aligned rectangle `[xmin, xmax] × [ymin, ymax]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub xmin: f64,
    pub ymin: f64,
    pub xmax: f64,
    pub ymax: f64,
}

impl Rect {
    /// Creates a rectangle from its extrema. Panics (debug only) if the
    /// bounds are inverted.
    #[inline]
    pub fn new(xmin: f64, ymin: f64, xmax: f64, ymax: f64) -> Self {
        debug_assert!(xmin <= xmax && ymin <= ymax, "inverted rect bounds");
        Rect {
            xmin,
            ymin,
            xmax,
            ymax,
        }
    }

    /// The degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Rectangle from two opposite corners given in any order.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Rectangle with center `c` and *half*-extents `hx`, `hy`.
    ///
    /// This is the natural constructor for query windows ("the client at
    /// `c` sees a `2hx × 2hy` window") and for Minkowski regions.
    #[inline]
    pub fn centered(c: Point, hx: f64, hy: f64) -> Self {
        debug_assert!(hx >= 0.0 && hy >= 0.0);
        Rect::new(c.x - hx, c.y - hy, c.x + hx, c.y + hy)
    }

    /// The smallest rectangle enclosing all points of a non-empty slice.
    /// Returns `None` for an empty slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let first = *points.first()?;
        let mut r = Rect::from_point(first);
        for &p in &points[1..] {
            r.expand_to(p);
        }
        Some(r)
    }

    /// Width along the x-axis.
    #[inline]
    pub fn width(&self) -> f64 {
        self.xmax - self.xmin
    }

    /// Height along the y-axis.
    #[inline]
    pub fn height(&self) -> f64 {
        self.ymax - self.ymin
    }

    /// Area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Perimeter (the R*-tree split heuristic minimizes this "margin").
    #[inline]
    pub fn margin(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.xmin + self.xmax) * 0.5, (self.ymin + self.ymax) * 0.5)
    }

    /// The four corners in counter-clockwise order starting at
    /// `(xmin, ymin)`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.xmin, self.ymin),
            Point::new(self.xmax, self.ymin),
            Point::new(self.xmax, self.ymax),
            Point::new(self.xmin, self.ymax),
        ]
    }

    /// Closed containment test for a point.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.xmin && p.x <= self.xmax && p.y >= self.ymin && p.y <= self.ymax
    }

    /// Containment with a symmetric tolerance band of width `eps`.
    #[inline]
    pub fn contains_eps(&self, p: Point, eps: f64) -> bool {
        p.x >= self.xmin - eps
            && p.x <= self.xmax + eps
            && p.y >= self.ymin - eps
            && p.y <= self.ymax + eps
    }

    /// `true` iff `other` lies entirely inside `self` (closed).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.xmin >= self.xmin
            && other.xmax <= self.xmax
            && other.ymin >= self.ymin
            && other.ymax <= self.ymax
    }

    /// Closed intersection test (touching rectangles intersect).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xmin <= other.xmax
            && other.xmin <= self.xmax
            && self.ymin <= other.ymax
            && other.ymin <= self.ymax
    }

    /// The intersection rectangle, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let xmin = self.xmin.max(other.xmin);
        let ymin = self.ymin.max(other.ymin);
        let xmax = self.xmax.min(other.xmax);
        let ymax = self.ymax.min(other.ymax);
        if xmin <= xmax && ymin <= ymax {
            Some(Rect::new(xmin, ymin, xmax, ymax))
        } else {
            None
        }
    }

    /// Area of `self ∩ other` (zero when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        self.intersection(other).map_or(0.0, |r| r.area())
    }

    /// The smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.xmin.min(other.xmin),
            self.ymin.min(other.ymin),
            self.xmax.max(other.xmax),
            self.ymax.max(other.ymax),
        )
    }

    /// Grows `self` in place to cover `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Point) {
        self.xmin = self.xmin.min(p.x);
        self.ymin = self.ymin.min(p.y);
        self.xmax = self.xmax.max(p.x);
        self.ymax = self.ymax.max(p.y);
    }

    /// Grows `self` in place to cover `other`.
    #[inline]
    pub fn expand_to_rect(&mut self, other: &Rect) {
        self.xmin = self.xmin.min(other.xmin);
        self.ymin = self.ymin.min(other.ymin);
        self.xmax = self.xmax.max(other.xmax);
        self.ymax = self.ymax.max(other.ymax);
    }

    /// The rectangle inflated by `dx` on each x-side and `dy` on each
    /// y-side (negative values shrink; the result is clamped to be valid,
    /// collapsing to the center line when over-shrunk).
    #[inline]
    pub fn inflate(&self, dx: f64, dy: f64) -> Rect {
        let mut xmin = self.xmin - dx;
        let mut xmax = self.xmax + dx;
        let mut ymin = self.ymin - dy;
        let mut ymax = self.ymax + dy;
        if xmin > xmax {
            let m = (xmin + xmax) * 0.5;
            xmin = m;
            xmax = m;
        }
        if ymin > ymax {
            let m = (ymin + ymax) * 0.5;
            ymin = m;
            ymax = m;
        }
        Rect::new(xmin, ymin, xmax, ymax)
    }

    /// The rectangle inflated by possibly asymmetric amounts per side.
    ///
    /// Used for the *extended window* `q'` of the paper's Section 4: the
    /// original window grown by the inner-validity extents
    /// `dist_x−, dist_x+, dist_y−, dist_y+` in each direction.
    #[inline]
    pub fn extend(&self, left: f64, right: f64, down: f64, up: f64) -> Rect {
        Rect::new(
            self.xmin - left,
            self.ymin - down,
            self.xmax + right,
            self.ymax + up,
        )
    }

    /// Minimum distance from `p` to this rectangle (0 when inside).
    ///
    /// This is the `mindist` metric of the classic branch-and-bound
    /// nearest-neighbor search `[RKV95]`.
    #[inline]
    pub fn mindist(&self, p: Point) -> f64 {
        self.mindist_sq(p).sqrt()
    }

    /// Squared `mindist` — cheaper, and what the R-tree search actually
    /// compares.
    #[inline]
    pub fn mindist_sq(&self, p: Point) -> f64 {
        let dx = (self.xmin - p.x).max(0.0).max(p.x - self.xmax);
        let dy = (self.ymin - p.y).max(0.0).max(p.y - self.ymax);
        dx * dx + dy * dy
    }

    /// Squared minimum distance between this rectangle and `other`
    /// (zero when they intersect).
    ///
    /// Admissible group bound: for every `q ∈ other`,
    /// `self.mindist_sq_rect(other) ≤ self.mindist_sq(q)` — the
    /// shared-frontier group kNN of `lbq-rtree` prunes whole subtrees
    /// against a tile of query points with one evaluation.
    #[inline]
    pub fn mindist_sq_rect(&self, other: &Rect) -> f64 {
        let dx = (self.xmin - other.xmax)
            .max(0.0)
            .max(other.xmin - self.xmax);
        let dy = (self.ymin - other.ymax)
            .max(0.0)
            .max(other.ymin - self.ymax);
        dx * dx + dy * dy
    }

    /// Maximum distance from `p` to any point of the rectangle.
    #[inline]
    pub fn maxdist(&self, p: Point) -> f64 {
        self.maxdist_sq(p).sqrt()
    }

    /// Squared maximum distance.
    #[inline]
    pub fn maxdist_sq(&self, p: Point) -> f64 {
        let dx = (p.x - self.xmin).abs().max((p.x - self.xmax).abs());
        let dy = (p.y - self.ymin).abs().max((p.y - self.ymax).abs());
        dx * dx + dy * dy
    }

    /// The point of the rectangle closest to `p` (i.e. `p` clamped).
    #[inline]
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.xmin, self.xmax),
            p.y.clamp(self.ymin, self.ymax),
        )
    }

    /// Translates the rectangle by `v`.
    #[inline]
    pub fn translate(&self, v: Vec2) -> Rect {
        Rect::new(
            self.xmin + v.x,
            self.ymin + v.y,
            self.xmax + v.x,
            self.ymax + v.y,
        )
    }

    /// The **Minkowski region** of a data point `p` with respect to a
    /// window of half-extents `(hx, hy)` centered at the client: the set
    /// of client positions for which `p` falls inside the window.
    #[inline]
    pub fn minkowski_of(p: Point, hx: f64, hy: f64) -> Rect {
        Rect::centered(p, hx, hy)
    }

    /// `true` when the rectangle has (numerically) zero area.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() <= crate::EPS || self.height() <= crate::EPS
    }

    /// Parameter interval `[t_in, t_out]` for which the line
    /// `origin + t·dir` lies inside the rectangle (slab method), or
    /// `None` when the line misses it. The interval is not clamped to
    /// `t ≥ 0`; callers decide ray semantics.
    ///
    /// Used by the time-parameterized *window* queries: the moving
    /// client enters the Minkowski region of a point at `t_in` and
    /// leaves it at `t_out`.
    pub fn ray_interval(&self, origin: Point, dir: Vec2) -> Option<(f64, f64)> {
        let mut t_in = f64::NEG_INFINITY;
        let mut t_out = f64::INFINITY;
        for (o, d, lo, hi) in [
            (origin.x, dir.x, self.xmin, self.xmax),
            (origin.y, dir.y, self.ymin, self.ymax),
        ] {
            if d.abs() <= 1e-300 {
                if o < lo || o > hi {
                    return None; // parallel outside the slab
                }
                continue;
            }
            let (a, b) = ((lo - o) / d, (hi - o) / d);
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            t_in = t_in.max(a);
            t_out = t_out.min(b);
            if t_in > t_out {
                return None;
            }
        }
        Some((t_in, t_out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn basic_measures() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.margin(), 14.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn centered_roundtrip() {
        let c = Point::new(3.0, -1.0);
        let r = Rect::centered(c, 2.0, 0.5);
        assert_eq!(r.center(), c);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 1.0);
    }

    #[test]
    fn containment_and_intersection() {
        let r = unit();
        assert!(r.contains(Point::new(0.5, 0.5)));
        assert!(r.contains(Point::new(0.0, 1.0))); // closed boundary
        assert!(!r.contains(Point::new(1.0 + 1e-12, 0.5)));

        let s = Rect::new(0.5, 0.5, 2.0, 2.0);
        assert!(r.intersects(&s));
        let i = r.intersection(&s).unwrap();
        assert_eq!(i, Rect::new(0.5, 0.5, 1.0, 1.0));
        assert_eq!(r.overlap_area(&s), 0.25);

        let far = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert!(!r.intersects(&far));
        assert!(r.intersection(&far).is_none());
        assert_eq!(r.overlap_area(&far), 0.0);

        // Touching counts as intersecting (closed rectangles).
        let touch = Rect::new(1.0, 0.0, 2.0, 1.0);
        assert!(r.intersects(&touch));
        assert_eq!(r.overlap_area(&touch), 0.0);
    }

    #[test]
    fn union_expand() {
        let mut r = Rect::from_point(Point::new(1.0, 1.0));
        r.expand_to(Point::new(-1.0, 3.0));
        assert_eq!(r, Rect::new(-1.0, 1.0, 1.0, 3.0));
        let u = r.union(&unit());
        assert_eq!(u, Rect::new(-1.0, 0.0, 1.0, 3.0));
        assert!(u.contains_rect(&r));
        assert!(u.contains_rect(&unit()));
    }

    #[test]
    fn bounding_points() {
        assert!(Rect::bounding(&[]).is_none());
        let pts = [
            Point::new(0.0, 5.0),
            Point::new(2.0, -1.0),
            Point::new(1.0, 1.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::new(0.0, -1.0, 2.0, 5.0));
    }

    #[test]
    fn mindist_maxdist() {
        let r = unit();
        // Inside → 0.
        assert_eq!(r.mindist(Point::new(0.5, 0.5)), 0.0);
        // Left of the rect → horizontal gap.
        assert!(approx_eq(r.mindist(Point::new(-2.0, 0.5)), 2.0));
        // Diagonal corner.
        assert!(approx_eq(r.mindist(Point::new(-3.0, -4.0)), 5.0));
        // maxdist from the center is half the diagonal.
        assert!(approx_eq(
            r.maxdist(Point::new(0.5, 0.5)),
            (0.5f64 * 0.5 * 2.0).sqrt()
        ));
        // maxdist ≥ mindist always.
        assert!(r.maxdist(Point::new(-3.0, -4.0)) >= r.mindist(Point::new(-3.0, -4.0)));
    }

    #[test]
    fn clamp() {
        let r = unit();
        assert_eq!(r.clamp_point(Point::new(2.0, -1.0)), Point::new(1.0, 0.0));
        assert_eq!(r.clamp_point(Point::new(0.3, 0.7)), Point::new(0.3, 0.7));
    }

    #[test]
    fn inflate_and_extend() {
        let r = unit();
        assert_eq!(r.inflate(1.0, 2.0), Rect::new(-1.0, -2.0, 2.0, 3.0));
        // Over-shrinking collapses to the center, never inverts.
        let collapsed = r.inflate(-5.0, -5.0);
        // lbq-check: allow(float-eq) — collapse produces an exact 0.0
        assert!(collapsed.width() == 0.0 && collapsed.height() == 0.0);
        assert_eq!(collapsed.center(), r.center());

        let e = r.extend(0.1, 0.2, 0.3, 0.4);
        assert_eq!(e, Rect::new(-0.1, -0.3, 1.2, 1.4));
    }

    #[test]
    fn minkowski_region_semantics() {
        // Client at c with window half-extents (hx, hy) sees p
        // ⟺ c ∈ minkowski_of(p, hx, hy).
        let p = Point::new(4.0, 4.0);
        let (hx, hy) = (1.0, 2.0);
        let m = Rect::minkowski_of(p, hx, hy);
        for &(cx, cy, inside) in &[
            (4.0, 4.0, true),
            (4.9, 5.9, true),
            (5.1, 4.0, false),
            (4.0, 6.1, false),
        ] {
            let c = Point::new(cx, cy);
            let window = Rect::centered(c, hx, hy);
            assert_eq!(window.contains(p), inside, "client at {c}");
            assert_eq!(m.contains(c), inside, "minkowski at {c}");
        }
    }

    #[test]
    fn ray_interval_cases() {
        let r = Rect::new(2.0, 0.0, 4.0, 1.0);
        // Straight through along x.
        let (a, b) = r
            .ray_interval(Point::new(0.0, 0.5), Vec2::new(1.0, 0.0))
            .unwrap();
        assert!(approx_eq(a, 2.0) && approx_eq(b, 4.0));
        // Backwards parameterization still reported (negative t).
        let (a, b) = r
            .ray_interval(Point::new(5.0, 0.5), Vec2::new(1.0, 0.0))
            .unwrap();
        assert!(approx_eq(a, -3.0) && approx_eq(b, -1.0));
        // Miss.
        assert!(r
            .ray_interval(Point::new(0.0, 5.0), Vec2::new(1.0, 0.0))
            .is_none());
        // Parallel inside the slab, crossing the other axis.
        let (a, b) = r
            .ray_interval(Point::new(3.0, -2.0), Vec2::new(0.0, 1.0))
            .unwrap();
        assert!(approx_eq(a, 2.0) && approx_eq(b, 3.0));
        // Diagonal.
        let d = Vec2::new(1.0, 0.25).normalized().unwrap();
        let (a, b) = r.ray_interval(Point::new(0.0, 0.0), d).unwrap();
        assert!(a < b && a > 0.0);
        // Entry/exit points really are on the boundary.
        let pin = Point::new(0.0, 0.0) + d * a;
        let pout = Point::new(0.0, 0.0) + d * b;
        assert!(r.contains_eps(pin, 1e-9) && r.contains_eps(pout, 1e-9));
    }

    #[test]
    fn corners_ccw() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        let c = r.corners();
        // Shoelace of corners must be positive (CCW) and equal the area.
        let mut twice_area = 0.0;
        for i in 0..4 {
            let a = c[i];
            let b = c[(i + 1) % 4];
            twice_area += a.x * b.y - b.x * a.y;
        }
        assert!(approx_eq(twice_area * 0.5, r.area()));
    }
}
