//! # lbq-geom — 2D geometry kernel
//!
//! The computational-geometry substrate of the `lbq` workspace, a
//! reproduction of *"Location-based Spatial Queries"* (SIGMOD 2003).
//!
//! Everything here is first-party: points and vectors ([`Point`],
//! [`Vec2`]), axis-aligned rectangles ([`Rect`]), half-planes bounded by
//! perpendicular bisectors ([`HalfPlane`]), convex polygons with
//! half-plane clipping ([`ConvexPolygon`]) — the machinery used to build
//! nearest-neighbor validity regions — plus a rectangle-union sweepline
//! ([`rect_union_area`]) and numeric quadrature ([`quad`]) used by the
//! window-query validity regions and the analytical models of the paper's
//! Section 5.
//!
//! ## Conventions
//!
//! * Coordinates are `f64`. The library is a *query-processing* kernel,
//!   not an exact-arithmetic CGAL clone; all predicates take explicit or
//!   library-default epsilons (see [`EPS`]) and the algorithms in
//!   `lbq-core` are written to be robust to the resulting conservatism
//!   (a vertex that is confirmed twice costs one extra TPNN query; it
//!   never produces a wrong region).
//! * Convex polygons store vertices in counter-clockwise order.
//! * Half-planes are closed sets `a·x + b·y ≤ c`.

pub mod halfplane;
pub mod point;
pub mod polygon;
pub mod quad;
pub mod rect;
pub mod rectunion;
pub mod segment;

pub use halfplane::HalfPlane;
pub use point::{orient, Point, Vec2};
pub use polygon::ConvexPolygon;
pub use rect::Rect;
pub use rectunion::{rect_difference_area, rect_union_area};
pub use segment::Segment;

/// Default absolute tolerance for geometric predicates.
///
/// Chosen for coordinates up to ~1e7 (the NA dataset universe is
/// 7,000,000 m wide); `1e-9` relative precision at that magnitude is
/// ~1e-2, far below any meaningful geometric feature of the workloads.
pub const EPS: f64 = 1e-9;

/// Tight tolerance for quantities already known to be O(1) — area
/// ratios, normalized determinants, convergence residuals. Use [`EPS`]
/// for anything carrying coordinate units.
pub const EPS_TIGHT: f64 = 1e-12;

/// Relative-or-absolute closeness test used throughout the workspace.
///
/// Returns `true` when `a` and `b` differ by at most `EPS` absolutely or
/// `EPS` relatively, whichever is larger.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPS || diff <= EPS * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e9, 1e9 + 0.5));
        assert!(!approx_eq(1e9, 1e9 + 1e3));
    }
}
