//! Closed half-planes, in particular those bounded by perpendicular
//! bisectors.
//!
//! The validity region of a nearest-neighbor query (paper, Observation in
//! Section 3.1) is the intersection of the half-planes
//! "closer to the result point `o` than to data point `a`" over all other
//! points `a` — i.e. the Voronoi cell of `o`. [`HalfPlane::bisector`]
//! builds exactly that half-plane.

use crate::point::{Point, Vec2};

/// The closed half-plane `a·x + b·y ≤ c`, with `(a, b)` the *outward*
/// normal (pointing away from the kept side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl HalfPlane {
    /// Builds the half-plane `a·x + b·y ≤ c` directly from coefficients.
    ///
    /// The normal `(a, b)` must be non-zero; coefficients are normalized
    /// so that `(a, b)` is a unit vector, which makes
    /// [`HalfPlane::signed_dist`] a true Euclidean distance and keeps the
    /// numeric behaviour of downstream clipping independent of the
    /// magnitude of the inputs.
    pub fn new(a: f64, b: f64, c: f64) -> Self {
        let n = (a * a + b * b).sqrt();
        assert!(n > 0.0, "half-plane normal must be non-zero");
        HalfPlane {
            a: a / n,
            b: b / n,
            c: c / n,
        }
    }

    /// The half-plane of points at least as close to `keep` as to
    /// `other`, bounded by their perpendicular bisector.
    ///
    /// `keep` strictly satisfies the constraint and `other` strictly
    /// violates it (assuming the points are distinct).
    ///
    /// Derivation: `|x−keep|² ≤ |x−other|²` ⟺
    /// `2(other−keep)·x ≤ |other|² − |keep|²`.
    pub fn bisector(keep: Point, other: Point) -> Self {
        let a = 2.0 * (other.x - keep.x);
        let b = 2.0 * (other.y - keep.y);
        let c = (other.x * other.x + other.y * other.y) - (keep.x * keep.x + keep.y * keep.y);
        HalfPlane::new(a, b, c)
    }

    /// The half-plane on the side of the line through `p` with outward
    /// normal `n` (points `x` with `n·(x − p) ≤ 0` are kept).
    pub fn through(p: Point, outward_normal: Vec2) -> Self {
        HalfPlane::new(
            outward_normal.x,
            outward_normal.y,
            outward_normal.x * p.x + outward_normal.y * p.y,
        )
    }

    /// Signed distance of `p` to the boundary line: negative strictly
    /// inside (kept side), zero on the line, positive strictly outside.
    #[inline]
    pub fn signed_dist(&self, p: Point) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.signed_dist(p) <= 0.0
    }

    /// Containment with tolerance `eps` (points within `eps` outside the
    /// line still count as inside).
    #[inline]
    pub fn contains_eps(&self, p: Point, eps: f64) -> bool {
        self.signed_dist(p) <= eps
    }

    /// The boundary line's direction vector (unit length, 90° CCW from
    /// the outward normal, so the kept side is to its *left*).
    #[inline]
    pub fn direction(&self) -> Vec2 {
        Vec2::new(-self.b, self.a)
    }

    /// The point of the boundary line closest to the origin.
    #[inline]
    pub fn boundary_point(&self) -> Point {
        // With unit normal, the line is n·x = c, closest point is c·n.
        Point::new(self.a * self.c, self.b * self.c)
    }

    /// Intersection point of the boundary lines of two half-planes, or
    /// `None` when (numerically) parallel.
    pub fn line_intersection(&self, other: &HalfPlane) -> Option<Point> {
        let det = self.a * other.b - other.a * self.b;
        if det.abs() <= crate::EPS {
            return None;
        }
        let x = (self.c * other.b - other.c * self.b) / det;
        let y = (self.a * other.c - other.a * self.c) / det;
        Some(Point::new(x, y))
    }

    /// Time `t ≥ 0` at which the ray `origin + t·dir` crosses the
    /// boundary from inside to outside (or meets it), or `None` if the
    /// ray never leaves the half-plane.
    ///
    /// Used by the TPNN machinery: the crossing time of the bisector of
    /// (current NN, candidate) along the client's direction of travel is
    /// the candidate's *influence time*.
    pub fn ray_exit_time(&self, origin: Point, dir: Vec2) -> Option<f64> {
        let d0 = self.signed_dist(origin);
        let v = self.a * dir.x + self.b * dir.y; // rate of change of signed dist
        if v <= crate::EPS {
            // Moving parallel to or deeper into the half-plane.
            return None;
        }
        let t = -d0 / v;
        if t >= 0.0 {
            Some(t)
        } else {
            // Origin already outside and moving further out.
            Some(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bisector_sides() {
        let o = Point::new(0.0, 0.0);
        let a = Point::new(4.0, 0.0);
        let h = HalfPlane::bisector(o, a);
        assert!(h.contains(o));
        assert!(!h.contains(a));
        // The midpoint is exactly on the boundary.
        assert!(approx_eq(h.signed_dist(o.midpoint(a)), 0.0));
        // Points equidistant stay on the boundary.
        assert!(approx_eq(h.signed_dist(Point::new(2.0, 17.0)), 0.0));
        // Signed distance equals Euclidean distance to the line.
        assert!(approx_eq(h.signed_dist(Point::new(5.0, 3.0)), 3.0));
        assert!(approx_eq(h.signed_dist(Point::new(-1.0, 3.0)), -3.0));
    }

    #[test]
    fn bisector_matches_distance_comparison() {
        // Property sampled deterministically over a grid.
        let keep = Point::new(1.5, -2.0);
        let other = Point::new(-0.5, 3.0);
        let h = HalfPlane::bisector(keep, other);
        for i in -10..=10 {
            for j in -10..=10 {
                let p = Point::new(i as f64 * 0.7, j as f64 * 0.9);
                let closer = p.dist_sq(keep) <= p.dist_sq(other);
                assert_eq!(h.contains_eps(p, 1e-9), closer, "at {p}");
            }
        }
    }

    #[test]
    fn through_normal() {
        let h = HalfPlane::through(Point::new(2.0, 0.0), Vec2::new(1.0, 0.0));
        // Keeps x ≤ 2.
        assert!(h.contains(Point::new(1.9, 100.0)));
        assert!(!h.contains(Point::new(2.1, -100.0)));
        assert!(approx_eq(h.signed_dist(Point::new(2.0, 5.0)), 0.0));
    }

    #[test]
    fn line_intersection_basic() {
        let hx = HalfPlane::through(Point::new(3.0, 0.0), Vec2::new(1.0, 0.0)); // x = 3
        let hy = HalfPlane::through(Point::new(0.0, -1.0), Vec2::new(0.0, 1.0)); // y = -1
        let p = hx.line_intersection(&hy).unwrap();
        assert!(approx_eq(p.x, 3.0) && approx_eq(p.y, -1.0));
        // Parallel lines do not intersect.
        let hx2 = HalfPlane::through(Point::new(5.0, 0.0), Vec2::new(1.0, 0.0));
        assert!(hx.line_intersection(&hx2).is_none());
    }

    #[test]
    fn ray_exit_times() {
        let h = HalfPlane::through(Point::new(2.0, 0.0), Vec2::new(1.0, 0.0)); // keep x ≤ 2
        let o = Point::new(0.0, 0.0);
        // Straight at the boundary: exits at t = 2.
        let t = h.ray_exit_time(o, Vec2::new(1.0, 0.0)).unwrap();
        assert!(approx_eq(t, 2.0));
        // At 45°: exits at t = 2√2.
        let d = Vec2::new(1.0, 1.0).normalized().unwrap();
        let t = h.ray_exit_time(o, d).unwrap();
        assert!(approx_eq(t, 2.0 * 2.0f64.sqrt()));
        // Moving away: never exits.
        assert!(h.ray_exit_time(o, Vec2::new(-1.0, 0.0)).is_none());
        // Parallel: never exits.
        assert!(h.ray_exit_time(o, Vec2::new(0.0, 1.0)).is_none());
        // Starting outside: exits immediately.
        let t = h
            .ray_exit_time(Point::new(3.0, 0.0), Vec2::new(1.0, 0.0))
            .unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn normalization() {
        let h = HalfPlane::new(30.0, 40.0, 100.0);
        assert!(approx_eq(h.a * h.a + h.b * h.b, 1.0));
        assert!(approx_eq(h.a, 0.6));
        assert!(approx_eq(h.b, 0.8));
        assert!(approx_eq(h.c, 2.0));
    }

    #[test]
    #[should_panic]
    fn zero_normal_panics() {
        let _ = HalfPlane::new(0.0, 0.0, 1.0);
    }
}
