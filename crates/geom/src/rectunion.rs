//! Exact area of unions and differences of axis-aligned rectangles.
//!
//! The exact validity region of a location-based *window* query (paper,
//! Section 4) is `inner validity rectangle − ⋃ Minkowski(pᵢ)` over the
//! candidate outer points. Its area — the quantity plotted in Figs. 29,
//! 30 — is computed here with a coordinate-compression sweep: O(n²) per
//! union, which is ample for the ≈2 outer influence objects per query
//! the paper reports (and still fine for pathological workloads with a
//! few hundred).

use crate::rect::Rect;

/// Area of `⋃ rects`, exact up to floating-point rounding.
///
/// Coordinate compression: sort the distinct x-coordinates, and for each
/// vertical slab accumulate the union of y-intervals of the rectangles
/// spanning it.
pub fn rect_union_area(rects: &[Rect]) -> f64 {
    let rects: Vec<&Rect> = rects.iter().filter(|r| r.area() > 0.0).collect();
    if rects.is_empty() {
        return 0.0;
    }
    let mut xs: Vec<f64> = Vec::with_capacity(rects.len() * 2);
    for r in &rects {
        xs.push(r.xmin);
        xs.push(r.xmax);
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    let mut area = 0.0;
    let mut intervals: Vec<(f64, f64)> = Vec::with_capacity(rects.len());
    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        let width = x1 - x0;
        if width <= 0.0 {
            continue;
        }
        intervals.clear();
        intervals.extend(
            rects
                .iter()
                .filter(|r| r.xmin <= x0 && r.xmax >= x1)
                .map(|r| (r.ymin, r.ymax)),
        );
        area += width * interval_union_len(&mut intervals);
    }
    area
}

/// Area of `base − ⋃ holes` (set difference), exact.
pub fn rect_difference_area(base: &Rect, holes: &[Rect]) -> f64 {
    let clipped: Vec<Rect> = holes.iter().filter_map(|h| base.intersection(h)).collect();
    (base.area() - rect_union_area(&clipped)).max(0.0)
}

/// Total length of the union of 1D closed intervals. Sorts in place.
fn interval_union_len(intervals: &mut [(f64, f64)]) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let (mut lo, mut hi) = intervals[0];
    for &(a, b) in &intervals[1..] {
        if a > hi {
            total += hi - lo;
            lo = a;
            hi = b;
        } else if b > hi {
            hi = b;
        }
    }
    total + (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn empty_union() {
        assert_eq!(rect_union_area(&[]), 0.0);
        // Degenerate rectangles contribute nothing.
        assert_eq!(rect_union_area(&[Rect::new(0.0, 0.0, 0.0, 5.0)]), 0.0);
    }

    #[test]
    fn single_rect() {
        assert!(approx_eq(
            rect_union_area(&[Rect::new(1.0, 1.0, 3.0, 4.0)]),
            6.0
        ));
    }

    #[test]
    fn disjoint_rects_add() {
        let rs = [
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(2.0, 0.0, 3.0, 1.0),
            Rect::new(0.0, 2.0, 1.0, 3.0),
        ];
        assert!(approx_eq(rect_union_area(&rs), 3.0));
    }

    #[test]
    fn overlapping_rects() {
        // Two unit squares overlapping in a 0.5×1 strip.
        let rs = [Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(0.5, 0.0, 1.5, 1.0)];
        assert!(approx_eq(rect_union_area(&rs), 1.5));
    }

    #[test]
    fn contained_rect_free() {
        let rs = [Rect::new(0.0, 0.0, 4.0, 4.0), Rect::new(1.0, 1.0, 2.0, 2.0)];
        assert!(approx_eq(rect_union_area(&rs), 16.0));
    }

    #[test]
    fn plus_shape() {
        // Horizontal 3×1 and vertical 1×3 bars crossing in a unit cell.
        let rs = [Rect::new(0.0, 1.0, 3.0, 2.0), Rect::new(1.0, 0.0, 2.0, 3.0)];
        assert!(approx_eq(rect_union_area(&rs), 5.0));
    }

    #[test]
    fn difference_basic() {
        let base = Rect::new(0.0, 0.0, 4.0, 4.0);
        // A corner bite of area 1.
        let holes = [Rect::new(3.0, 3.0, 5.0, 5.0)];
        assert!(approx_eq(rect_difference_area(&base, &holes), 15.0));
        // Hole fully covering → zero, never negative.
        let big = [Rect::new(-1.0, -1.0, 5.0, 5.0)];
        assert_eq!(rect_difference_area(&base, &big), 0.0);
        // Disjoint hole → full base.
        let far = [Rect::new(10.0, 10.0, 11.0, 11.0)];
        assert!(approx_eq(rect_difference_area(&base, &far), 16.0));
    }

    #[test]
    fn difference_overlapping_holes_not_double_counted() {
        let base = Rect::new(0.0, 0.0, 4.0, 2.0);
        let holes = [Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(1.0, 0.0, 3.0, 2.0)];
        // Union of holes inside base covers [0,3]×[0,2] = 6.
        assert!(approx_eq(rect_difference_area(&base, &holes), 2.0));
    }

    #[test]
    fn interval_union() {
        let mut iv = vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0)];
        assert!(approx_eq(interval_union_len(&mut iv), 3.0));
        let mut single = vec![(2.0, 2.5)];
        assert!(approx_eq(interval_union_len(&mut single), 0.5));
    }

    #[test]
    fn union_matches_monte_carlo() {
        // Deterministic pseudo-random rectangles; compare sweep against a
        // dense grid estimate.
        let mut rects = Vec::new();
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..12 {
            let x = next() * 8.0;
            let y = next() * 8.0;
            let w = next() * 3.0 + 0.1;
            let h = next() * 3.0 + 0.1;
            rects.push(Rect::new(x, y, x + w, y + h));
        }
        let exact = rect_union_area(&rects);
        // Grid check on [0,12]² with 600² cells.
        let n = 600;
        let cell = 12.0 / n as f64;
        let mut covered = 0u64;
        for i in 0..n {
            for j in 0..n {
                let cx = (i as f64 + 0.5) * cell;
                let cy = (j as f64 + 0.5) * cell;
                if rects
                    .iter()
                    .any(|r| cx >= r.xmin && cx <= r.xmax && cy >= r.ymin && cy <= r.ymax)
                {
                    covered += 1;
                }
            }
        }
        let approx = covered as f64 * cell * cell;
        assert!(
            (exact - approx).abs() < 0.35,
            "sweep {exact} vs grid {approx}"
        );
    }
}
