//! Line segments — used by the synthetic "street network" dataset
//! generator (GR-like data places points at segment centroids) and by
//! geometric tests.

use crate::point::{Point, Vec2};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Midpoint (the "centroid" of a street segment, which is what the
    /// GR dataset of the paper stores).
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Direction vector (not normalized).
    #[inline]
    pub fn dir(&self) -> Vec2 {
        self.a.to(self.b)
    }

    /// Distance from `p` to the closest point of the segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        let d = self.dir();
        let len_sq = d.norm_sq();
        if len_sq <= crate::EPS * crate::EPS {
            return self.a.dist(p);
        }
        let t = (self.a.to(p).dot(d) / len_sq).clamp(0.0, 1.0);
        self.at(t).dist(p)
    }

    /// Splits the segment into `n` equal pieces and returns their
    /// midpoints (`n ≥ 1`).
    pub fn piece_midpoints(&self, n: usize) -> Vec<Point> {
        assert!(n >= 1, "need at least one piece");
        (0..n)
            .map(|i| self.at((i as f64 + 0.5) / n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn length_midpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
    }

    #[test]
    fn point_distance() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Above the middle: perpendicular distance.
        assert!(approx_eq(s.dist_to_point(Point::new(5.0, 3.0)), 3.0));
        // Beyond an endpoint: distance to the endpoint.
        assert!(approx_eq(s.dist_to_point(Point::new(13.0, 4.0)), 5.0));
        // On the segment: zero.
        assert_eq!(s.dist_to_point(Point::new(7.0, 0.0)), 0.0);
        // Degenerate segment behaves like a point.
        let d = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert!(approx_eq(d.dist_to_point(Point::new(4.0, 5.0)), 5.0));
    }

    #[test]
    fn piece_midpoints_cover_evenly() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let mids = s.piece_midpoints(4);
        assert_eq!(mids.len(), 4);
        assert!(approx_eq(mids[0].x, 0.5));
        assert!(approx_eq(mids[3].x, 3.5));
        // All midpoints are on the segment.
        for m in mids {
            assert!(approx_eq(s.dist_to_point(m), 0.0));
        }
    }
}
