//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the plane.
///
/// `Point` and [`Vec2`] are distinct types on purpose: a validity-region
/// computation mixes absolute positions (data points, query focus) with
/// displacements (query movement direction, bisector normals) and keeping
/// them apart catches a class of sign errors at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement / direction vector in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] inside comparisons: it avoids the
    /// square root and is exact for exactly-representable inputs.
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Vector from `self` to `other` (i.e. `other - self`).
    #[inline]
    pub fn to(&self, other: Point) -> Vec2 {
        Vec2::new(other.x - self.x, other.y - self.y)
    }

    /// The midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Both coordinates are finite (not NaN / ±∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Unit vector at angle `theta` radians from the positive x-axis.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(&self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Squared length.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(*self)
    }

    /// Length.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Returns the vector scaled to unit length, or `None` if its length
    /// is below `crate::EPS` (direction undefined).
    #[inline]
    pub fn normalized(&self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(Vec2::new(self.x / n, self.y / n))
        }
    }

    /// Perpendicular vector, rotated +90° (counter-clockwise).
    #[inline]
    pub fn perp(&self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Angle in radians from the positive x-axis, in `(-π, π]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.y.atan2(self.x)
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
///
/// Returns a positive value when the triple turns counter-clockwise,
/// negative when clockwise, and (approximately) zero when collinear.
#[inline]
pub fn orient(a: Point, b: Point, c: Point) -> f64 {
    a.to(b).cross(a.to(c))
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vec2) -> Point {
        Point::new(self.x + v.x, self.y + v.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vec2) -> Point {
        Point::new(self.x - v.x, self.y - v.y)
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, p: Point) -> Vec2 {
        Vec2::new(self.x - p.x, self.y - p.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, v: Vec2) -> Vec2 {
        Vec2::new(self.x + v.x, self.y + v.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, v: Vec2) -> Vec2 {
        Vec2::new(self.x - v.x, self.y - v.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, v: Vec2) {
        self.x -= v.x;
        self.y -= v.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2::new(self.x / s, self.y / s)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.6}, {:.6}>", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(b.dist(a), 5.0);
        assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 6.0);
        assert_eq!(a.midpoint(b), Point::new(2.0, 4.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vec2::new(1.0, 0.0)), -4.0);
        assert_eq!(v.perp(), Vec2::new(-4.0, 3.0));
        assert!(approx_eq(v.perp().dot(v), 0.0));
        let u = v.normalized().unwrap();
        assert!(approx_eq(u.norm(), 1.0));
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn from_angle_is_unit() {
        for i in 0..16 {
            let theta = i as f64 * std::f64::consts::PI / 8.0;
            let v = Vec2::from_angle(theta);
            assert!(approx_eq(v.norm(), 1.0));
            // angle() is the inverse up to 2π wrapping.
            let diff = (v.angle() - theta).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(diff < 1e-9 || (2.0 * std::f64::consts::PI - diff) < 1e-9);
        }
    }

    #[test]
    fn orientation_signs() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let ccw = Point::new(0.0, 1.0);
        let cw = Point::new(0.0, -1.0);
        let col = Point::new(2.0, 0.0);
        assert!(orient(a, b, ccw) > 0.0);
        assert!(orient(a, b, cw) < 0.0);
        assert_eq!(orient(a, b, col), 0.0);
    }

    #[test]
    fn point_vector_ops() {
        let p = Point::new(1.0, 1.0);
        let v = Vec2::new(2.0, -1.0);
        assert_eq!(p + v, Point::new(3.0, 0.0));
        assert_eq!((p + v) - v, p);
        assert_eq!(p + v - p, v);
        assert_eq!(v * 2.0, Vec2::new(4.0, -2.0));
        assert_eq!(v / 2.0, Vec2::new(1.0, -0.5));
        assert_eq!(-v, Vec2::new(-2.0, 1.0));
    }
}
