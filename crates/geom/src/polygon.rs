//! Convex polygons with half-plane clipping.
//!
//! The nearest-neighbor validity region starts as the data universe (a
//! rectangle) and is clipped by one bisector half-plane per influence
//! object, exactly as in the paper's Fig. 8. [`ConvexPolygon::clip`] is
//! the Sutherland–Hodgman step specialised to a single convex clip
//! half-plane, which keeps the region convex by construction.

use crate::halfplane::HalfPlane;
use crate::point::{orient, Point};
use crate::rect::Rect;

/// A (possibly empty) convex polygon, vertices in counter-clockwise
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Polygon from a CCW vertex list.
    ///
    /// Debug builds assert the full invariant ([`Self::validate`]);
    /// release builds trust the caller (all internal constructors
    /// maintain the invariant).
    pub fn new(vertices: Vec<Point>) -> Self {
        let poly = ConvexPolygon { vertices };
        debug_assert!(
            poly.validate().is_ok(),
            "invalid polygon: {:?}",
            poly.validate()
        );
        poly
    }

    /// Checked constructor: like [`Self::new`] but returns the violated
    /// invariant instead of trusting the caller. This is the entry point
    /// for vertex lists from outside the crate (deserialized wire
    /// payloads, tests corrupting data on purpose).
    pub fn try_new(vertices: Vec<Point>) -> Result<Self, String> {
        let poly = ConvexPolygon { vertices };
        poly.validate()?;
        Ok(poly)
    }

    /// Verifies the full representation invariant, returning a
    /// description of the first violation:
    ///
    /// 1. the vertex count is 0 (the empty polygon) or ≥ 3;
    /// 2. no two cyclically adjacent vertices coincide (within
    ///    [`crate::EPS`]);
    /// 3. the ring is convex and counter-clockwise
    ///    ([`Self::is_convex_ccw`]).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.vertices.len();
        if n == 0 {
            return Ok(());
        }
        if n < 3 {
            return Err(format!("degenerate polygon with {n} vertices"));
        }
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.dist_sq(b) <= crate::EPS * crate::EPS {
                return Err(format!(
                    "duplicate adjacent vertices {i} and {}: {a}",
                    (i + 1) % n
                ));
            }
        }
        if !self.is_convex_ccw() {
            return Err("vertex ring is not convex counter-clockwise".to_string());
        }
        Ok(())
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        ConvexPolygon {
            vertices: Vec::new(),
        }
    }

    /// Clones `other`'s vertices into `self`, reusing the allocation
    /// (`Clone::clone_from` with scratch-friendly intent made explicit).
    pub fn assign(&mut self, other: &ConvexPolygon) {
        self.vertices.clear();
        self.vertices.extend_from_slice(&other.vertices);
    }

    /// The polygon covering a rectangle.
    pub fn from_rect(r: &Rect) -> Self {
        ConvexPolygon {
            vertices: r.corners().to_vec(),
        }
    }

    /// Resets this polygon in place to cover a rectangle, reusing the
    /// vertex allocation. The in-place counterpart of
    /// [`ConvexPolygon::from_rect`] for scratch-hosted polygons that are
    /// rebuilt every query.
    pub fn assign_rect(&mut self, r: &Rect) {
        self.vertices.clear();
        self.vertices.extend_from_slice(&r.corners());
    }

    /// Vertices in CCW order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (= number of edges for a non-degenerate
    /// polygon).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Signed area via the shoelace formula (non-negative for CCW
    /// polygons).
    pub fn area(&self) -> f64 {
        if self.vertices.len() < 3 {
            return 0.0;
        }
        let mut twice = 0.0;
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            twice += a.x * b.y - b.x * a.y;
        }
        twice * 0.5
    }

    /// The arithmetic-mean centroid of the vertices (inside the polygon
    /// by convexity; sufficient for seeding searches, *not* the area
    /// centroid).
    pub fn vertex_centroid(&self) -> Option<Point> {
        if self.vertices.is_empty() {
            return None;
        }
        let n = self.vertices.len() as f64;
        let (sx, sy) = self
            .vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Some(Point::new(sx / n, sy / n))
    }

    /// Closed point-containment test with tolerance `eps`.
    ///
    /// This is the *client-side validity check* of the paper: the mobile
    /// client verifies its new position is still inside every bisector
    /// half-plane. Cost is O(edges) — around 6 on average (Fig. 24).
    pub fn contains_eps(&self, p: Point, eps: f64) -> bool {
        if self.vertices.len() < 3 {
            return false;
        }
        for i in 0..self.vertices.len() {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % self.vertices.len()];
            // Left-of-edge test; signed area of (a,b,p) scaled by |ab|.
            let o = orient(a, b, p);
            let len = a.dist(b);
            if o < -eps * len.max(1.0) {
                return false;
            }
        }
        true
    }

    /// Closed containment with the library-default tolerance.
    pub fn contains(&self, p: Point) -> bool {
        self.contains_eps(p, crate::EPS)
    }

    /// Clips the polygon by a half-plane, returning the (possibly empty)
    /// intersection.
    ///
    /// Single-clip Sutherland–Hodgman: walk the boundary, keep inside
    /// vertices, and insert the boundary crossing on each inside/outside
    /// transition. Runs in O(n) and preserves convexity and CCW order.
    pub fn clip(&self, h: &HalfPlane) -> ConvexPolygon {
        if self.vertices.is_empty() {
            return ConvexPolygon::empty();
        }
        let mut out: Vec<Point> = Vec::with_capacity(self.vertices.len() + 1);
        clip_ring(&self.vertices, h, &mut out);
        dedup_ring(&mut out);
        // Degenerate slivers (all vertices collinear within EPS) are
        // reported as empty so callers can stop refining them.
        let poly = ConvexPolygon { vertices: out };
        if poly.vertices.len() < 3 || poly.area() <= crate::EPS * crate::EPS {
            return ConvexPolygon::empty();
        }
        debug_assert!(
            poly.validate().is_ok(),
            "clip broke the polygon invariant: {:?}",
            poly.validate()
        );
        poly
    }

    /// [`ConvexPolygon::clip`], mutating `self` and staging the new ring
    /// in `buf` (capacity retained across calls): repeated clipping —
    /// e.g. the validity-region construction — runs with zero
    /// steady-state allocations.
    pub fn clip_in_place(&mut self, h: &HalfPlane, buf: &mut Vec<Point>) {
        buf.clear();
        if self.vertices.is_empty() {
            return;
        }
        clip_ring(&self.vertices, h, buf);
        dedup_ring(buf);
        std::mem::swap(&mut self.vertices, buf);
        if self.vertices.len() < 3 || self.area() <= crate::EPS * crate::EPS {
            self.vertices.clear();
            return;
        }
        debug_assert!(
            self.validate().is_ok(),
            "clip broke the polygon invariant: {:?}",
            self.validate()
        );
    }

    /// Clips by every half-plane in `hs` in sequence.
    pub fn clip_all<'a>(&self, hs: impl IntoIterator<Item = &'a HalfPlane>) -> ConvexPolygon {
        let mut poly = self.clone();
        for h in hs {
            if poly.is_empty() {
                break;
            }
            poly = poly.clip(h);
        }
        poly
    }

    /// Axis-aligned bounding rectangle, or `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(&self.vertices)
    }

    /// Checks the CCW-convexity invariant (used by debug assertions and
    /// tests). Collinear triples are tolerated.
    pub fn is_convex_ccw(&self) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return true;
        }
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            let scale = a.dist(b).max(b.dist(c)).max(1.0);
            if orient(a, b, c) < -crate::EPS * scale * scale {
                return false;
            }
        }
        true
    }
}

impl Default for ConvexPolygon {
    /// The empty polygon — lets scratch structs hosting a polygon derive
    /// `Default`.
    fn default() -> Self {
        Self::empty()
    }
}

/// Removes consecutive (cyclically) duplicate points from a vertex ring.
/// Single-clip Sutherland–Hodgman over a vertex ring: keeps inside
/// vertices and inserts the boundary crossing on each inside/outside
/// transition, appending the new ring to `out`.
fn clip_ring(ring: &[Point], h: &HalfPlane, out: &mut Vec<Point>) {
    let n = ring.len();
    for i in 0..n {
        let cur = ring[i];
        let nxt = ring[(i + 1) % n];
        let dc = h.signed_dist(cur);
        let dn = h.signed_dist(nxt);
        if dc <= 0.0 {
            out.push(cur);
        }
        // Strict sign change → one crossing point on the open edge.
        if (dc < 0.0 && dn > 0.0) || (dc > 0.0 && dn < 0.0) {
            let t = dc / (dc - dn);
            out.push(cur.lerp(nxt, t));
        }
    }
}

fn dedup_ring(v: &mut Vec<Point>) {
    v.dedup_by(|a, b| a.dist_sq(*b) <= crate::EPS * crate::EPS);
    while v.len() >= 2 {
        let first = v[0];
        // lbq-check: allow(no-unwrap-core) — the loop guard keeps len ≥ 2
        let last = *v.last().expect("len >= 2");
        if first.dist_sq(last) <= crate::EPS * crate::EPS {
            v.pop();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::point::Vec2;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_rect(&Rect::new(0.0, 0.0, 1.0, 1.0))
    }

    #[test]
    fn assign_reuses_allocation() {
        let mut p = ConvexPolygon::default();
        assert!(p.is_empty());
        p.assign_rect(&Rect::new(1.0, 1.0, 4.0, 3.0));
        assert_eq!(p, ConvexPolygon::from_rect(&Rect::new(1.0, 1.0, 4.0, 3.0)));
        let cap = p.vertices.capacity();
        p.assign_rect(&Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(p, unit_square());
        assert_eq!(p.vertices.capacity(), cap, "re-assign must not reallocate");
        let mut q = ConvexPolygon::empty();
        q.assign(&p);
        assert_eq!(q, p);
    }

    #[test]
    fn area_of_rect_polygon() {
        let p = ConvexPolygon::from_rect(&Rect::new(1.0, 1.0, 4.0, 3.0));
        assert!(approx_eq(p.area(), 6.0));
        assert_eq!(p.len(), 4);
        assert!(p.is_convex_ccw());
    }

    #[test]
    fn empty_polygon() {
        let e = ConvexPolygon::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point::new(0.0, 0.0)));
        assert!(e.bounding_rect().is_none());
        assert!(e.vertex_centroid().is_none());
        // Clipping the empty polygon stays empty.
        let h = HalfPlane::new(1.0, 0.0, 0.5);
        assert!(e.clip(&h).is_empty());
    }

    #[test]
    fn clip_keeps_half() {
        let sq = unit_square();
        // Keep x ≤ 0.5.
        let h = HalfPlane::through(Point::new(0.5, 0.0), Vec2::new(1.0, 0.0));
        let c = sq.clip(&h);
        assert!(approx_eq(c.area(), 0.5));
        assert!(c.contains(Point::new(0.25, 0.5)));
        assert!(!c.contains(Point::new(0.75, 0.5)));
        assert!(c.is_convex_ccw());
    }

    #[test]
    fn clip_diagonal_triangle() {
        let sq = unit_square();
        // Keep x + y ≤ 1 → lower-left triangle of area 1/2.
        let h = HalfPlane::new(1.0, 1.0, 1.0);
        let c = sq.clip(&h);
        assert!(approx_eq(c.area(), 0.5));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn clip_no_effect_when_containing() {
        let sq = unit_square();
        let h = HalfPlane::through(Point::new(5.0, 0.0), Vec2::new(1.0, 0.0));
        let c = sq.clip(&h);
        assert!(approx_eq(c.area(), 1.0));
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn clip_to_empty() {
        let sq = unit_square();
        let h = HalfPlane::through(Point::new(-1.0, 0.0), Vec2::new(1.0, 0.0)); // keep x ≤ −1
        assert!(sq.clip(&h).is_empty());
    }

    #[test]
    fn clip_all_bisectors_gives_voronoi_cell() {
        // Universe [0,10]²; sites: o at center plus 4 axis neighbors.
        // The Voronoi cell of o is the square (2.5,2.5)-(7.5,7.5).
        let o = Point::new(5.0, 5.0);
        let others = [
            Point::new(0.0, 5.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 0.0),
            Point::new(5.0, 10.0),
        ];
        let hs: Vec<HalfPlane> = others.iter().map(|&a| HalfPlane::bisector(o, a)).collect();
        let cell = ConvexPolygon::from_rect(&Rect::new(0.0, 0.0, 10.0, 10.0)).clip_all(hs.iter());
        assert!(approx_eq(cell.area(), 25.0));
        let br = cell.bounding_rect().unwrap();
        assert!(approx_eq(br.xmin, 2.5) && approx_eq(br.xmax, 7.5));
        assert!(approx_eq(br.ymin, 2.5) && approx_eq(br.ymax, 7.5));
    }

    #[test]
    fn clip_monotone_area() {
        // Clipping never increases area; sequence of random-ish planes.
        let mut poly = unit_square();
        let planes = [
            HalfPlane::new(1.0, 0.3, 0.9),
            HalfPlane::new(-0.5, 1.0, 0.7),
            HalfPlane::new(0.2, -1.0, -0.1),
            HalfPlane::new(1.0, 1.0, 1.2),
        ];
        let mut prev = poly.area();
        for h in &planes {
            poly = poly.clip(h);
            let a = poly.area();
            assert!(a <= prev + 1e-12, "area grew: {prev} -> {a}");
            assert!(poly.is_convex_ccw());
            prev = a;
        }
    }

    #[test]
    fn contains_boundary() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.0, 0.0)));
        assert!(sq.contains(Point::new(1.0, 0.5)));
        assert!(!sq.contains(Point::new(1.0 + 1e-6, 0.5)));
    }

    #[test]
    fn vertex_centroid_inside() {
        let sq = unit_square();
        let c = sq.vertex_centroid().unwrap();
        assert!(sq.contains(c));
        assert!(approx_eq(c.x, 0.5) && approx_eq(c.y, 0.5));
    }

    #[test]
    fn try_new_rejects_corrupt_vertex_lists() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let c = Point::new(0.0, 1.0);
        let d = Point::new(1.0, 1.0);
        // Clockwise ring (reversed) is rejected.
        assert!(ConvexPolygon::try_new(vec![c, b, a]).is_err());
        // Duplicate adjacent vertex is rejected.
        assert!(ConvexPolygon::try_new(vec![a, a, b, c]).is_err());
        // Too few vertices.
        assert!(ConvexPolygon::try_new(vec![a, b]).is_err());
        // Non-convex (bowtie) ring is rejected.
        assert!(ConvexPolygon::try_new(vec![a, d, b, c]).is_err());
        // Valid CCW rings (and the empty polygon) pass.
        assert!(ConvexPolygon::try_new(vec![a, b, c]).is_ok());
        assert!(ConvexPolygon::try_new(vec![a, b, d, c]).is_ok());
        assert!(ConvexPolygon::try_new(Vec::new()).is_ok());
    }

    #[test]
    fn validate_agrees_with_constructors() {
        assert!(unit_square().validate().is_ok());
        assert!(ConvexPolygon::empty().validate().is_ok());
        let clipped = unit_square().clip(&HalfPlane::new(1.0, 1.0, 1.0));
        assert!(clipped.validate().is_ok());
    }

    #[test]
    fn dedup_ring_removes_cyclic_dupes() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(1.0, 0.0);
        let r = Point::new(0.0, 1.0);
        let mut ring = vec![p, p, q, q, r, p];
        dedup_ring(&mut ring);
        assert_eq!(ring, vec![p, q, r]);
    }
}
