//! # lbq-data — datasets and query workloads
//!
//! Data substrate of the `lbq` workspace (reproduction of
//! *"Location-based Spatial Queries"*, SIGMOD 2003). The paper evaluates
//! on three kinds of data:
//!
//! * **uniform** points in a square unit universe (10k–1000k points);
//! * **GR** — 23,268 centroids of street segments in Greece,
//!   800 km × 800 km;
//! * **NA** — 569,120 populated places of North America,
//!   ≈7000 km × 7000 km.
//!
//! The two real datasets (hosted on a long-gone university page) are
//! substituted by seeded synthetic generators that reproduce the
//! properties the experiments actually exercise — cardinality, universe
//! extent, and spatial skew/clustering structure (what the Minskew
//! histogram and the LRU buffer react to):
//!
//! * [`gr_like`] scatters points along random polyline "roads"
//!   (segment centroids with jitter), matching GR's line-clustered skew;
//! * [`na_like`] draws from a Gaussian-mixture with power-law cluster
//!   sizes (Zipf-distributed "city populations"), matching NA's
//!   settlement pattern.
//!
//! Workloads follow the paper's Section 6: 500 queries per experiment,
//! distributed like the data (a query location is a perturbed random
//! data point), with square window queries.

use lbq_geom::{Point, Rect, Segment, Vec2};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::Item;

/// A named point dataset with its universe.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    pub items: Vec<Item>,
    pub universe: Rect,
}

impl Dataset {
    /// The bare points (no ids).
    pub fn points(&self) -> Vec<Point> {
        self.items.iter().map(|i| i.point).collect()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Uniformly distributed points in `universe`.
pub fn uniform(n: usize, universe: Rect, seed: u64) -> Dataset {
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    let items = (0..n)
        .map(|i| {
            Item::new(
                Point::new(
                    rng.gen_range(universe.xmin..universe.xmax),
                    rng.gen_range(universe.ymin..universe.ymax),
                ),
                i as u64,
            )
        })
        .collect();
    Dataset {
        name: format!("uniform-{n}"),
        items,
        universe,
    }
}

/// Uniform data in the paper's square unit universe.
pub fn uniform_unit(n: usize, seed: u64) -> Dataset {
    uniform(n, Rect::new(0.0, 0.0, 1.0, 1.0), seed)
}

/// GR-like data: `n` street-segment centroids along random polyline
/// roads in an 800 km × 800 km universe (meters). Defaults match the
/// paper with [`gr_like`].
pub fn gr_like_sized(n: usize, seed: u64) -> Dataset {
    let universe = Rect::new(0.0, 0.0, 800_000.0, 800_000.0);
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    let mut points: Vec<Point> = Vec::with_capacity(n);
    // Roads: random-walk polylines. Road lengths are heavy-tailed, and
    // roads start preferentially near earlier roads (towns attract
    // streets), which yields the dense-city / sparse-country contrast
    // of real street data.
    while points.len() < n {
        let start = if points.is_empty() || rng.gen_bool(0.3) {
            Point::new(
                rng.gen_range(universe.xmin..universe.xmax),
                rng.gen_range(universe.ymin..universe.ymax),
            )
        } else {
            // Branch off an existing street point.
            let anchor = points[rng.gen_range(0..points.len())];
            let r = rng.gen_range(0.0..15_000.0);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            universe.clamp_point(anchor + Vec2::from_angle(theta) * r)
        };
        let segments = rng.gen_range(3..60usize);
        let mut heading = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut cur = start;
        for _ in 0..segments {
            if points.len() >= n {
                break;
            }
            heading += rng.gen_range(-0.5..0.5);
            let len = rng.gen_range(80.0..600.0);
            let next = universe.clamp_point(cur + Vec2::from_angle(heading) * len);
            let seg = Segment::new(cur, next);
            if seg.length() > 1.0 {
                points.push(seg.midpoint());
            }
            cur = next;
        }
    }
    points.truncate(n);
    Dataset {
        name: format!("gr-like-{n}"),
        items: points
            .into_iter()
            .enumerate()
            .map(|(i, p)| Item::new(p, i as u64))
            .collect(),
        universe,
    }
}

/// The paper's GR cardinality: 23,268 points.
pub fn gr_like(seed: u64) -> Dataset {
    let mut d = gr_like_sized(23_268, seed);
    d.name = "GR".into();
    d
}

/// NA-like data: `n` populated places as a Gaussian mixture with
/// Zipf-distributed cluster populations in a 7000 km square universe
/// (meters).
pub fn na_like_sized(n: usize, seed: u64) -> Dataset {
    let universe = Rect::new(0.0, 0.0, 7_000_000.0, 7_000_000.0);
    let mut rng = Xoshiro256ss::seed_from_u64(seed);
    // Cluster centers ("metro areas"); weights Zipf with s = 1.1.
    let n_clusters = 300.max(n / 2000);
    let centers: Vec<(Point, f64)> = (0..n_clusters)
        .map(|rank| {
            let c = Point::new(
                rng.gen_range(universe.xmin..universe.xmax),
                rng.gen_range(universe.ymin..universe.ymax),
            );
            // Spread grows mildly with metro size: big metros sprawl,
            // but all clusters stay tight relative to the continent.
            let spread =
                rng.gen_range(8_000.0..40_000.0) * (1.0 + 2.0 / (1.0 + rank as f64).sqrt());
            (c, spread)
        })
        .collect();
    let weights: Vec<f64> = (0..n_clusters)
        .map(|rank| (1.0 + rank as f64).powf(-1.1))
        .collect();
    let total_w: f64 = weights.iter().sum();
    // 5% uniform background (rural places).
    let items = (0..n)
        .map(|i| {
            let p = if rng.gen_bool(0.05) {
                Point::new(
                    rng.gen_range(universe.xmin..universe.xmax),
                    rng.gen_range(universe.ymin..universe.ymax),
                )
            } else {
                let mut pick = rng.gen_range(0.0..total_w);
                let mut idx = 0;
                for (j, w) in weights.iter().enumerate() {
                    if pick < *w {
                        idx = j;
                        break;
                    }
                    pick -= w;
                }
                let (c, spread) = centers[idx];
                // Box–Muller Gaussian offsets.
                let (u1, u2): (f64, f64) =
                    // lbq-check: allow(local-epsilon) — excludes ln(0), not a tolerance
                    (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..std::f64::consts::TAU));
                let r = spread * (-2.0 * u1.ln()).sqrt();
                universe.clamp_point(c + Vec2::new(r * u2.cos(), r * u2.sin()))
            };
            Item::new(p, i as u64)
        })
        .collect();
    Dataset {
        name: format!("na-like-{n}"),
        items,
        universe,
    }
}

/// The paper's NA cardinality: 569,120 points.
pub fn na_like(seed: u64) -> Dataset {
    let mut d = na_like_sized(569_120, seed);
    d.name = "NA".into();
    d
}

/// Query focus locations distributed like the data: each is a random
/// data point perturbed by a Gaussian-ish jitter of `jitter_frac` of the
/// universe width (the paper's "distribution conforms to the
/// distribution of the data objects").
pub fn query_points(data: &Dataset, count: usize, jitter_frac: f64, seed: u64) -> Vec<Point> {
    assert!(
        !data.is_empty(),
        "cannot sample queries from an empty dataset"
    );
    let mut rng = Xoshiro256ss::seed_from_u64(seed ^ 0xC0FFEE);
    let scale = data.universe.width().max(data.universe.height()) * jitter_frac;
    (0..count)
        .map(|_| {
            let anchor = data.items[rng.gen_range(0..data.items.len())].point;
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let r = rng.gen_range(0.0..scale.max(f64::MIN_POSITIVE));
            data.universe
                .clamp_point(anchor + Vec2::from_angle(theta) * r)
        })
        .collect()
}

/// The paper's workload: 500 data-distributed query points with a 1%
/// jitter.
pub fn paper_query_points(data: &Dataset, seed: u64) -> Vec<Point> {
    query_points(data, 500, 0.01, seed)
}

/// Square window queries of total area `qs` (absolute units²) centered
/// at data-distributed locations.
pub fn window_queries(data: &Dataset, count: usize, qs: f64, seed: u64) -> Vec<Rect> {
    let half = (qs.max(0.0)).sqrt() * 0.5;
    query_points(data, count, 0.01, seed)
        .into_iter()
        .map(|c| Rect::centered(c, half, half))
        .collect()
}

/// Square windows covering `fraction` of the universe area (the paper's
/// "qs = 0.1% of the data space" parameterization for uniform data).
pub fn window_queries_frac(data: &Dataset, count: usize, fraction: f64, seed: u64) -> Vec<Rect> {
    window_queries(data, count, fraction * data.universe.area(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fills_universe() {
        let d = uniform_unit(10_000, 42);
        assert_eq!(d.len(), 10_000);
        for it in &d.items {
            assert!(d.universe.contains(it.point));
        }
        // Rough uniformity: each quadrant holds ~25%.
        let q = Rect::new(0.0, 0.0, 0.5, 0.5);
        let in_q = d.items.iter().filter(|i| q.contains(i.point)).count();
        assert!(
            (in_q as f64 - 2500.0).abs() < 300.0,
            "quadrant count {in_q}"
        );
    }

    #[test]
    fn determinism_by_seed() {
        let a = uniform_unit(100, 7);
        let b = uniform_unit(100, 7);
        let c = uniform_unit(100, 8);
        assert_eq!(a.items[..10].to_vec(), b.items[..10].to_vec());
        assert_ne!(a.items[0].point, c.items[0].point);
    }

    #[test]
    fn gr_like_properties() {
        let d = gr_like_sized(5000, 3);
        assert_eq!(d.len(), 5000);
        assert_eq!(d.universe.width(), 800_000.0);
        for it in &d.items {
            assert!(d.universe.contains_eps(it.point, 1e-6));
        }
        // Clustering: the average nearest-neighbor distance must be far
        // below the uniform expectation (½/√(n/A) ≈ 5.6 km for n=5000).
        let sample: Vec<Point> = d.items.iter().take(300).map(|i| i.point).collect();
        let mut total = 0.0;
        for (i, &p) in sample.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (j, it) in d.items.iter().enumerate() {
                if i != j {
                    best = best.min(p.dist_sq(it.point));
                }
            }
            total += best.sqrt();
        }
        let avg_nn = total / sample.len() as f64;
        assert!(
            avg_nn < 2_000.0,
            "street points must cluster: avg NN {avg_nn} m"
        );
    }

    #[test]
    fn na_like_properties() {
        let d = na_like_sized(20_000, 11);
        assert_eq!(d.len(), 20_000);
        assert_eq!(d.universe.width(), 7_000_000.0);
        for it in &d.items {
            assert!(d.universe.contains_eps(it.point, 1e-6));
        }
        // Skew: the densest 1% of grid cells must hold far more than 1%
        // of the points.
        let g = 50;
        let mut cells = vec![0usize; g * g];
        for it in &d.items {
            let cx = ((it.point.x / d.universe.width() * g as f64) as usize).min(g - 1);
            let cy = ((it.point.y / d.universe.height() * g as f64) as usize).min(g - 1);
            cells[cy * g + cx] += 1;
        }
        cells.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = cells[..g * g / 100].iter().sum();
        assert!(
            top as f64 > 0.10 * d.len() as f64,
            "top 1% of cells hold {top} of {}",
            d.len()
        );
    }

    #[test]
    fn query_points_follow_data() {
        let d = na_like_sized(10_000, 5);
        let qs = paper_query_points(&d, 1);
        assert_eq!(qs.len(), 500);
        for q in &qs {
            assert!(d.universe.contains(*q));
        }
        // Each query must be near some data point (jitter is 1%).
        let max_jitter = d.universe.width() * 0.011;
        for q in qs.iter().take(50) {
            let near = d.items.iter().any(|i| i.point.dist(*q) <= max_jitter);
            assert!(near, "query {q} too far from data");
        }
    }

    #[test]
    fn window_queries_have_requested_area() {
        let d = uniform_unit(1000, 2);
        let ws = window_queries_frac(&d, 20, 0.001, 3);
        assert_eq!(ws.len(), 20);
        for w in &ws {
            assert!((w.area() - 0.001).abs() < 1e-12);
            assert!((w.width() - w.height()).abs() < 1e-12, "square windows");
        }
        // Absolute variant (paper's km² parameterization for real data).
        let gr = gr_like_sized(1000, 1);
        let ws = window_queries(&gr, 5, 1000.0 * 1e6, 9); // 1000 km²
        for w in &ws {
            assert!((w.area() - 1e9).abs() < 1.0);
        }
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let d = gr_like_sized(2000, 9);
        let mut ids: Vec<u64> = d.items.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[1999], 1999);
    }
}
