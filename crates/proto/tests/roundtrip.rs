//! Encode→decode identity for every frame type, over seeded-random
//! frame populations. The identity is stated on *bytes*: decoding a
//! frame and re-encoding the result must reproduce the input
//! bit-for-bit (floats included — the wire carries raw IEEE bit
//! patterns), which is exactly the currency of the byte-identical
//! serving contract.

use lbq_core::{InfluencePair, NnResponse, NnValidity, WindowResponse, WindowValidity};
use lbq_geom::{ConvexPolygon, Point, Rect};
use lbq_obs::StageNanos;
use lbq_proto::{
    decode_frame, encode_frame, Decoded, ErrorFrame, Frame, KnnRequest, KnnResponseFrame,
    WindowRequest, WindowResponseFrame, DEFAULT_CLIENT_MAX_PAYLOAD,
};
use lbq_rng::Xoshiro256ss;
use lbq_rtree::Item;

fn rt_bytes(frame: &Frame) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_frame(frame, &mut bytes).expect("encode");
    // Decode must consume exactly the encoded frame…
    let decoded = match decode_frame(&bytes, DEFAULT_CLIENT_MAX_PAYLOAD).expect("decode") {
        Decoded::Frame { frame, consumed } => {
            assert_eq!(consumed, bytes.len(), "partial consumption");
            frame
        }
        other => panic!("round trip produced {other:?}"),
    };
    // …and re-encoding the decoded frame must reproduce the bytes.
    let mut again = Vec::new();
    encode_frame(&decoded, &mut again).expect("re-encode");
    assert_eq!(bytes, again, "re-encoded bytes differ");
    bytes
}

fn rand_point(rng: &mut Xoshiro256ss) -> Point {
    Point::new(rng.gen_f64() * 100.0 - 50.0, rng.gen_f64() * 100.0 - 50.0)
}

fn rand_item(rng: &mut Xoshiro256ss) -> Item {
    Item::new(rand_point(rng), rng.next_u64())
}

fn rand_items(rng: &mut Xoshiro256ss, n: usize) -> Vec<Item> {
    (0..n).map(|_| rand_item(rng)).collect()
}

fn rand_rect(rng: &mut Xoshiro256ss) -> Rect {
    let x = rng.gen_f64() * 50.0;
    let y = rng.gen_f64() * 50.0;
    Rect {
        xmin: x,
        ymin: y,
        xmax: x + rng.gen_f64() * 50.0 + 0.1,
        ymax: y + rng.gen_f64() * 50.0 + 0.1,
    }
}

/// A guaranteed-valid CCW convex polygon: a regular n-gon, possibly
/// empty (the validity polygon of a clipped-away region).
fn rand_polygon(rng: &mut Xoshiro256ss) -> ConvexPolygon {
    let n = rng.gen_index(9); // 0..=8
    if n < 3 {
        return ConvexPolygon::new(Vec::new());
    }
    let c = rand_point(rng);
    let r = 1.0 + rng.gen_f64() * 10.0;
    let phase = rng.gen_f64();
    let verts: Vec<Point> = (0..n)
        .map(|i| {
            let a = phase + (i as f64) * std::f64::consts::TAU / (n as f64);
            Point::new(c.x + r * a.cos(), c.y + r * a.sin())
        })
        .collect();
    ConvexPolygon::new(verts)
}

fn rand_stages(rng: &mut Xoshiro256ss) -> StageNanos {
    let mut s = StageNanos::default();
    for slot in s.0.iter_mut() {
        *slot = rng.next_u64() >> (rng.gen_index(64));
    }
    s
}

#[test]
fn knn_request_roundtrip() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x5eed_0001);
    for _ in 0..500 {
        let f = Frame::KnnRequest(KnnRequest {
            request_id: rng.next_u64(),
            q: rand_point(&mut rng),
            k: (rng.gen_index(4096) + 1) as u32,
        });
        let bytes = rt_bytes(&f);
        assert_eq!(bytes.len(), 12 + 28, "kNN request is fixed-size");
    }
}

#[test]
fn window_request_roundtrip() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x5eed_0002);
    for _ in 0..500 {
        let f = Frame::WindowRequest(WindowRequest {
            request_id: rng.next_u64(),
            c: rand_point(&mut rng),
            hx: rng.gen_f64() * 10.0 + 1e-3,
            hy: rng.gen_f64() * 10.0 + 1e-3,
        });
        let bytes = rt_bytes(&f);
        assert_eq!(bytes.len(), 12 + 40, "window request is fixed-size");
    }
}

/// A random *decodable* tier: the wire never carries `TreeGroup`
/// (encoders collapse it to `Tree`), so roundtripping draws from the
/// three on-wire values.
fn rand_tier(rng: &mut Xoshiro256ss) -> lbq_proto::CacheTier {
    match rng.gen_index(3) {
        0 => lbq_proto::CacheTier::Tree,
        1 => lbq_proto::CacheTier::Cache,
        _ => lbq_proto::CacheTier::HotVoronoi,
    }
}

#[test]
fn knn_response_roundtrip() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x5eed_0003);
    for round in 0..200 {
        let k = rng.gen_index(12);
        let npairs = rng.gen_index(10);
        let tier = rand_tier(&mut rng);
        let f = Frame::KnnResponse(Box::new(KnnResponseFrame {
            request_id: rng.next_u64(),
            query_id: rng.next_u64(),
            from_cache: tier == lbq_proto::CacheTier::Cache,
            tier,
            stages: rand_stages(&mut rng),
            body: NnResponse {
                query: rand_point(&mut rng),
                result: rand_items(&mut rng, k),
                validity: NnValidity {
                    pairs: (0..npairs)
                        .map(|_| InfluencePair {
                            inner: rand_item(&mut rng),
                            outer: rand_item(&mut rng),
                        })
                        .collect(),
                    polygon: rand_polygon(&mut rng),
                    universe: rand_rect(&mut rng),
                },
                tpnn_queries: rng.gen_index(1000),
            },
        }));
        let bytes = rt_bytes(&f);
        // Spot-check the decoded fields on the first round.
        if round == 0 {
            let Decoded::Frame { frame, .. } =
                decode_frame(&bytes, DEFAULT_CLIENT_MAX_PAYLOAD).expect("decode")
            else {
                panic!("expected frame")
            };
            let Frame::KnnResponse(d) = frame else {
                panic!("expected kNN response")
            };
            let Frame::KnnResponse(orig) = &f else {
                unreachable!()
            };
            assert_eq!(d.request_id, orig.request_id);
            assert_eq!(d.query_id, orig.query_id);
            assert_eq!(d.from_cache, orig.from_cache);
            assert_eq!(d.tier, orig.tier);
            assert_eq!(d.stages.0, orig.stages.0);
            assert_eq!(d.body.result.len(), orig.body.result.len());
            assert_eq!(d.body.tpnn_queries, orig.body.tpnn_queries);
            assert_eq!(
                d.body.validity.polygon.vertices(),
                orig.body.validity.polygon.vertices()
            );
        }
    }
}

#[test]
fn window_response_roundtrip() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x5eed_0004);
    for _ in 0..200 {
        let hx = rng.gen_f64() * 5.0 + 0.1;
        let hy = rng.gen_f64() * 5.0 + 0.1;
        let nres = rng.gen_index(20);
        let ninner = rng.gen_index(5);
        let nouter = rng.gen_index(5);
        let tier = rand_tier(&mut rng);
        let f = Frame::WindowResponse(Box::new(WindowResponseFrame {
            request_id: rng.next_u64(),
            query_id: rng.next_u64(),
            from_cache: tier == lbq_proto::CacheTier::Cache,
            tier,
            stages: rand_stages(&mut rng),
            body: WindowResponse {
                query: rand_point(&mut rng),
                window: rand_rect(&mut rng),
                result: rand_items(&mut rng, nres),
                validity: WindowValidity {
                    half: (hx, hy),
                    inner_rect: rand_rect(&mut rng),
                    inner_influence: rand_items(&mut rng, ninner),
                    outer_influence: rand_items(&mut rng, nouter),
                    conservative: rand_rect(&mut rng),
                },
            },
        }));
        rt_bytes(&f);
    }
}

#[test]
fn error_roundtrip() {
    let mut rng = Xoshiro256ss::seed_from_u64(0x5eed_0005);
    for _ in 0..300 {
        let code = rng.next_u64() as u32;
        let detail: String = (0..rng.gen_index(100))
            .map(|_| char::from(b'a' + (rng.gen_index(26)) as u8))
            .collect();
        let f = Frame::Error(ErrorFrame {
            request_id: rng.next_u64(),
            code,
            detail: detail.clone(),
        });
        let bytes = rt_bytes(&f);
        let Decoded::Frame { frame, .. } =
            decode_frame(&bytes, DEFAULT_CLIENT_MAX_PAYLOAD).expect("decode")
        else {
            panic!("expected frame")
        };
        let Frame::Error(d) = frame else {
            panic!("expected error frame")
        };
        assert_eq!(d.code, code, "unknown codes survive as raw numbers");
        assert_eq!(d.detail, detail);
    }
}

#[test]
fn special_floats_roundtrip_bit_exact() {
    // The wire carries IEEE bit patterns: negative zero, infinities,
    // subnormals and NaN payloads survive untouched.
    for &x in &[
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE / 2.0,
        f64::from_bits(0x7ff8_dead_beef_0001),
        f64::MAX,
    ] {
        let f = Frame::WindowRequest(WindowRequest {
            request_id: 1,
            c: Point::new(x, -x),
            hx: x,
            hy: 1.0,
        });
        let bytes = rt_bytes(&f); // rt_bytes already asserts byte identity
        assert_eq!(bytes.len(), 52);
    }
}

#[test]
fn utf8_details_roundtrip() {
    let f = Frame::Error(ErrorFrame {
        request_id: 9,
        code: 5,
        detail: "polígono inválido — 多角形 🚫".to_string(),
    });
    rt_bytes(&f);
}

#[test]
fn oversized_detail_truncates_on_char_boundary() {
    // 70 000 bytes of 3-byte chars: the encoder must cut ≤ 65 535 on a
    // boundary and still produce a decodable frame.
    let detail = "€".repeat(70_000 / 3);
    let f = Frame::Error(ErrorFrame {
        request_id: 1,
        code: 5,
        detail,
    });
    let mut bytes = Vec::new();
    encode_frame(&f, &mut bytes).expect("encode");
    let Decoded::Frame { frame, .. } =
        decode_frame(&bytes, DEFAULT_CLIENT_MAX_PAYLOAD).expect("decode")
    else {
        panic!("expected frame")
    };
    let Frame::Error(d) = frame else {
        panic!("expected error frame")
    };
    assert!(d.detail.len() <= u16::MAX as usize);
    assert!(d.detail.chars().all(|c| c == '€'));
}
