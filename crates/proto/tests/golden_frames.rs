//! Golden-frame pinning: the annotated hexdumps quoted in
//! `docs/PROTOCOL.md` are parsed out of the document and compared,
//! byte for byte, against what the encoders actually produce for the
//! same canonical frames. A drift in either direction — an encoder
//! change that invalidates the spec, or a spec edit that no longer
//! matches the code — fails this test.
//!
//! Doc format: inside any fenced code block, a line
//! `; golden-frame: <name>` opens a golden block; the following lines
//! are hexdump rows `OFFS  b0 b1 …  | annotation` (4-hex-digit offset,
//! hex byte pairs, optional `|`-prefixed comment). The block ends at
//! the first non-hexdump line.

use lbq_core::{InfluencePair, NnResponse, NnValidity, WindowResponse, WindowValidity};
use lbq_geom::{ConvexPolygon, Point, Rect};
use lbq_obs::{CacheTier, StageNanos};
use lbq_proto::{
    encode_frame, ErrorCode, ErrorFrame, Frame, KnnRequest, KnnResponseFrame, WindowRequest,
    WindowResponseFrame,
};
use std::collections::BTreeMap;

const DOC: &str = include_str!("../../../docs/PROTOCOL.md");

fn item(id: u64, x: f64, y: f64) -> lbq_rtree::Item {
    lbq_rtree::Item::new(Point::new(x, y), id)
}

/// The five canonical frames the spec's hexdumps are rendered from —
/// one per frame type, with deliberately recognizable values.
fn canonical_frames() -> Vec<(&'static str, Frame)> {
    vec![
        (
            "knn-request",
            Frame::KnnRequest(KnnRequest {
                request_id: 7,
                q: Point::new(2.5, -3.25),
                k: 5,
            }),
        ),
        (
            "window-request",
            Frame::WindowRequest(WindowRequest {
                request_id: 8,
                c: Point::new(1.5, 2.5),
                hx: 0.5,
                hy: 0.25,
            }),
        ),
        (
            "knn-response",
            Frame::KnnResponse(Box::new(KnnResponseFrame {
                request_id: 7,
                query_id: 1,
                from_cache: false,
                tier: CacheTier::HotVoronoi,
                stages: StageNanos([1, 2, 3, 4, 5, 6, 7]),
                body: NnResponse {
                    query: Point::new(2.5, -3.25),
                    result: vec![item(11, 1.0, 2.0), item(12, 3.0, 4.0)],
                    validity: NnValidity {
                        pairs: vec![InfluencePair {
                            inner: item(11, 1.0, 2.0),
                            outer: item(13, 5.0, 6.0),
                        }],
                        polygon: ConvexPolygon::new(vec![
                            Point::new(0.0, 0.0),
                            Point::new(4.0, 0.0),
                            Point::new(0.0, 4.0),
                        ]),
                        universe: Rect::new(0.0, 0.0, 10.0, 10.0),
                    },
                    tpnn_queries: 3,
                },
            })),
        ),
        (
            "window-response",
            Frame::WindowResponse(Box::new(WindowResponseFrame {
                request_id: 8,
                query_id: 2,
                from_cache: true,
                tier: CacheTier::Cache,
                stages: StageNanos::default(),
                body: WindowResponse {
                    query: Point::new(1.5, 2.5),
                    window: Rect::new(1.0, 2.25, 2.0, 2.75),
                    result: vec![item(21, 1.5, 2.5)],
                    validity: WindowValidity {
                        half: (0.5, 0.25),
                        inner_rect: Rect::new(1.25, 2.375, 1.75, 2.625),
                        inner_influence: Vec::new(),
                        outer_influence: vec![item(22, 3.0, 3.0)],
                        conservative: Rect::new(1.125, 2.3125, 1.875, 2.6875),
                    },
                },
            })),
        ),
        (
            "error",
            Frame::Error(ErrorFrame::new(
                9,
                ErrorCode::InvalidRequest,
                "k=0 outside 1..=4096",
            )),
        ),
    ]
}

/// Extracts every golden block from the doc: name → (bytes, true when
/// the row offsets were consecutive and correct).
fn parse_golden_blocks(doc: &str) -> BTreeMap<String, Vec<u8>> {
    let mut blocks = BTreeMap::new();
    let mut current: Option<(String, Vec<u8>)> = None;
    for line in doc.lines() {
        let trimmed = line.trim();
        if let Some(name) = trimmed.strip_prefix("; golden-frame:") {
            if let Some((n, b)) = current.take() {
                assert!(blocks.insert(n.clone(), b).is_none(), "duplicate block {n}");
            }
            current = Some((name.trim().to_string(), Vec::new()));
            continue;
        }
        let Some((name, bytes)) = current.as_mut() else {
            continue;
        };
        match parse_hexdump_row(trimmed) {
            Some((offset, row)) => {
                assert_eq!(
                    offset,
                    bytes.len(),
                    "golden-frame {name}: row offset {offset:#06x} does not match the \
                     {} bytes before it",
                    bytes.len()
                );
                bytes.extend_from_slice(&row);
            }
            None => {
                // First non-hexdump line closes the block.
                let (n, b) = current.take().expect("checked above");
                assert!(blocks.insert(n.clone(), b).is_none(), "duplicate block {n}");
            }
        }
    }
    if let Some((n, b)) = current {
        assert!(blocks.insert(n.clone(), b).is_none(), "duplicate block {n}");
    }
    blocks
}

/// One hexdump row: `0018  00 00 00 00 00 00 04 40  | q.x = 2.5`.
/// Returns `None` for anything that is not a row.
fn parse_hexdump_row(line: &str) -> Option<(usize, Vec<u8>)> {
    let data = line.split('|').next().unwrap_or("");
    let mut tokens = data.split_whitespace();
    let offset_tok = tokens.next()?;
    if offset_tok.len() != 4 {
        return None;
    }
    let offset = usize::from_str_radix(offset_tok, 16).ok()?;
    let mut bytes = Vec::new();
    for tok in tokens {
        if tok.len() != 2 {
            return None;
        }
        bytes.push(u8::from_str_radix(tok, 16).ok()?);
    }
    if bytes.is_empty() {
        return None;
    }
    Some((offset, bytes))
}

#[test]
fn doc_hexdumps_pin_encoded_bytes() {
    let blocks = parse_golden_blocks(DOC);
    let frames = canonical_frames();
    // Every canonical frame must be documented…
    for (name, frame) in &frames {
        let mut encoded = Vec::new();
        encode_frame(frame, &mut encoded).expect("encode");
        let doc_bytes = blocks
            .get(*name)
            .unwrap_or_else(|| panic!("docs/PROTOCOL.md has no `; golden-frame: {name}` hexdump"));
        assert_eq!(
            doc_bytes,
            &encoded,
            "golden-frame {name}: the hexdump in docs/PROTOCOL.md no longer matches \
             the encoder (doc {} bytes, encoder {} bytes) — spec drift",
            doc_bytes.len(),
            encoded.len()
        );
    }
    // …and every documented hexdump must correspond to a canonical
    // frame (a renamed or orphaned block is drift too).
    for name in blocks.keys() {
        assert!(
            frames.iter().any(|(n, _)| n == name),
            "docs/PROTOCOL.md documents golden-frame {name:?} which this test does not generate"
        );
    }
    assert_eq!(blocks.len(), frames.len());
}

/// Regeneration helper (not a check): `cargo test -p lbq-proto
/// print_golden_hexdumps -- --ignored --nocapture` prints raw 8-byte
/// hexdump rows for every canonical frame, ready to be reflowed into
/// the field-aligned annotated form the doc uses.
#[test]
#[ignore = "manual helper for regenerating docs/PROTOCOL.md hexdumps"]
fn print_golden_hexdumps() {
    for (name, frame) in canonical_frames() {
        let mut encoded = Vec::new();
        encode_frame(&frame, &mut encoded).expect("encode");
        println!("; golden-frame: {name}   ({} bytes)", encoded.len());
        for (i, chunk) in encoded.chunks(8).enumerate() {
            let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
            println!("{:04x}  {}", i * 8, hex.join(" "));
        }
        println!();
    }
}
