//! Adversarial decoding: every malformed input class from the
//! PROTOCOL.md error registry must map to its documented code — and
//! nothing may panic, whatever the bytes.

use lbq_geom::Point;
use lbq_proto::{
    decode_frame, encode_frame, validate_request, Decoded, ErrorCode, Frame, KnnRequest,
    WindowRequest, DEFAULT_CLIENT_MAX_PAYLOAD, DEFAULT_SERVER_MAX_PAYLOAD, HEADER_LEN, MAGIC,
    MAX_K, VERSION,
};
use lbq_rng::Xoshiro256ss;

fn sample_request_bytes() -> Vec<u8> {
    let mut b = Vec::new();
    encode_frame(
        &Frame::KnnRequest(KnnRequest {
            request_id: 42,
            q: Point::new(2.0, 3.0),
            k: 2,
        }),
        &mut b,
    )
    .expect("encode");
    b
}

fn err_code(buf: &[u8]) -> ErrorCode {
    match decode_frame(buf, DEFAULT_SERVER_MAX_PAYLOAD) {
        Err(e) => e.code,
        other => panic!("expected a wire error, got {other:?}"),
    }
}

#[test]
fn empty_and_truncated_headers_are_incomplete() {
    for n in 0..HEADER_LEN {
        let buf = sample_request_bytes();
        match decode_frame(&buf[..n], DEFAULT_SERVER_MAX_PAYLOAD)
            .expect("short reads are not errors")
        {
            Decoded::Incomplete { need } => assert_eq!(need, HEADER_LEN),
            other => panic!("{n}-byte buffer decoded to {other:?}"),
        }
    }
}

#[test]
fn truncated_payload_is_incomplete_with_exact_need() {
    let full = sample_request_bytes();
    for n in HEADER_LEN..full.len() {
        match decode_frame(&full[..n], DEFAULT_SERVER_MAX_PAYLOAD)
            .expect("short reads are not errors")
        {
            Decoded::Incomplete { need } => assert_eq!(need, full.len()),
            other => panic!("{n}-byte prefix decoded to {other:?}"),
        }
    }
}

#[test]
fn bad_magic_is_fatal() {
    let mut buf = sample_request_bytes();
    buf[0] = b'X';
    let code = err_code(&buf);
    assert_eq!(code, ErrorCode::BadMagic);
    assert!(code.is_fatal());
}

#[test]
fn unknown_version_is_fatal() {
    let mut buf = sample_request_bytes();
    buf[4] = VERSION + 1;
    let code = err_code(&buf);
    assert_eq!(code, ErrorCode::UnsupportedVersion);
    assert!(code.is_fatal());
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut buf = sample_request_bytes();
    // Claim a u32::MAX payload: must be FrameTooLarge, instantly, with
    // no attempt to buffer 4 GiB.
    buf[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let code = err_code(&buf);
    assert_eq!(code, ErrorCode::FrameTooLarge);
    assert!(code.is_fatal());
}

#[test]
fn reserved_bytes_are_ignored_on_receive() {
    let mut buf = sample_request_bytes();
    buf[6] = 0xAB;
    buf[7] = 0xCD;
    match decode_frame(&buf, DEFAULT_SERVER_MAX_PAYLOAD).expect("reserved bytes must not error") {
        Decoded::Frame { frame, .. } => assert_eq!(frame.request_id(), 42),
        other => panic!("decoded to {other:?}"),
    }
}

#[test]
fn unknown_frame_type_is_skippable_with_request_id() {
    let mut buf = sample_request_bytes();
    buf[5] = 0x77;
    match decode_frame(&buf, DEFAULT_SERVER_MAX_PAYLOAD).expect("unknown types are not errors") {
        Decoded::Unknown {
            frame_type,
            request_id,
            consumed,
        } => {
            assert_eq!(frame_type, 0x77);
            assert_eq!(
                request_id, 42,
                "leading u64 is surfaced as the correlation id"
            );
            assert_eq!(consumed, buf.len());
            assert!(!ErrorCode::UnknownFrameType.is_fatal());
        }
        other => panic!("decoded to {other:?}"),
    }
}

#[test]
fn payload_shorter_than_fields_is_malformed() {
    let mut buf = sample_request_bytes();
    // Shrink the declared length below the 28 bytes a kNN request needs
    // (and truncate the buffer to match, so it is "complete").
    buf[8..12].copy_from_slice(&20u32.to_le_bytes());
    buf.truncate(HEADER_LEN + 20);
    assert_eq!(err_code(&buf), ErrorCode::Malformed);
}

#[test]
fn trailing_payload_bytes_are_malformed() {
    let mut buf = sample_request_bytes();
    buf[8..12].copy_from_slice(&33u32.to_le_bytes());
    buf.extend_from_slice(&[0, 0, 0, 0, 0]);
    assert_eq!(err_code(&buf), ErrorCode::Malformed);
}

#[test]
fn adversarial_count_cannot_force_allocation() {
    // Hand-build a kNN response frame whose result count claims
    // 500 million items inside a 100-byte payload.
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(0x20); // KnnResponse
    buf.extend_from_slice(&[0, 0]);
    let payload_len: usize = 8 + 8 + 1 + 1 + 56 + 16 + 4 + 100;
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
    buf.extend_from_slice(&7u64.to_le_bytes()); // request_id
    buf.extend_from_slice(&1u64.to_le_bytes()); // query_id
    buf.push(0); // flags
    buf.push(7); // stage_count
    buf.extend_from_slice(&[0u8; 56]); // stages
    buf.extend_from_slice(&[0u8; 16]); // query point
    buf.extend_from_slice(&0u32.to_le_bytes()); // tpnn_queries
    buf.extend_from_slice(&500_000_000u32.to_le_bytes()); // result count
    buf.extend_from_slice(&[0u8; 96]); // padding to the declared length
    assert_eq!(buf.len(), HEADER_LEN + payload_len);
    assert_eq!(err_code(&buf), ErrorCode::Malformed);
}

#[test]
fn non_convex_polygon_is_malformed() {
    use lbq_core::{NnResponse, NnValidity};
    use lbq_geom::{ConvexPolygon, Rect};
    use lbq_proto::KnnResponseFrame;
    // Encode a valid response, then corrupt the polygon vertex bytes to
    // a self-intersecting (CW) ring.
    let square = vec![
        Point::new(0.0, 0.0),
        Point::new(4.0, 0.0),
        Point::new(4.0, 4.0),
        Point::new(0.0, 4.0),
    ];
    let frame = Frame::KnnResponse(Box::new(KnnResponseFrame {
        request_id: 1,
        query_id: 2,
        from_cache: false,
        tier: lbq_proto::CacheTier::Tree,
        stages: Default::default(),
        body: NnResponse {
            query: Point::new(1.0, 1.0),
            result: Vec::new(),
            validity: NnValidity {
                pairs: Vec::new(),
                polygon: ConvexPolygon::new(square),
                universe: Rect::new(0.0, 0.0, 4.0, 4.0),
            },
            tpnn_queries: 0,
        },
    }));
    let mut bytes = Vec::new();
    encode_frame(&frame, &mut bytes).expect("encode");
    // The vertex list starts after preamble(74) + query(16) + tpnn(4) +
    // result count(4) + universe(32) + vertex count(4). Swap vertices 1
    // and 3 (16 bytes each) to reverse the winding.
    let vstart = HEADER_LEN + 74 + 16 + 4 + 4 + 32 + 4;
    let (a, b) = (vstart + 16, vstart + 48);
    for i in 0..16 {
        bytes.swap(a + i, b + i);
    }
    match decode_frame(&bytes, DEFAULT_CLIENT_MAX_PAYLOAD) {
        Err(e) => {
            assert_eq!(e.code, ErrorCode::Malformed);
            assert!(e.detail.contains("polygon"), "detail: {}", e.detail);
        }
        other => panic!("corrupted polygon decoded to {other:?}"),
    }
}

#[test]
fn bad_flags_and_stage_count_are_malformed() {
    let frame = valid_error_like_knn_response();
    let mut bytes = Vec::new();
    encode_frame(&frame, &mut bytes).expect("encode");
    let mut bad_flags = bytes.clone();
    bad_flags[HEADER_LEN + 16] = 0x82; // flags byte: set an undefined bit
    assert_eq!(err_code(&bad_flags), ErrorCode::Malformed);
    let mut both_tiers = bytes.clone();
    both_tiers[HEADER_LEN + 16] = 0x03; // cache AND hot-voronoi: exclusive
    assert_eq!(err_code(&both_tiers), ErrorCode::Malformed);
    let mut bad_stages = bytes;
    bad_stages[HEADER_LEN + 17] = 6; // stage_count byte (v1 fixes it at 7)
    assert_eq!(err_code(&bad_stages), ErrorCode::Malformed);
}

fn valid_error_like_knn_response() -> Frame {
    use lbq_core::{NnResponse, NnValidity};
    use lbq_geom::{ConvexPolygon, Rect};
    use lbq_proto::KnnResponseFrame;
    Frame::KnnResponse(Box::new(KnnResponseFrame {
        request_id: 1,
        query_id: 2,
        from_cache: true,
        tier: lbq_proto::CacheTier::Cache,
        stages: Default::default(),
        body: NnResponse {
            query: Point::new(1.0, 1.0),
            result: Vec::new(),
            validity: NnValidity {
                pairs: Vec::new(),
                polygon: ConvexPolygon::new(Vec::new()),
                universe: Rect::new(0.0, 0.0, 4.0, 4.0),
            },
            tpnn_queries: 0,
        },
    }))
}

#[test]
fn invalid_utf8_detail_is_malformed() {
    // Error frame with a 2-byte detail of invalid UTF-8.
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(0x3F);
    buf.extend_from_slice(&[0, 0]);
    buf.extend_from_slice(&16u32.to_le_bytes());
    buf.extend_from_slice(&1u64.to_le_bytes());
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.extend_from_slice(&2u16.to_le_bytes());
    buf.extend_from_slice(&[0xFF, 0xFE]);
    assert_eq!(err_code(&buf), ErrorCode::Malformed);
}

#[test]
fn decode_never_panics_on_random_bytes() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xFEED_F00D);
    for round in 0..20_000 {
        let n = rng.gen_index(96);
        let mut buf: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        // Half the rounds: start from a real header so the payload
        // decoders get exercised too.
        if round % 2 == 0 && buf.len() >= 6 {
            buf[..4].copy_from_slice(&MAGIC);
            buf[4] = VERSION;
        }
        let _ = decode_frame(&buf, DEFAULT_SERVER_MAX_PAYLOAD);
    }
}

#[test]
fn decode_never_panics_on_mutated_valid_frames() {
    let mut rng = Xoshiro256ss::seed_from_u64(0xBAD5_EED);
    let base = {
        let frame = valid_error_like_knn_response();
        let mut b = Vec::new();
        encode_frame(&frame, &mut b).expect("encode");
        b
    };
    for _ in 0..20_000 {
        let mut buf = base.clone();
        for _ in 0..1 + rng.gen_index(4) {
            let at = rng.gen_index(buf.len());
            buf[at] = (rng.next_u64() & 0xFF) as u8;
        }
        let _ = decode_frame(&buf, DEFAULT_CLIENT_MAX_PAYLOAD);
    }
}

// ------------------------------------------------------ request validation

#[test]
fn validation_rejects_bad_knn_requests() {
    let ok = |k, q| {
        validate_request(&Frame::KnnRequest(KnnRequest {
            request_id: 1,
            q,
            k,
        }))
    };
    assert!(ok(1, Point::new(0.0, 0.0)).is_ok());
    assert!(ok(MAX_K, Point::new(0.0, 0.0)).is_ok());
    for (k, q) in [
        (0, Point::new(0.0, 0.0)),
        (MAX_K + 1, Point::new(0.0, 0.0)),
        (1, Point::new(f64::NAN, 0.0)),
        (1, Point::new(0.0, f64::INFINITY)),
    ] {
        let e = ok(k, q).expect_err("must be rejected");
        assert_eq!(e.code, ErrorCode::InvalidRequest);
        assert!(!e.code.is_fatal(), "invalid requests keep the connection");
    }
}

#[test]
fn validation_rejects_bad_window_requests() {
    let ok = |c, hx, hy| {
        validate_request(&Frame::WindowRequest(WindowRequest {
            request_id: 1,
            c,
            hx,
            hy,
        }))
    };
    assert!(ok(Point::new(0.0, 0.0), 1.0, 2.0).is_ok());
    for (c, hx, hy) in [
        (Point::new(0.0, 0.0), 0.0, 1.0),
        (Point::new(0.0, 0.0), 1.0, -2.0),
        (Point::new(0.0, 0.0), f64::NAN, 1.0),
        (Point::new(0.0, 0.0), 1.0, f64::INFINITY),
        (Point::new(f64::NAN, 0.0), 1.0, 1.0),
    ] {
        let e = ok(c, hx, hy).expect_err("must be rejected");
        assert_eq!(e.code, ErrorCode::InvalidRequest);
    }
}

#[test]
fn validation_rejects_role_violations_fatally() {
    let e =
        validate_request(&valid_error_like_knn_response()).expect_err("responses are not requests");
    assert_eq!(e.code, ErrorCode::Malformed);
    assert!(e.code.is_fatal());
}
