//! Frame types, their payload layouts, and the top-level
//! encoder/decoder. The byte layout implemented here is specified
//! normatively in `docs/PROTOCOL.md`; the `golden_frames` test pins the
//! two in lockstep, so a change to either without the other is a test
//! failure, not silent drift.

use crate::wire::{
    put_f64, put_item, put_point, put_rect, put_str, put_u16, put_u32, put_u64, Reader, ITEM_LEN,
    PAIR_LEN, POINT_LEN,
};
use crate::{ErrorCode, WireError, HEADER_LEN, MAGIC, VERSION};
use lbq_core::{InfluencePair, NnResponse, NnValidity, WindowResponse, WindowValidity};
use lbq_geom::{ConvexPolygon, Point};
use lbq_obs::{CacheTier, StageNanos, STAGE_COUNT};

/// Frame-type discriminants (header byte 5). Requests flow client →
/// server, responses server → client; a peer receiving a recognized
/// type that is invalid for its role must treat the frame as
/// [`ErrorCode::Malformed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// kNN-with-validity request (client → server).
    KnnRequest = 0x10,
    /// Window-with-validity request (client → server).
    WindowRequest = 0x11,
    /// kNN-with-validity response (server → client).
    KnnResponse = 0x20,
    /// Window-with-validity response (server → client).
    WindowResponse = 0x21,
    /// Error report (server → client).
    Error = 0x3F,
}

impl FrameType {
    /// Maps a header type byte back to a known frame type.
    pub fn from_u8(v: u8) -> Option<FrameType> {
        match v {
            0x10 => Some(FrameType::KnnRequest),
            0x11 => Some(FrameType::WindowRequest),
            0x20 => Some(FrameType::KnnResponse),
            0x21 => Some(FrameType::WindowResponse),
            0x3F => Some(FrameType::Error),
            _ => None,
        }
    }
}

/// Payload of a [`FrameType::KnnRequest`] (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Query focus (the client's position).
    pub q: Point,
    /// Number of neighbors (`1..=MAX_K` — see [`crate::MAX_K`]).
    pub k: u32,
}

/// Payload of a [`FrameType::WindowRequest`] (40 bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    /// Window center (the client's position).
    pub c: Point,
    /// Half-width (must be positive and finite).
    pub hx: f64,
    /// Half-height (must be positive and finite).
    pub hy: f64,
}

/// Payload of a [`FrameType::KnnResponse`]: the correlation ids, the
/// serving metadata, and the paper's full kNN answer — result set,
/// influence pairs, and clipped validity polygon.
#[derive(Debug, Clone)]
pub struct KnnResponseFrame {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// Engine-assigned query id (`lbq_serve::QueryResp::query_id`).
    pub query_id: u64,
    /// `true` when the answer came from the server's validity-region
    /// cache (flags bit 0). Always equal to `tier == CacheTier::Cache`.
    pub from_cache: bool,
    /// Which serving tier produced the answer (flags bits 0–1). The
    /// wire deliberately collapses [`CacheTier::TreeGroup`] into
    /// [`CacheTier::Tree`]: group membership is scheduling-dependent,
    /// and response bytes must stay a pure function of the request.
    /// Decoded values are therefore `Tree`, `Cache`, or `HotVoronoi`.
    pub tier: CacheTier,
    /// Per-stage latency attribution; all-zero unless the server is
    /// recording ([`lbq_obs::init_recorder`]).
    pub stages: StageNanos,
    /// The answer itself, exactly as produced in-process.
    pub body: NnResponse,
}

/// Payload of a [`FrameType::WindowResponse`]: correlation ids, serving
/// metadata, and the window answer with its rectilinear validity
/// structure.
#[derive(Debug, Clone)]
pub struct WindowResponseFrame {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// Engine-assigned query id (`lbq_serve::QueryResp::query_id`).
    pub query_id: u64,
    /// `true` when the answer came from the server's validity-region
    /// cache (flags bit 0). Always equal to `tier == CacheTier::Cache`.
    pub from_cache: bool,
    /// Which serving tier produced the answer (flags bits 0–1; see
    /// [`KnnResponseFrame::tier`] for the `TreeGroup` collapse).
    pub tier: CacheTier,
    /// Per-stage latency attribution; all-zero unless recording is on.
    pub stages: StageNanos,
    /// The answer itself, exactly as produced in-process.
    pub body: WindowResponse,
}

/// Payload of a [`FrameType::Error`]. `code` stays a raw `u32` so a
/// v1 client can carry codes minted by newer servers; decode the known
/// registry with [`ErrorFrame::error_code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Correlation id of the offending request, or 0 when the error is
    /// not attributable to one (e.g. a framing error).
    pub request_id: u64,
    /// Numeric error code (see [`ErrorCode`] for the v1 registry).
    pub code: u32,
    /// Human-readable diagnostic detail (not part of the contract).
    pub detail: String,
}

impl ErrorFrame {
    /// Builds an error frame from a registry code.
    pub fn new(request_id: u64, code: ErrorCode, detail: impl Into<String>) -> ErrorFrame {
        ErrorFrame {
            request_id,
            code: code as u32,
            detail: detail.into(),
        }
    }

    /// The registry entry for `code`, if this implementation knows it.
    pub fn error_code(&self) -> Option<ErrorCode> {
        ErrorCode::from_u32(self.code)
    }
}

/// One decoded protocol frame.
#[derive(Debug, Clone)]
pub enum Frame {
    /// A kNN-with-validity request.
    KnnRequest(KnnRequest),
    /// A window-with-validity request.
    WindowRequest(WindowRequest),
    /// A kNN-with-validity response (boxed: the dominant payload).
    KnnResponse(Box<KnnResponseFrame>),
    /// A window-with-validity response (boxed: the dominant payload).
    WindowResponse(Box<WindowResponseFrame>),
    /// An error report.
    Error(ErrorFrame),
}

impl Frame {
    /// The frame-type discriminant this frame encodes as.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::KnnRequest(_) => FrameType::KnnRequest,
            Frame::WindowRequest(_) => FrameType::WindowRequest,
            Frame::KnnResponse(_) => FrameType::KnnResponse,
            Frame::WindowResponse(_) => FrameType::WindowResponse,
            Frame::Error(_) => FrameType::Error,
        }
    }

    /// The correlation id carried by this frame.
    pub fn request_id(&self) -> u64 {
        match self {
            Frame::KnnRequest(f) => f.request_id,
            Frame::WindowRequest(f) => f.request_id,
            Frame::KnnResponse(f) => f.request_id,
            Frame::WindowResponse(f) => f.request_id,
            Frame::Error(f) => f.request_id,
        }
    }
}

/// Outcome of [`decode_frame`] on a (possibly partial) byte buffer.
#[derive(Debug)]
pub enum Decoded {
    /// A complete, recognized frame; `consumed` bytes were used.
    Frame {
        /// The decoded frame.
        frame: Frame,
        /// Total bytes consumed (header + payload).
        consumed: usize,
    },
    /// A frame with a valid v1 header but an unrecognized type byte —
    /// the forward-compatibility case. The receiver must skip
    /// `consumed` bytes and may answer with
    /// [`ErrorCode::UnknownFrameType`]; the connection stays usable
    /// because the length prefix delimits the unknown payload.
    Unknown {
        /// The unrecognized type byte.
        frame_type: u8,
        /// Leading `u64` of the payload when one is present, else 0 —
        /// by convention every future frame type leads with its
        /// correlation id, so the error reply can carry it.
        request_id: u64,
        /// Total bytes to skip (header + payload).
        consumed: usize,
    },
    /// Not enough bytes buffered yet: read until at least `need` total
    /// bytes are available and retry.
    Incomplete {
        /// Minimum total buffer length required to make progress.
        need: usize,
    },
}

/// Decodes the first frame of `buf`.
///
/// `max_payload` caps the declared payload length *before* any
/// allocation (receivers pick their role's cap —
/// [`crate::DEFAULT_SERVER_MAX_PAYLOAD`] /
/// [`crate::DEFAULT_CLIENT_MAX_PAYLOAD`]). Errors are protocol
/// violations; [`ErrorCode::is_fatal`] says whether the stream can
/// survive them. The function never panics, whatever the input bytes.
pub fn decode_frame(buf: &[u8], max_payload: u32) -> Result<Decoded, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(Decoded::Incomplete { need: HEADER_LEN });
    }
    if buf[..4] != MAGIC {
        return Err(WireError::new(
            ErrorCode::BadMagic,
            format!(
                "bad magic {:02x} {:02x} {:02x} {:02x} (want 4c 42 51 31): stream out of sync",
                buf[0], buf[1], buf[2], buf[3]
            ),
        ));
    }
    let version = buf[4];
    if version != VERSION {
        return Err(WireError::new(
            ErrorCode::UnsupportedVersion,
            format!("protocol version {version} not supported (this peer speaks {VERSION})"),
        ));
    }
    let frame_type = buf[5];
    // Bytes 6–7 are reserved: senders zero them, receivers ignore them
    // (a future minor revision may assign them without breaking v1
    // decoders).
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > max_payload {
        return Err(WireError::new(
            ErrorCode::FrameTooLarge,
            format!("declared payload of {len} bytes exceeds this receiver's cap of {max_payload}"),
        ));
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(Decoded::Incomplete { need: total });
    }
    let payload = &buf[HEADER_LEN..total];
    let mut r = Reader::new(payload);
    let frame = match FrameType::from_u8(frame_type) {
        Some(FrameType::KnnRequest) => Frame::KnnRequest(decode_knn_request(&mut r)?),
        Some(FrameType::WindowRequest) => Frame::WindowRequest(decode_window_request(&mut r)?),
        Some(FrameType::KnnResponse) => Frame::KnnResponse(Box::new(decode_knn_response(&mut r)?)),
        Some(FrameType::WindowResponse) => {
            Frame::WindowResponse(Box::new(decode_window_response(&mut r)?))
        }
        Some(FrameType::Error) => Frame::Error(decode_error(&mut r)?),
        None => {
            let request_id = if payload.len() >= 8 {
                u64::from_le_bytes([
                    payload[0], payload[1], payload[2], payload[3], payload[4], payload[5],
                    payload[6], payload[7],
                ])
            } else {
                0
            };
            return Ok(Decoded::Unknown {
                frame_type,
                request_id,
                consumed: total,
            });
        }
    };
    r.finish()?;
    Ok(Decoded::Frame {
        frame,
        consumed: total,
    })
}

/// Encodes `frame`, appending header + payload to `out`. The only
/// failure is a payload exceeding the `u32` length field (a >4 GiB
/// response — out of contract); `out` is left untouched in that case.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) -> Result<(), WireError> {
    match frame {
        Frame::KnnRequest(f) => encode_with(out, FrameType::KnnRequest, |p| {
            put_u64(p, f.request_id);
            put_point(p, f.q);
            put_u32(p, f.k);
        }),
        Frame::WindowRequest(f) => encode_with(out, FrameType::WindowRequest, |p| {
            put_u64(p, f.request_id);
            put_point(p, f.c);
            put_f64(p, f.hx);
            put_f64(p, f.hy);
        }),
        Frame::KnnResponse(f) => encode_with(out, FrameType::KnnResponse, |p| {
            put_knn_response(p, f.request_id, f.query_id, f.tier, &f.stages, &f.body);
        }),
        Frame::WindowResponse(f) => encode_with(out, FrameType::WindowResponse, |p| {
            put_window_response(p, f.request_id, f.query_id, f.tier, &f.stages, &f.body);
        }),
        Frame::Error(f) => encode_with(out, FrameType::Error, |p| {
            put_u64(p, f.request_id);
            put_u32(p, f.code);
            put_str(p, &f.detail);
        }),
    }
}

/// Writes the 12-byte header with a placeholder length, runs `payload`,
/// then patches the true length in. Rolls `out` back on overflow.
pub(crate) fn encode_with(
    out: &mut Vec<u8>,
    ty: FrameType,
    payload: impl FnOnce(&mut Vec<u8>),
) -> Result<(), WireError> {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(ty as u8);
    put_u16(out, 0); // reserved
    let len_at = out.len();
    put_u32(out, 0); // patched below
    payload(out);
    let plen = out.len() - len_at - 4;
    let Ok(plen32) = u32::try_from(plen) else {
        out.truncate(start);
        return Err(WireError::new(
            ErrorCode::FrameTooLarge,
            format!("payload of {plen} bytes exceeds the u32 length field"),
        ));
    };
    out[len_at..len_at + 4].copy_from_slice(&plen32.to_le_bytes());
    Ok(())
}

// ---------------------------------------------------------------- payloads

fn decode_knn_request(r: &mut Reader<'_>) -> Result<KnnRequest, WireError> {
    Ok(KnnRequest {
        request_id: r.u64("request_id")?,
        q: r.point("q")?,
        k: r.u32("k")?,
    })
}

fn decode_window_request(r: &mut Reader<'_>) -> Result<WindowRequest, WireError> {
    Ok(WindowRequest {
        request_id: r.u64("request_id")?,
        c: r.point("c")?,
        hx: r.f64("hx")?,
        hy: r.f64("hy")?,
    })
}

/// Flags bit 0: the answer came from the validity-region cache.
const FLAG_FROM_CACHE: u8 = 0x01;
/// Flags bit 1: the answer came from the hot-tile Voronoi fast path.
const FLAG_HOT_VORONOI: u8 = 0x02;

/// The flags byte a serving tier encodes as. `Tree` and `TreeGroup`
/// both map to `0x00`: whether a kNN miss was answered solo or in a
/// shared-frontier group is scheduling-dependent, and the response
/// bytes must stay a pure function of the request (the byte-identical
/// contract, see `docs/PROTOCOL.md`).
fn tier_flags(tier: CacheTier) -> u8 {
    match tier {
        CacheTier::Cache => FLAG_FROM_CACHE,
        CacheTier::HotVoronoi => FLAG_HOT_VORONOI,
        CacheTier::Tree | CacheTier::TreeGroup => 0,
    }
}

/// Decodes the shared response preamble: correlation ids, flags, and
/// the stage-attribution block.
fn decode_preamble(r: &mut Reader<'_>) -> Result<(u64, u64, CacheTier, StageNanos), WireError> {
    let request_id = r.u64("request_id")?;
    let query_id = r.u64("query_id")?;
    let flags = r.u8("flags")?;
    let tier = match flags {
        0 => CacheTier::Tree,
        FLAG_FROM_CACHE => CacheTier::Cache,
        FLAG_HOT_VORONOI => CacheTier::HotVoronoi,
        _ => {
            return Err(WireError::new(
                ErrorCode::Malformed,
                format!(
                    "invalid response flags 0x{flags:02x} (v1 defines bits 0-1,                      mutually exclusive)"
                ),
            ))
        }
    };
    let stage_count = r.u8("stage_count")?;
    if stage_count as usize != STAGE_COUNT {
        return Err(WireError::new(
            ErrorCode::Malformed,
            format!("stage_count {stage_count} (v1 fixes it at {STAGE_COUNT})"),
        ));
    }
    let mut stages = StageNanos::default();
    for slot in stages.0.iter_mut() {
        *slot = r.u64("stage nanoseconds")?;
    }
    Ok((request_id, query_id, tier, stages))
}

fn put_preamble(
    out: &mut Vec<u8>,
    request_id: u64,
    query_id: u64,
    tier: CacheTier,
    stages: &StageNanos,
) {
    put_u64(out, request_id);
    put_u64(out, query_id);
    out.push(tier_flags(tier));
    out.push(STAGE_COUNT as u8);
    for &ns in stages.0.iter() {
        put_u64(out, ns);
    }
}

fn decode_knn_response(r: &mut Reader<'_>) -> Result<KnnResponseFrame, WireError> {
    let (request_id, query_id, tier, stages) = decode_preamble(r)?;
    let query = r.point("query")?;
    let tpnn_queries = r.u32("tpnn_queries")? as usize;
    let n = r.count(ITEM_LEN, "result")?;
    let mut result = Vec::with_capacity(n);
    for _ in 0..n {
        result.push(r.item("result item")?);
    }
    let universe = r.rect("universe")?;
    let nv = r.count(POINT_LEN, "polygon vertices")?;
    let mut vertices = Vec::with_capacity(nv);
    for _ in 0..nv {
        vertices.push(r.point("polygon vertex")?);
    }
    let polygon = ConvexPolygon::try_new(vertices).map_err(|e| {
        WireError::new(
            ErrorCode::Malformed,
            format!("invalid validity polygon: {e}"),
        )
    })?;
    let np = r.count(PAIR_LEN, "influence pairs")?;
    let mut pairs = Vec::with_capacity(np);
    for _ in 0..np {
        pairs.push(InfluencePair {
            inner: r.item("pair inner")?,
            outer: r.item("pair outer")?,
        });
    }
    Ok(KnnResponseFrame {
        request_id,
        query_id,
        from_cache: tier == CacheTier::Cache,
        tier,
        stages,
        body: NnResponse {
            query,
            result,
            validity: NnValidity {
                pairs,
                polygon,
                universe,
            },
            tpnn_queries,
        },
    })
}

/// Encodes a kNN response payload from borrowed parts — the server's
/// zero-copy path (no intermediate frame struct, no clone of the
/// answer).
pub(crate) fn put_knn_response(
    out: &mut Vec<u8>,
    request_id: u64,
    query_id: u64,
    tier: CacheTier,
    stages: &StageNanos,
    body: &NnResponse,
) {
    put_preamble(out, request_id, query_id, tier, stages);
    put_point(out, body.query);
    put_u32(out, u32::try_from(body.tpnn_queries).unwrap_or(u32::MAX));
    put_u32(out, body.result.len() as u32);
    for it in &body.result {
        put_item(out, it);
    }
    put_rect(out, &body.validity.universe);
    let vs = body.validity.polygon.vertices();
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_point(out, v);
    }
    put_u32(out, body.validity.pairs.len() as u32);
    for p in &body.validity.pairs {
        put_item(out, &p.inner);
        put_item(out, &p.outer);
    }
}

fn decode_window_response(r: &mut Reader<'_>) -> Result<WindowResponseFrame, WireError> {
    let (request_id, query_id, tier, stages) = decode_preamble(r)?;
    let query = r.point("query")?;
    let window = r.rect("window")?;
    let n = r.count(ITEM_LEN, "result")?;
    let mut result = Vec::with_capacity(n);
    for _ in 0..n {
        result.push(r.item("result item")?);
    }
    let hx = r.f64("half.hx")?;
    let hy = r.f64("half.hy")?;
    let inner_rect = r.rect("inner_rect")?;
    let ni = r.count(ITEM_LEN, "inner influence")?;
    let mut inner_influence = Vec::with_capacity(ni);
    for _ in 0..ni {
        inner_influence.push(r.item("inner influence item")?);
    }
    let no = r.count(ITEM_LEN, "outer influence")?;
    let mut outer_influence = Vec::with_capacity(no);
    for _ in 0..no {
        outer_influence.push(r.item("outer influence item")?);
    }
    let conservative = r.rect("conservative")?;
    Ok(WindowResponseFrame {
        request_id,
        query_id,
        from_cache: tier == CacheTier::Cache,
        tier,
        stages,
        body: WindowResponse {
            query,
            window,
            result,
            validity: WindowValidity {
                half: (hx, hy),
                inner_rect,
                inner_influence,
                outer_influence,
                conservative,
            },
        },
    })
}

/// Encodes a window response payload from borrowed parts — the server's
/// zero-copy path.
pub(crate) fn put_window_response(
    out: &mut Vec<u8>,
    request_id: u64,
    query_id: u64,
    tier: CacheTier,
    stages: &StageNanos,
    body: &WindowResponse,
) {
    put_preamble(out, request_id, query_id, tier, stages);
    put_point(out, body.query);
    put_rect(out, &body.window);
    put_u32(out, body.result.len() as u32);
    for it in &body.result {
        put_item(out, it);
    }
    put_f64(out, body.validity.half.0);
    put_f64(out, body.validity.half.1);
    put_rect(out, &body.validity.inner_rect);
    put_u32(out, body.validity.inner_influence.len() as u32);
    for it in &body.validity.inner_influence {
        put_item(out, it);
    }
    put_u32(out, body.validity.outer_influence.len() as u32);
    for it in &body.validity.outer_influence {
        put_item(out, it);
    }
    put_rect(out, &body.validity.conservative);
}

fn decode_error(r: &mut Reader<'_>) -> Result<ErrorFrame, WireError> {
    Ok(ErrorFrame {
        request_id: r.u64("request_id")?,
        code: r.u32("code")?,
        detail: r.str("detail")?,
    })
}
