//! Bounds-checked little-endian scalar encoding.
//!
//! Every multi-byte integer on the wire is little-endian; every `f64`
//! is its IEEE-754 bit pattern, little-endian (`f64::to_le_bytes`).
//! Decoding never panics: the [`Reader`] returns a
//! [`WireError`] with [`ErrorCode::Malformed`] on any out-of-bounds
//! read, and re-encoding a decoded value reproduces the input bytes
//! bit-for-bit (floats round-trip through `from_le_bytes`, which
//! preserves the exact bit pattern, NaN payloads included).

use crate::{ErrorCode, WireError};
use lbq_geom::{Point, Rect};
use lbq_rtree::Item;

/// A cursor over one frame payload. All reads are bounds-checked and
/// advance the cursor; [`Reader::finish`] asserts full consumption so
/// trailing garbage inside a declared payload is rejected.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(
                ErrorCode::Malformed,
                format!(
                    "payload truncated reading {what}: need {n} bytes, have {}",
                    self.remaining()
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take_bytes(1, what)?[0])
    }

    pub(crate) fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take_bytes(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take_bytes(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take_bytes(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        let b = self.take_bytes(8, what)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn point(&mut self, what: &str) -> Result<Point, WireError> {
        Ok(Point::new(self.f64(what)?, self.f64(what)?))
    }

    pub(crate) fn rect(&mut self, what: &str) -> Result<Rect, WireError> {
        let xmin = self.f64(what)?;
        let ymin = self.f64(what)?;
        let xmax = self.f64(what)?;
        let ymax = self.f64(what)?;
        Ok(Rect {
            xmin,
            ymin,
            xmax,
            ymax,
        })
    }

    pub(crate) fn item(&mut self, what: &str) -> Result<Item, WireError> {
        let id = self.u64(what)?;
        let point = self.point(what)?;
        Ok(Item { point, id })
    }

    /// Reads a `u32` element count and proves the declared payload can
    /// actually hold `count` elements of `elem_len` bytes before any
    /// allocation happens — an adversarial length prefix can therefore
    /// never cause an oversized reservation.
    pub(crate) fn count(&mut self, elem_len: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        let need = (n as u64).saturating_mul(elem_len as u64);
        if need > self.remaining() as u64 {
            return Err(WireError::new(
                ErrorCode::Malformed,
                format!(
                    "{what} count {n} needs {need} bytes but only {} remain in the payload",
                    self.remaining()
                ),
            ));
        }
        Ok(n)
    }

    /// Reads a `u16`-length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self, what: &str) -> Result<String, WireError> {
        let n = self.u16(what)? as usize;
        let b = self.take_bytes(n, what)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| WireError::new(ErrorCode::Malformed, format!("{what} is not valid UTF-8")))
    }

    /// Asserts the whole payload was consumed: a well-formed frame has
    /// no slack between its last field and its declared length.
    pub(crate) fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::new(
                ErrorCode::Malformed,
                format!(
                    "{} trailing bytes after the last payload field",
                    self.remaining()
                ),
            ));
        }
        Ok(())
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_point(out: &mut Vec<u8>, p: Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

pub(crate) fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_f64(out, r.xmin);
    put_f64(out, r.ymin);
    put_f64(out, r.xmax);
    put_f64(out, r.ymax);
}

pub(crate) fn put_item(out: &mut Vec<u8>, it: &Item) {
    put_u64(out, it.id);
    put_point(out, it.point);
}

/// Writes a `u16`-length-prefixed UTF-8 string, truncating on a char
/// boundary if `s` exceeds the 65 535-byte wire limit (error details
/// are diagnostics, not data — truncation beats an unencodable frame).
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    let mut end = s.len().min(u16::MAX as usize);
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    let bytes = &s.as_bytes()[..end];
    put_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

/// Wire size of one [`Item`] (`id:u64` + `point:2×f64`).
pub(crate) const ITEM_LEN: usize = 24;
/// Wire size of one [`Point`] (`2×f64`).
pub(crate) const POINT_LEN: usize = 16;
/// Wire size of one influence pair (`inner:Item` + `outer:Item`).
pub(crate) const PAIR_LEN: usize = 2 * ITEM_LEN;
