//! # lbq-proto — the binary wire format
//!
//! The paper's central artifact — the answer *plus* the validity region
//! and influence set — is explicitly designed as a compact client
//! payload (its Section 1 argument: ship the region once, absorb the
//! client's repeat queries for free). This crate is that payload's wire
//! form: a versioned, length-prefixed, little-endian binary framing
//! shared by the TCP front-end (`lbq-net`) and its clients.
//!
//! **The normative spec lives in `docs/PROTOCOL.md`** (repository
//! root) — frame layout tables with byte offsets, the error-code
//! registry, version negotiation, forward-compatibility rules, and an
//! annotated hexdump of a full kNN exchange. This crate implements that
//! document; the `golden_frames` test decodes the hexdumps quoted in
//! the document and pins them against these encoders, so the two cannot
//! drift apart silently.
//!
//! ## Shape of a frame
//!
//! ```text
//! 0         4    5     6         8         12
//! +---------+----+-----+---------+---------+------------------+
//! | "LBQ1"  | v  | type| reserved| len u32 | payload (len B)  |
//! +---------+----+-----+---------+---------+------------------+
//! ```
//!
//! Requests ([`KnnRequest`], [`WindowRequest`]) are fixed-size and
//! carry a client-chosen `request_id`; responses echo it together with
//! the engine's `query_id`, the serving-tier flags (tree / region
//! cache / hot-tile Voronoi, [`CacheTier`]), the per-stage latency
//! attribution ([`lbq_obs::StageNanos`]), and the full answer —
//! result items, validity-region vertices, and the influence set.
//! Errors carry a stable numeric [`ErrorCode`].
//!
//! ## Guarantees
//!
//! * **No panics.** [`decode_frame`] is total: any byte string produces
//!   a frame, an incompleteness hint, or a [`WireError`] — fuzzed by
//!   the adversarial decode tests.
//! * **Bounded allocation.** Element counts are validated against the
//!   declared payload length (itself capped by the receiver) before any
//!   reservation.
//! * **Byte-identical serving.** [`encode_query_response`] is a pure
//!   function of `(request_id, response)`: what a socket client
//!   receives is bit-for-bit the encoding of the in-process
//!   [`lbq_serve::QueryResp`].
//! * **Forward compatibility.** Unknown frame types decode to
//!   [`Decoded::Unknown`] with a skip length, so a v1 peer survives
//!   frames minted by future revisions; unknown error codes stay
//!   readable as numbers.

mod convert;
mod frames;
mod wire;

pub use convert::{
    encode_error, encode_query_response, query_request, request_query, validate_request,
};
pub use frames::{
    decode_frame, encode_frame, Decoded, ErrorFrame, Frame, FrameType, KnnRequest,
    KnnResponseFrame, WindowRequest, WindowResponseFrame,
};
pub use lbq_obs::CacheTier;

/// The 4-byte frame magic: ASCII `LBQ1` (`4c 42 51 31`).
pub const MAGIC: [u8; 4] = *b"LBQ1";

/// Protocol version this implementation speaks (header byte 4).
pub const VERSION: u8 = 1;

/// Fixed size of the frame header (magic + version + type + reserved +
/// payload length).
pub const HEADER_LEN: usize = 12;

/// Largest `k` a v1 server accepts in a kNN request — bounds the
/// response size a single 28-byte request can demand.
pub const MAX_K: u32 = 4096;

/// Default payload cap for the *server* side of a connection. Requests
/// are fixed-size (≤ 40 bytes); the headroom exists only so future
/// request types (forward compatibility) can be skipped rather than
/// torn down.
pub const DEFAULT_SERVER_MAX_PAYLOAD: u32 = 4096;

/// Default payload cap for the *client* side of a connection —
/// responses scale with `k`, the window population, and the influence
/// set, so the cap is generous.
pub const DEFAULT_CLIENT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// The v1 error-code registry (the `code` field of an error frame).
/// Codes are stable: new codes may be added, existing numbers are never
/// reused or renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum ErrorCode {
    /// Frame did not start with [`MAGIC`] — the stream is out of sync.
    BadMagic = 1,
    /// Header version byte is not one this peer speaks.
    UnsupportedVersion = 2,
    /// Header type byte names no frame this peer knows (recoverable:
    /// the length prefix delimits the unknown payload).
    UnknownFrameType = 3,
    /// Declared payload length exceeds the receiver's cap.
    FrameTooLarge = 4,
    /// Payload contents violate the layout of their frame type
    /// (truncated fields, trailing bytes, invalid counts or flags, a
    /// non-convex validity polygon, a role violation).
    Malformed = 5,
    /// The request decoded but is semantically invalid (non-finite
    /// coordinates, `k` out of `1..=`[`MAX_K`], non-positive window
    /// extents). Recoverable: only the offending request is rejected.
    InvalidRequest = 6,
    /// The connection exceeded its in-flight request limit.
    TooManyInFlight = 7,
    /// The server is shutting down and will not answer this request.
    ShuttingDown = 8,
}

impl ErrorCode {
    /// Maps a wire code back into the registry (`None` for codes minted
    /// after this build).
    pub fn from_u32(v: u32) -> Option<ErrorCode> {
        match v {
            1 => Some(ErrorCode::BadMagic),
            2 => Some(ErrorCode::UnsupportedVersion),
            3 => Some(ErrorCode::UnknownFrameType),
            4 => Some(ErrorCode::FrameTooLarge),
            5 => Some(ErrorCode::Malformed),
            6 => Some(ErrorCode::InvalidRequest),
            7 => Some(ErrorCode::TooManyInFlight),
            8 => Some(ErrorCode::ShuttingDown),
            _ => None,
        }
    }

    /// `true` when the error poisons the whole byte stream (framing can
    /// no longer be trusted) and the connection must be torn down.
    /// Recoverable codes ([`ErrorCode::UnknownFrameType`],
    /// [`ErrorCode::InvalidRequest`]) reject one frame and keep the
    /// connection.
    pub fn is_fatal(self) -> bool {
        !matches!(
            self,
            ErrorCode::UnknownFrameType | ErrorCode::InvalidRequest
        )
    }

    /// The registry name, for diagnostics (`bad-magic`, `malformed`, …).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::UnknownFrameType => "unknown-frame-type",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::Malformed => "malformed",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::TooManyInFlight => "too-many-in-flight",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

/// A protocol violation detected while encoding or decoding: the
/// registry code that describes it plus a human-readable detail. This
/// is what a server copies into the error frame it answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Registry classification of the violation.
    pub code: ErrorCode,
    /// Diagnostic detail (quoted in the error frame; not contractual).
    pub detail: String,
}

impl WireError {
    /// Builds an error from its registry code and detail.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> WireError {
        WireError {
            code,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}): {}",
            self.code.name(),
            self.code as u32,
            self.detail
        )
    }
}

impl std::error::Error for WireError {}
