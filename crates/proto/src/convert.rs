//! Interop with `lbq-serve`: request frames ↔ [`QueryReq`], and the
//! server's zero-copy response encoder over [`QueryResp`].
//!
//! The **byte-identical contract**: [`encode_query_response`] is a pure
//! function of `(request_id, resp)`, so a socket response equals, byte
//! for byte, the encoding of the in-process [`QueryResp`] for the same
//! request — the loopback fleet harness and `ci.sh` assert exactly
//! that. (`QueryResp::worker` and `QueryResp::latency_ns` are
//! deliberately *not* on the wire: they are scheduling-dependent
//! serving metadata, not part of the answer.)

use crate::frames::{encode_frame, encode_with, Frame, KnnRequest, WindowRequest};
use crate::{ErrorCode, WireError, MAX_K};
use lbq_serve::{QueryAnswer, QueryReq, QueryResp};

/// Semantic validation of a decoded request frame, applied by the
/// server *before* the request reaches the engine. Violations map to
/// [`ErrorCode::InvalidRequest`] — a recoverable error: the request is
/// rejected, the connection survives.
///
/// Checks (v1): all coordinates finite; kNN `k` in `1..=`[`MAX_K`];
/// window half-extents positive and finite. Response and error frames
/// are not requests and are rejected as [`ErrorCode::Malformed`]
/// (role violation — fatal).
pub fn validate_request(frame: &Frame) -> Result<(), WireError> {
    let invalid = |detail: String| WireError::new(ErrorCode::InvalidRequest, detail);
    match frame {
        Frame::KnnRequest(KnnRequest { q, k, .. }) => {
            if !q.x.is_finite() || !q.y.is_finite() {
                return Err(invalid(format!(
                    "kNN focus ({}, {}) is not finite",
                    q.x, q.y
                )));
            }
            if *k == 0 || *k > MAX_K {
                return Err(invalid(format!("k={k} outside 1..={MAX_K}")));
            }
            Ok(())
        }
        Frame::WindowRequest(WindowRequest { c, hx, hy, .. }) => {
            if !c.x.is_finite() || !c.y.is_finite() {
                return Err(invalid(format!(
                    "window center ({}, {}) is not finite",
                    c.x, c.y
                )));
            }
            if !(hx.is_finite() && hy.is_finite() && *hx > 0.0 && *hy > 0.0) {
                return Err(invalid(format!(
                    "window half-extents ({hx}, {hy}) must be positive and finite"
                )));
            }
            Ok(())
        }
        _ => Err(WireError::new(
            ErrorCode::Malformed,
            format!(
                "frame type {:?} is not a request (role violation)",
                frame.frame_type()
            ),
        )),
    }
}

/// The engine request a (validated) request frame asks for, with its
/// correlation id. `None` for non-request frames.
pub fn request_query(frame: &Frame) -> Option<(u64, QueryReq)> {
    match frame {
        Frame::KnnRequest(KnnRequest { request_id, q, k }) => {
            Some((*request_id, QueryReq::knn(*q, *k as usize)))
        }
        Frame::WindowRequest(WindowRequest {
            request_id,
            c,
            hx,
            hy,
        }) => Some((*request_id, QueryReq::window(*c, *hx, *hy))),
        _ => None,
    }
}

/// The request frame a client sends for `req`, under correlation id
/// `request_id`. (`k` saturates into the `u32` wire field; values
/// beyond [`MAX_K`] are rejected server-side anyway.)
pub fn query_request(request_id: u64, req: &QueryReq) -> Frame {
    match *req {
        QueryReq::Knn { q, k } => Frame::KnnRequest(KnnRequest {
            request_id,
            q,
            k: u32::try_from(k).unwrap_or(u32::MAX),
        }),
        QueryReq::Window { c, hx, hy } => Frame::WindowRequest(WindowRequest {
            request_id,
            c,
            hx,
            hy,
        }),
    }
}

/// Encodes the response frame for `resp` under correlation id
/// `request_id`, appending to `out` — borrowing straight out of the
/// engine's `Arc`-shared answer, no clone. This is the function whose
/// output the byte-identical contract is stated over.
pub fn encode_query_response(
    request_id: u64,
    resp: &QueryResp,
    out: &mut Vec<u8>,
) -> Result<(), WireError> {
    match &*resp.answer {
        QueryAnswer::Knn(nn) => encode_with(out, crate::FrameType::KnnResponse, |p| {
            crate::frames::put_knn_response(
                p,
                request_id,
                resp.query_id,
                resp.tier,
                &resp.stages,
                nn,
            );
        }),
        QueryAnswer::Window(w) => encode_with(out, crate::FrameType::WindowResponse, |p| {
            crate::frames::put_window_response(
                p,
                request_id,
                resp.query_id,
                resp.tier,
                &resp.stages,
                w,
            );
        }),
    }
}

/// Convenience: the encoded bytes of an [`crate::ErrorFrame`].
pub fn encode_error(request_id: u64, code: ErrorCode, detail: impl Into<String>) -> Vec<u8> {
    let mut out = Vec::new();
    // An error frame's payload is a few hundred bytes at most (the
    // detail string is u16-truncated), so this encode cannot fail.
    let _ = encode_frame(
        &Frame::Error(crate::ErrorFrame::new(request_id, code, detail)),
        &mut out,
    );
    out
}
