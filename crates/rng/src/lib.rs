//! # lbq-rng — vendored pseudo-random number generation
//!
//! The container this workspace builds in has **no crates.io access**,
//! so the `rand` crate cannot be resolved. Everything the workspace
//! needs from it is a seedable, deterministic, fast generator for
//! synthetic datasets, query workloads and randomized tests — which is
//! exactly what this ~150-line module provides, with zero dependencies.
//!
//! Two classic generators are vendored:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-style generator of Steele,
//!   Lea & Flood. Used to expand a single `u64` seed into the 256-bit
//!   state of the main generator (the construction recommended by the
//!   xoshiro authors), and handy on its own for cheap hashing-style
//!   randomness.
//! * [`Xoshiro256ss`] (xoshiro256\*\*, Blackman & Vigna 2018) — the
//!   workhorse. Passes BigCrush, 2^256 − 1 period, four `u64`s of
//!   state.
//!
//! The API mirrors the subset of `rand::Rng` the workspace used
//! (`gen_range(a..b)`, `gen_bool(p)`), so call sites port by swapping
//! the import. Determinism per seed is guaranteed and locked by tests:
//! datasets named in EXPERIMENTS.md must not drift between releases.

use std::ops::Range;

/// SplitMix64: `z = (x += golden); mix(z)`.
///
/// Statistically strong for its size and stateless-feeling: every call
/// advances a counter and hashes it, so streams never short-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator starting from `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's general-purpose generator.
///
/// Replaces `rand::rngs::StdRng` at every former call site. Seeding
/// with the same `u64` always produces the same stream, across
/// platforms and releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

impl Xoshiro256ss {
    /// Expands `seed` through [`SplitMix64`] into the 256-bit state, as
    /// the xoshiro reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one fixed point; the SplitMix64
        // expansion cannot produce it for any seed, but keep the guard
        // for direct state construction paths.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256ss { s }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // Standard bit-shift construction: top 53 bits scaled by 2⁻⁵³.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform draw from `range` (see [`SampleRange`] for the supported
    /// operand types). Panics on an empty range, matching `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform index into a non-empty slice-like collection of `len`
    /// elements.
    #[inline]
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range(0..len)
    }
}

/// Range types [`Xoshiro256ss::gen_range`] can sample from, mirroring
/// the `rand` call sites the workspace ported away from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Xoshiro256ss) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Xoshiro256ss) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let span = self.end - self.start;
        // One rejection step keeps the result strictly below `end` even
        // when rounding in `start + u·span` lands exactly on `end`.
        loop {
            let v = self.start + rng.gen_f64() * span;
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Xoshiro256ss) -> usize {
        assert!(self.start < self.end, "empty usize range");
        let span = (self.end - self.start) as u64;
        self.start + bounded_u64(rng, span) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Xoshiro256ss) -> u64 {
        assert!(self.start < self.end, "empty u64 range");
        self.start + bounded_u64(rng, self.end - self.start)
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    #[inline]
    fn sample(self, rng: &mut Xoshiro256ss) -> u32 {
        assert!(self.start < self.end, "empty u32 range");
        self.start + bounded_u64(rng, u64::from(self.end - self.start)) as u32
    }
}

/// Unbiased uniform draw from `[0, bound)` via Lemire-style rejection.
#[inline]
fn bounded_u64(rng: &mut Xoshiro256ss, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top of the range removes modulo bias;
    // the loop rejects fewer than one draw in expectation for any bound.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = widening_mul(r, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

/// 64×64→128-bit multiply returning `(high, low)` words.
#[inline]
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        let first: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(first[0], 6457827717110365317);
        assert_eq!(first[1], 3203168211198807973);
        assert_eq!(first[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256ss::seed_from_u64(42);
        let mut b = Xoshiro256ss::seed_from_u64(42);
        let mut c = Xoshiro256ss::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256ss::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut low = 0usize;
        for _ in 0..n {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
            if v < 0.5 {
                low += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let frac = low as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "below-half fraction {frac}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Xoshiro256ss::seed_from_u64(99);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.5..7.25);
            assert!((-3.5..7.25).contains(&f));
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let w = rng.gen_range(0u64..3);
            assert!(w < 3);
            let x = rng.gen_range(10u32..11);
            assert_eq!(x, 10);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = Xoshiro256ss::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 drawn: {seen:?}");
    }

    #[test]
    fn bounded_draw_is_unbiased_enough() {
        // Chi-squared-ish sanity test over a bound that does not divide
        // 2^64 (the case rejection sampling exists for).
        let mut rng = Xoshiro256ss::seed_from_u64(11);
        let bound = 7u64;
        let n = 70_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            counts[bounded_u64(&mut rng, bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "value {v} count {c} deviates {dev}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Xoshiro256ss::seed_from_u64(5);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "p=0.3 measured {frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Xoshiro256ss::seed_from_u64(1);
        let _ = rng.gen_range(5usize..5);
    }
}
