//! Integration tests for the tracing core. Everything that touches the
//! process-global subscriber runs under one mutex: the cargo test
//! harness is multi-threaded and the subscriber slot is shared.

use lbq_obs::{
    EventRecord, JsonLinesSubscriber, RingBufferSubscriber, SpanRecord, Subscriber, TraceRecord,
};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn subscriber_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Installs `sub` for the duration of `f`, restoring the previous
/// subscriber state afterwards even if `f` panics mid-assertion.
fn with_subscriber<R>(sub: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    lbq_obs::install(sub);
    let out = f();
    lbq_obs::uninstall();
    out
}

#[test]
fn install_uninstall_toggles_enabled() {
    let _guard = subscriber_lock();
    assert!(!lbq_obs::enabled());
    let ring = Arc::new(RingBufferSubscriber::new(8));
    assert!(lbq_obs::install(ring.clone()).is_none());
    assert!(lbq_obs::enabled());
    lbq_obs::event("install-test");
    let prev = lbq_obs::uninstall();
    assert!(prev.is_some());
    assert!(!lbq_obs::enabled());
    // After uninstall nothing is delivered.
    lbq_obs::event("install-test");
    assert_eq!(ring.total_received(), 1);
    assert_eq!(ring.records()[0].name(), "install-test");
}

/// A recursive descent like an R-tree traversal: each level opens a
/// span; parents must chain and depths must unwind.
fn descend(level: u32) {
    let mut s = lbq_obs::span("recursion-level");
    s.record("level", u64::from(level));
    assert_eq!(lbq_obs::span_depth(), (level + 1) as usize);
    if level < 3 {
        descend(level + 1);
    }
    lbq_obs::event("visit");
}

#[test]
fn nested_spans_across_recursion_chain_parents() {
    let _guard = subscriber_lock();
    let ring = Arc::new(RingBufferSubscriber::new(64));
    with_subscriber(ring.clone(), || {
        descend(0);
        assert_eq!(lbq_obs::span_depth(), 0);
    });
    let records = ring.records();
    // 4 levels: 4 events then 4 spans closing innermost-first.
    assert_eq!(records.len(), 8);
    let spans: Vec<&SpanRecord> = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Span(s) => Some(s),
            TraceRecord::Event(_) => None,
        })
        .collect();
    assert_eq!(spans.len(), 4);
    // Spans close deepest-first: spans[0] is level 3 ... spans[3] is level 0.
    for w in spans.windows(2) {
        // The later-closing span is the parent of the earlier one.
        assert_eq!(w[0].parent, Some(w[1].id));
    }
    assert_eq!(spans[3].parent, None);
    // Each event is parented to the span that was open when it fired.
    let events: Vec<&EventRecord> = records
        .iter()
        .filter_map(|r| match r {
            TraceRecord::Event(e) => Some(e),
            TraceRecord::Span(_) => None,
        })
        .collect();
    // Events fire innermost-first too, inside their own span.
    for (event, span) in events.iter().zip(spans.iter()) {
        assert_eq!(event.parent, Some(span.id));
    }
}

#[test]
fn ring_buffer_wraparound_keeps_newest() {
    let _guard = subscriber_lock();
    let ring = Arc::new(RingBufferSubscriber::new(4));
    with_subscriber(ring.clone(), || {
        for _ in 0..10 {
            lbq_obs::event("wrap-test");
        }
    });
    assert_eq!(ring.total_received(), 10);
    let records = ring.records();
    assert_eq!(records.len(), 4);
    // Oldest-first ordering by timestamp.
    let stamps: Vec<u64> = records
        .iter()
        .map(|r| match r {
            TraceRecord::Event(e) => e.at_ns,
            TraceRecord::Span(s) => s.start_ns,
        })
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn span_fields_reach_the_subscriber() {
    let _guard = subscriber_lock();
    let ring = Arc::new(RingBufferSubscriber::new(8));
    with_subscriber(ring.clone(), || {
        let mut s = lbq_obs::span("field-test");
        assert!(s.is_active());
        s.record("count", 42u64);
        s.record("area", 1.5f64);
        s.record("hit", true);
        s.record("label", "leaf");
    });
    let records = ring.records();
    assert_eq!(records.len(), 1);
    let TraceRecord::Span(span) = &records[0] else {
        panic!("expected a span record");
    };
    assert_eq!(span.name, "field-test");
    assert_eq!(span.fields.len(), 4);
    assert_eq!(span.fields[0], ("count", lbq_obs::Value::U64(42)));
    assert_eq!(span.fields[2], ("hit", lbq_obs::Value::Bool(true)));
}

/// Collects raw bytes written by a writer-backed subscriber.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_subscriber_emits_parseable_lines() {
    let _guard = subscriber_lock();
    let buf = SharedBuf::default();
    let sub = Arc::new(JsonLinesSubscriber::new(Box::new(buf.clone())));
    with_subscriber(sub, || {
        let mut s = lbq_obs::span("rtree-knn");
        s.record("k", 4u64);
        s.record("note", "with \"quotes\"");
        lbq_obs::event_with("tpnn-iteration", [("vertices", lbq_obs::Value::U64(7))]);
    });
    let bytes = buf.0.lock().unwrap_or_else(|e| e.into_inner()).clone();
    let text = String::from_utf8(bytes).expect("jsonl output is utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    // Event first (fired inside the span), then the span on close.
    assert!(lines[0].contains("\"type\":\"event\""));
    assert!(lines[0].contains("\"name\":\"tpnn-iteration\""));
    assert!(lines[0].contains("\"vertices\":7"));
    assert!(lines[1].contains("\"type\":\"span\""));
    assert!(lines[1].contains("\"name\":\"rtree-knn\""));
    assert!(lines[1].contains("\"k\":4"));
    assert!(lines[1].contains("with \\\"quotes\\\""));
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        // Balanced quotes after unescaping is a cheap well-formedness
        // proxy without a JSON parser.
        let unescaped = line.replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
    }
}
