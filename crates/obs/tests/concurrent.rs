//! Concurrency torture for the v2 observability primitives: histogram
//! records racing snapshots, flight-recorder writers racing seqlock
//! readers across wraparound, and heatmap updates from arbitrary tile
//! ids. Own integration-test process: it arms the process-global
//! recorder.

use lbq_obs::{QueryEvent, QueryKind, RecorderConfig, StageNanos};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn histogram_records_race_snapshots_without_loss() {
    let h = lbq_obs::histogram("conc-latency");
    const THREADS: u64 = 4;
    const PER: u64 = 50_000;
    let stop = Arc::new(AtomicBool::new(false));
    // A reader thread snapshotting mid-storm: counts must only grow,
    // and every intermediate summary must stay internally consistent.
    let reader = {
        let h = h.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = h.summary();
                assert!(s.count >= last, "count went backwards");
                assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
                last = s.count;
            }
            last
        })
    };
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..PER {
                    // Spread across buckets: 100ns .. ~100µs.
                    h.record_ns(100 + (i % 1000) * 100 + t);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().expect("reader");
    assert_eq!(h.summary().count, THREADS * PER, "records lost in the race");
}

#[test]
fn recorder_wraparound_under_concurrent_readers() {
    let rec = lbq_obs::init_recorder(RecorderConfig {
        capacity: 128, // small ring: heavy wraparound
        slow_min_samples: 64,
        slow_multiplier: 2,
        slow_floor_ns: 0,
    });
    const THREADS: u64 = 4;
    const PER: u64 = 20_000;
    let stop = Arc::new(AtomicBool::new(false));
    // Every field of an event is a pure function of its query_id, so a
    // torn read — slot words mixed from two different writes slipping
    // past the seqlock — shows up as an internally inconsistent event.
    fn stamp(v: u64) -> QueryEvent {
        QueryEvent {
            query_id: v,
            kind: if v % 2 == 0 {
                QueryKind::Knn
            } else {
                QueryKind::Window
            },
            k: (v % 1_000) as u32,
            tier: lbq_obs::CacheTier::Tree,
            tile: (v % 4096) as u32,
            latency_ns: 1_000 + v % 7,
            node_accesses: (v % 97) as u32,
            page_accesses: (v % 13) as u32,
            stages: StageNanos::default(),
        }
    }
    // Readers race the wrapping writers.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let rec = lbq_obs::recorder().expect("armed");
                while !stop.load(Ordering::Relaxed) {
                    for (_, ev) in rec.recent() {
                        assert_eq!(ev, stamp(ev.query_id), "torn read survived the seqlock");
                    }
                }
            })
        })
        .collect();
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let rec = lbq_obs::recorder().expect("armed");
                for i in 0..PER {
                    rec.record(&stamp(t * PER + i));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader");
    }
    let stats = rec.stats();
    assert_eq!(stats.total, THREADS * PER, "every record counted");
    // At rest the ring holds one completed write per slot — but *which*
    // one is racy by design: writers claim tickets before stamping, and
    // two writers mapped to the same slot finish in either order, so a
    // slot can legitimately retain a ticket one generation behind the
    // newest. Assert only what the protocol guarantees: tickets are
    // strictly increasing, none is newer than the slot's final-
    // generation ticket, at most one lagging generation per concurrent
    // writer, and every event is internally consistent.
    let recent = rec.recent();
    assert_eq!(recent.len(), 128);
    let mut lagging = 0u64;
    let mut prev: Option<u64> = None;
    for (i, (ticket, ev)) in recent.iter().enumerate() {
        let newest = THREADS * PER - 128 + i as u64;
        assert!(
            *ticket <= newest,
            "slot holds ticket {ticket} from the future (newest {newest})"
        );
        if *ticket < newest {
            lagging += 1;
        }
        if let Some(p) = prev {
            assert!(*ticket > p, "tickets must be strictly increasing");
        }
        prev = Some(*ticket);
        assert_eq!(*ev, stamp(ev.query_id));
    }
    // A stale slot needs a writer stalled inside `record` while the
    // slot's newer writes completed, and the stale content must survive
    // to the end of the run — one slot per stall episode. Twice the
    // writer count is generous headroom for end-of-run double stalls.
    assert!(
        lagging <= 2 * THREADS,
        "{lagging} slots lag their final generation — more than \
         {THREADS} concurrent writers can plausibly explain"
    );
    assert!(stats.threshold_ns > 0, "threshold armed after warmup");
}

#[test]
fn heatmap_concurrent_arbitrary_tiles_stay_in_bounds() {
    let heat = lbq_obs::heatmap("conc-heat");
    const THREADS: u64 = 4;
    const PER: u64 = 100_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let heat = heat.clone();
            std::thread::spawn(move || {
                let mut x: u32 = 0x9E37_79B9u32.wrapping_mul(t as u32 + 1) | 1;
                for _ in 0..PER {
                    // Full-range u32 tile ids: record() must mask, not
                    // index out of bounds.
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    heat.record(x, 10);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer");
    }
    let tiles = heat.snapshot();
    let hits: u64 = tiles.iter().map(|t| t.hits).sum();
    let ns: u64 = tiles.iter().map(|t| t.total_ns).sum();
    assert_eq!(hits, THREADS * PER, "hits lost");
    assert_eq!(ns, THREADS * PER * 10, "latency mass lost");
    assert!(tiles
        .iter()
        .all(|t| (t.tile as usize) < lbq_obs::HEATMAP_SLOTS));
}
