//! Asserts the no-subscriber fast path performs zero heap allocations.
//!
//! Uses a counting global allocator, which requires `unsafe` to
//! implement `GlobalAlloc`; the workspace denies `unsafe_code` via a
//! Cargo lint (a CLI `-D`), which this crate-level `allow` overrides
//! for this test binary only. The shim lives here, in its own
//! integration-test binary, so no other test's allocations interfere.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn no_subscriber_path_allocates_nothing() {
    assert!(!lbq_obs::enabled());
    // Warm up lazily-initialized statics outside the measured window.
    {
        let mut s = lbq_obs::span("warmup-span");
        s.record("k", 1u64);
        lbq_obs::event("warmup-event");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let mut s = lbq_obs::span("rtree-knn");
        s.record("k", i);
        s.record("area", 0.5f64);
        lbq_obs::event_with("tpnn-iteration", [("vertices", lbq_obs::Value::U64(i))]);
        drop(s);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate (got {} allocations over 1000 iterations)",
        after - before
    );
}
