//! Asserts the no-subscriber fast path performs zero heap allocations.
//!
//! Uses a counting global allocator, which requires `unsafe` to
//! implement `GlobalAlloc`; the workspace denies `unsafe_code` via a
//! Cargo lint (a CLI `-D`), which this crate-level `allow` overrides
//! for this test binary only. The shim lives here, in its own
//! integration-test binary, so no other test's allocations interfere.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn no_subscriber_path_allocates_nothing() {
    assert!(!lbq_obs::enabled());
    // Warm up lazily-initialized statics outside the measured window.
    {
        let mut s = lbq_obs::span("warmup-span");
        s.record("k", 1u64);
        lbq_obs::event("warmup-event");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        let mut s = lbq_obs::span("rtree-knn");
        s.record("k", i);
        s.record("area", 0.5f64);
        lbq_obs::event_with("tpnn-iteration", [("vertices", lbq_obs::Value::U64(i))]);
        drop(s);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate (got {} allocations over 1000 iterations)",
        after - before
    );
}

#[test]
fn disabled_recording_paths_allocate_nothing() {
    assert!(!lbq_obs::recording());
    // Warm up: registry entries, thread-local handle cache, heatmap.
    let h = lbq_obs::histogram("warmup-histogram");
    let heat = lbq_obs::heatmap("warmup-heat");
    let ev = lbq_obs::QueryEvent {
        query_id: 0,
        kind: lbq_obs::QueryKind::Knn,
        k: 8,
        tier: lbq_obs::CacheTier::Tree,
        tile: 3,
        latency_ns: 500,
        node_accesses: 4,
        page_accesses: 1,
        stages: lbq_obs::StageNanos::default(),
    };
    {
        let _t = lbq_obs::stage_timer(lbq_obs::Stage::TreeKnn);
        lbq_obs::record_query(&ev);
        let _ = lbq_obs::take_stages();
        h.record_ns(1);
        heat.record(3, 1);
        let _ = lbq_obs::histogram("warmup-histogram");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        // The per-query instrumentation the serve hot path runs with
        // recording off — plus the primitives that stay allocation-free
        // even when armed.
        let _t = lbq_obs::stage_timer(lbq_obs::Stage::GroupKnn);
        lbq_obs::record_query(&ev);
        let _ = lbq_obs::take_stages();
        h.record_ns(i);
        heat.record(i as u32, i);
        // Cached registry lookup (the TLS handle cache, post-warmup).
        let _ = lbq_obs::histogram("warmup-histogram");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled recording paths must not allocate (got {} over 1000 iterations)",
        after - before
    );
}
