//! End-of-run report rendering.
//!
//! [`ProfileTable`] is the single formatting path for per-phase /
//! per-strategy summaries printed by the examples and `crates/bench`;
//! [`render_metrics`] dumps the global metrics registry in the same
//! style. Every table starts with the `== lbq-obs profile ==` banner
//! so CI can grep for it.

use crate::metrics::{metrics_snapshot, MetricValue};

/// The banner every rendered table starts with (greppable in CI).
pub const PROFILE_HEADER: &str = "== lbq-obs profile ==";

/// Formats a nanosecond duration with an adaptive unit (`ns`, `µs`,
/// `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// A fixed-column text table with the lbq profile banner. The first
/// column is left-aligned (labels), the rest right-aligned (numbers).
#[derive(Debug, Clone)]
pub struct ProfileTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ProfileTable {
    /// Creates a table titled `title` with the given column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        ProfileTable {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with blanks, long rows
    /// extend the column set with unnamed columns.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        while self.columns.len() < cells.len() {
            self.columns.push(String::new());
        }
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(PROFILE_HEADER);
        if !self.title.is_empty() {
            out.push(' ');
            out.push_str(&self.title);
        }
        out.push('\n');
        let mut line = String::new();
        let emit_row = |line: &mut String, cells: &[String], out: &mut String| {
            line.clear();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i == 0 {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        };
        emit_row(&mut line, &self.columns, &mut out);
        let rule: Vec<String> = (0..ncols).map(|i| "-".repeat(widths[i])).collect();
        emit_row(&mut line, &rule, &mut out);
        for row in &self.rows {
            emit_row(&mut line, row, &mut out);
        }
        out
    }

    /// Renders to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Renders every registered metric as a profile table (empty registry
/// renders a table with no rows, banner included).
pub fn render_metrics(title: &str) -> String {
    let mut table = ProfileTable::new(title, &["metric", "value", "p50", "p95", "p99", "mean"]);
    for (name, value) in metrics_snapshot() {
        match value {
            MetricValue::Counter(v) => {
                table.row(&[name.to_string(), v.to_string()]);
            }
            MetricValue::Gauge(v) => {
                table.row(&[name.to_string(), v.to_string()]);
            }
            MetricValue::Histogram(s) => {
                table.row(&[
                    name.to_string(),
                    format!("n={}", s.count),
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p95_ns),
                    fmt_ns(s.p99_ns),
                    fmt_ns(s.mean_ns),
                ]);
            }
        }
    }
    table.render()
}

/// Prints [`render_metrics`] to stdout.
pub fn print_metrics(title: &str) {
    print!("{}", render_metrics(title));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn table_renders_banner_and_alignment() {
        let mut t = ProfileTable::new("nn strategies", &["strategy", "queries"]);
        t.row(&["naive".to_string(), "200".to_string()]);
        t.row(&["lbq".to_string(), "41".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "== lbq-obs profile == nn strategies");
        assert_eq!(lines[1], "strategy  queries");
        assert_eq!(lines[2], "--------  -------");
        assert_eq!(lines[3], "naive         200");
        assert_eq!(lines[4], "lbq            41");
    }

    #[test]
    fn short_rows_pad_and_long_rows_extend() {
        let mut t = ProfileTable::new("", &["a"]);
        t.row(&["x".to_string(), "y".to_string()]);
        t.row(&["z".to_string()]);
        let s = t.render();
        assert!(s.starts_with(PROFILE_HEADER));
        assert_eq!(s.lines().count(), 5);
    }
}
