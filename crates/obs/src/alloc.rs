//! Process-wide allocation counting hooks.
//!
//! A counting `#[global_allocator]` (e.g. the one in the `pr4_bench`
//! binary of `lbq-bench`) calls [`note_alloc`] on every heap
//! allocation. The counter is deliberately a **bare static atomic**, not
//! a registry metric: the metric registry takes a lock and its first
//! lookup allocates, so routing allocator callbacks through it would
//! recurse. Instead, [`publish_alloc_gauge`] mirrors the current count
//! into the registered `alloc-count` gauge on demand — call it *outside*
//! measurement windows (e.g. once per report) so the mirroring itself
//! never perturbs an allocation measurement.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Records one heap allocation. Safe to call from a global allocator:
/// one relaxed `fetch_add`, no locks, no allocation.
#[inline]
pub fn note_alloc() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total allocations noted since process start. Monotonic; per-section
/// costs are deltas between two reads.
#[inline]
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Mirrors [`alloc_count`] into the `alloc-count` gauge (registering it
/// on first use) so allocation totals appear in
/// [`crate::metrics_snapshot`] next to the NA/PA counters. Returns the
/// gauge handle for callers that want to re-publish cheaply.
pub fn publish_alloc_gauge() -> crate::Gauge {
    let g = crate::gauge("alloc-count");
    g.set(i64::try_from(alloc_count()).unwrap_or(i64::MAX));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_and_published() {
        let before = alloc_count();
        note_alloc();
        note_alloc();
        assert!(alloc_count() >= before + 2);
        let g = publish_alloc_gauge();
        assert!(g.get() >= i64::try_from(before).unwrap_or(i64::MAX));
    }
}
