//! Named counters, gauges, and latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//! `Arc<Atomic…>` wrappers: look one up once (e.g. in a `OnceLock`
//! outside the hot loop) and increment it lock-free afterwards. The
//! registry keys metrics by their `&'static str` name — names must be
//! kebab-case literals, enforced by the `obs-span-name` rule in
//! `lbq-check`.
//!
//! Histograms bucket durations by power of two nanoseconds (~40
//! buckets cover 1 ns to ~18 minutes), which keeps recording to one
//! atomic add and still yields quantile estimates within a factor of
//! two — plenty for p50/p95/p99 trend lines.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets: bucket `i` holds samples
/// with `floor(log2(ns)) == i`, the last bucket absorbs overflow.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Clone, Default, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Clone, Default, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over nanosecond durations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a duration: `floor(log2(ns))`, clamped.
#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    let b = 63 - ns.leading_zeros() as usize;
    b.min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive-exclusive boundary) of bucket `i` in ns.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// Creates an empty, unregistered histogram (for local, per-run
    /// measurement; use [`histogram`] for the named global registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an elapsed [`std::time::Duration`].
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a raw unitless sample (tile sizes, batch occupancy, …):
    /// same power-of-two bucket lattice, the value is taken as-is. The
    /// `_ns` fields of the summary then read as plain values.
    #[inline]
    pub fn record_value(&self, v: u64) {
        self.record_ns(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of
    /// the bucket containing that rank (0 when empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Point-in-time p50/p95/p99/mean summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.0.sum_ns.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            mean_ns: if count == 0 { 0 } else { sum / count },
        }
    }
}

/// A copyable snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Median estimate (bucket upper bound), ns.
    pub p50_ns: u64,
    /// 95th percentile estimate, ns.
    pub p95_ns: u64,
    /// 99th percentile estimate, ns.
    pub p99_ns: u64,
    /// Exact arithmetic mean, ns.
    pub mean_ns: u64,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<&'static str, Metric>) -> R) -> R {
    let mut g = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut g)
}

/// Looks up (or creates) the counter named `name`. If the name is
/// already registered as a different metric kind, a fresh unregistered
/// counter is returned rather than panicking.
pub fn counter(name: &'static str) -> Counter {
    with_registry(|r| {
        match r
            .entry(name)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    })
}

/// Looks up (or creates) the gauge named `name`. Kind mismatches yield
/// a fresh unregistered gauge.
pub fn gauge(name: &'static str) -> Gauge {
    with_registry(|r| {
        match r
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    })
}

/// Looks up (or creates) the histogram named `name`. Kind mismatches
/// yield a fresh unregistered histogram.
pub fn histogram(name: &'static str) -> Histogram {
    with_registry(|r| {
        match r
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    })
}

/// A registered metric's current value, as captured by
/// [`metrics_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// Snapshot of every registered metric, sorted by name.
pub fn metrics_snapshot() -> Vec<(&'static str, MetricValue)> {
    with_registry(|r| {
        r.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (*name, v)
            })
            .collect()
    })
}

/// Unregisters every metric. Existing handles keep working but are no
/// longer visible to [`metrics_snapshot`]; intended for tests and for
/// benches separating phases.
pub fn reset_metrics() {
    with_registry(|r| r.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(9), 1023);
    }

    #[test]
    fn histogram_quantiles_and_summary() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        // 99 fast samples in bucket [1024, 2047], one slow outlier.
        for _ in 0..99 {
            h.record_ns(1500);
        }
        h.record_ns(1_000_000);
        assert_eq!(h.count(), 100);
        let s = h.summary();
        assert_eq!(s.p50_ns, 2047);
        assert_eq!(s.p95_ns, 2047);
        // Rank 99 of 100 is still in the fast bucket; only the max
        // (rank 100) reaches the outlier's bucket [2^19, 2^20).
        assert_eq!(s.p99_ns, 2047);
        assert_eq!(h.quantile_ns(1.0), (1u64 << 20) - 1);
        assert_eq!(s.mean_ns, (99 * 1500 + 1_000_000) / 100);
    }

    #[test]
    fn counter_gauge_roundtrip() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn registry_dedupes_by_name_and_resets() {
        // Distinct names from the rest of the suite: the registry is
        // process-global and tests share it.
        let a = counter("test-registry-counter");
        let b = counter("test-registry-counter");
        a.incr();
        b.incr();
        assert_eq!(a.get(), 2);
        let snap = metrics_snapshot();
        assert!(snap
            .iter()
            .any(|(n, v)| *n == "test-registry-counter" && *v == MetricValue::Counter(2)));
        // Kind mismatch: returns a detached handle, keeps the original.
        let h = histogram("test-registry-counter");
        h.record_ns(10);
        assert_eq!(a.get(), 2);
        reset_metrics();
        assert!(!metrics_snapshot()
            .iter()
            .any(|(n, _)| *n == "test-registry-counter"));
        // Old handle still works, just unregistered.
        a.incr();
        assert_eq!(a.get(), 3);
    }
}
