//! Named counters, gauges, and latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//! `Arc<Atomic…>` wrappers: look one up once (e.g. in a `OnceLock`
//! outside the hot loop) and increment it lock-free afterwards. The
//! registry keys metrics by their `&'static str` name — names must be
//! kebab-case literals, enforced by the `obs-span-name` rule in
//! `lbq-check`.
//!
//! Histograms bucket durations log-linearly: four sub-buckets per
//! power-of-two octave ([`HISTOGRAM_BUCKETS`] = 160 buckets cover 1 ns
//! to ~36 minutes). Recording is still a single relaxed atomic add per
//! sample, but quantile estimates tighten from the old factor-of-two
//! bound to at most +25% (bucket ratios cycle 5/4, 6/5, 7/6, 8/7, a
//! geometric mean of 2^¼ ≈ +19%) — good enough to read p50/p95/p99 as
//! absolute numbers, not just trend lines.
//!
//! Lookups ([`counter`], [`gauge`], [`histogram`]) consult a
//! per-thread handle cache before touching the global registry mutex,
//! so steady-state code that re-resolves a name per call (instead of
//! stashing the handle in a `OnceLock`) no longer contends on the
//! registry lock. [`reset_metrics`] bumps a generation stamp that
//! invalidates every thread's cache.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-buckets per power-of-two octave in a [`Histogram`].
pub const HISTOGRAM_SUB_BUCKETS: usize = 4;

/// Number of log-linear histogram buckets. Buckets 0–3 hold the exact
/// values 0–3; from there each octave `[2^e, 2^(e+1))` splits into
/// [`HISTOGRAM_SUB_BUCKETS`] equal-width sub-buckets. The last bucket
/// absorbs overflow (≥ 2^41 ns ≈ 36 minutes).
pub const HISTOGRAM_BUCKETS: usize = 160;

/// A monotonically increasing counter.
#[derive(Clone, Default, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Clone, Default, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram over nanosecond durations.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }))
    }
}

/// Log-linear bucket index for a duration. Values 0–3 map to buckets
/// 0–3 exactly; a value in octave `e = floor(log2(ns)) ≥ 2` lands in
/// bucket `4·(e−1) + sub` where `sub` is the next two bits below the
/// leading one. Contiguous and monotonic: 3→3, 4→4, 7→7, 8→8, …
#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns < 4 {
        // lbq-check: allow(lossy-cast) — ns < 4 fits any usize
        return ns as usize;
    }
    let e = (63 - ns.leading_zeros()) as usize; // ≥ 2
    let sub = ((ns >> (e - 2)) & 3) as usize;
    (HISTOGRAM_SUB_BUCKETS * (e - 1) + sub).min(HISTOGRAM_BUCKETS - 1)
}

/// Largest value contained in bucket `i` (its inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let e = i / HISTOGRAM_SUB_BUCKETS + 1;
    let sub = (i % HISTOGRAM_SUB_BUCKETS) as u64;
    // Sub-bucket `sub` of octave `e` spans `[(4+sub)·2^(e−2), (5+sub)·2^(e−2))`.
    let width = 1u64 << (e - 2);
    (4 + sub) * width + width - 1
}

impl Histogram {
    /// Creates an empty, unregistered histogram (for local, per-run
    /// measurement; use [`histogram`] for the named global registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an elapsed [`std::time::Duration`].
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records a raw unitless sample (tile sizes, batch occupancy, …):
    /// same log-linear bucket lattice, the value is taken as-is. The
    /// `_ns` fields of the summary then read as plain values.
    #[inline]
    pub fn record_value(&self, v: u64) {
        self.record_ns(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, ns.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of
    /// the bucket containing that rank (0 when empty). Overestimates by
    /// at most 25% of the true value (typically ~10%).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // lbq-check: allow(lossy-cast) — rank ≤ count by construction
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Point-in-time p50/p95/p99/mean summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.0.sum_ns.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            p50_ns: self.quantile_ns(0.50),
            p95_ns: self.quantile_ns(0.95),
            p99_ns: self.quantile_ns(0.99),
            mean_ns: if count == 0 { 0 } else { sum / count },
        }
    }
}

/// A copyable snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Median estimate (bucket upper bound), ns.
    pub p50_ns: u64,
    /// 95th percentile estimate, ns.
    pub p95_ns: u64,
    /// 99th percentile estimate, ns.
    pub p99_ns: u64,
    /// Exact arithmetic mean, ns.
    pub mean_ns: u64,
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: Mutex<BTreeMap<&'static str, Metric>> = Mutex::new(BTreeMap::new());

/// Bumped by [`reset_metrics`]; per-thread handle caches self-clear
/// when their recorded generation falls behind.
static RESET_GEN: AtomicU64 = AtomicU64::new(0);

struct HandleCache {
    generation: u64,
    map: BTreeMap<&'static str, Metric>,
}

thread_local! {
    static HANDLE_CACHE: RefCell<HandleCache> = const {
        RefCell::new(HandleCache { generation: 0, map: BTreeMap::new() })
    };
}

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<&'static str, Metric>) -> R) -> R {
    let mut g = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut g)
}

/// Thread-cached lookup: consult this thread's handle cache first;
/// on miss run `fetch` against the global registry and cache its
/// registered handle (kind-mismatched detached handles are never
/// cached, preserving the "fresh detached handle per call" contract).
fn cached_lookup<T>(
    name: &'static str,
    pick: impl Fn(&Metric) -> Option<T>,
    fetch: impl FnOnce() -> (T, Option<Metric>),
) -> T {
    let generation = RESET_GEN.load(Ordering::Acquire);
    let hit = HANDLE_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.generation != generation {
            c.map.clear();
            c.generation = generation;
        }
        c.map.get(name).and_then(&pick)
    });
    if let Some(handle) = hit {
        return handle;
    }
    let (handle, entry) = fetch();
    if let Some(entry) = entry {
        HANDLE_CACHE.with(|c| {
            c.borrow_mut().map.insert(name, entry);
        });
    }
    handle
}

/// Looks up (or creates) the counter named `name`. If the name is
/// already registered as a different metric kind, a fresh unregistered
/// counter is returned rather than panicking.
pub fn counter(name: &'static str) -> Counter {
    cached_lookup(
        name,
        |m| match m {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        },
        || {
            with_registry(|r| {
                match r
                    .entry(name)
                    .or_insert_with(|| Metric::Counter(Counter::default()))
                {
                    Metric::Counter(c) => (c.clone(), Some(Metric::Counter(c.clone()))),
                    _ => (Counter::default(), None),
                }
            })
        },
    )
}

/// Looks up (or creates) the gauge named `name`. Kind mismatches yield
/// a fresh unregistered gauge.
pub fn gauge(name: &'static str) -> Gauge {
    cached_lookup(
        name,
        |m| match m {
            Metric::Gauge(g) => Some(g.clone()),
            _ => None,
        },
        || {
            with_registry(|r| {
                match r
                    .entry(name)
                    .or_insert_with(|| Metric::Gauge(Gauge::default()))
                {
                    Metric::Gauge(g) => (g.clone(), Some(Metric::Gauge(g.clone()))),
                    _ => (Gauge::default(), None),
                }
            })
        },
    )
}

/// Looks up (or creates) the histogram named `name`. Kind mismatches
/// yield a fresh unregistered histogram.
pub fn histogram(name: &'static str) -> Histogram {
    cached_lookup(
        name,
        |m| match m {
            Metric::Histogram(h) => Some(h.clone()),
            _ => None,
        },
        || {
            with_registry(|r| {
                match r
                    .entry(name)
                    .or_insert_with(|| Metric::Histogram(Histogram::default()))
                {
                    Metric::Histogram(h) => (h.clone(), Some(Metric::Histogram(h.clone()))),
                    _ => (Histogram::default(), None),
                }
            })
        },
    )
}

/// A registered metric's current value, as captured by
/// [`metrics_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// Snapshot of every registered metric, sorted by name.
pub fn metrics_snapshot() -> Vec<(&'static str, MetricValue)> {
    with_registry(|r| {
        r.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (*name, v)
            })
            .collect()
    })
}

/// Unregisters every metric. Existing handles keep working but are no
/// longer visible to [`metrics_snapshot`]; intended for tests and for
/// benches separating phases. Also invalidates every thread's handle
/// cache, so subsequent lookups re-register.
pub fn reset_metrics() {
    with_registry(|r| r.clear());
    RESET_GEN.fetch_add(1, Ordering::Release);
}

/// Serializes unit tests that touch the process-global registry: a
/// concurrent [`reset_metrics`] would detach another test's handles
/// mid-assertion.
#[cfg(test)]
pub(crate) static TEST_REGISTRY_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exact small values.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(3), 3);
        // First split octave: 4..8 are still exact (width-1 buckets).
        assert_eq!(bucket_of(4), 4);
        assert_eq!(bucket_of(7), 7);
        assert_eq!(bucket_upper(4), 4);
        assert_eq!(bucket_upper(7), 7);
        // Octave [8,16) has four width-2 sub-buckets.
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(9), 8);
        assert_eq!(bucket_of(10), 9);
        assert_eq!(bucket_of(15), 11);
        assert_eq!(bucket_upper(8), 9);
        assert_eq!(bucket_upper(11), 15);
        // A mid-range value: 1500 ∈ [1280, 1536).
        assert_eq!(bucket_upper(bucket_of(1500)), 1535);
        // Overflow clamps into the last bucket.
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), (1u64 << 41) - 1);
    }

    #[test]
    fn buckets_contiguous_and_monotonic() {
        // Every bucket's upper bound + 1 lands in the next bucket, and
        // each value maps into a bucket whose range contains it.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let upper = bucket_upper(i);
            assert_eq!(bucket_of(upper), i, "upper of bucket {i}");
            assert_eq!(bucket_of(upper + 1), i + 1, "successor of bucket {i}");
            assert!(bucket_upper(i + 1) > upper, "monotonic uppers at {i}");
        }
    }

    #[test]
    fn quantile_error_within_bound() {
        // The reported quantile is the bucket's upper bound, so the
        // worst overestimate is a value at a bucket's lower bound:
        // bounded by +25%, the largest sub-bucket ratio (5/4).
        for v in [4u64, 100, 1_000, 50_000, 1_000_000, 123_456_789] {
            let h = Histogram::new();
            h.record_ns(v);
            let est = h.quantile_ns(0.5);
            assert!(est >= v);
            assert!(
                (est - v) * 4 <= v,
                "estimate {est} overshoots {v} by more than 25%"
            );
        }
    }

    #[test]
    fn histogram_quantiles_and_summary() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        // 99 fast samples in sub-bucket [1280, 1536), one slow outlier.
        for _ in 0..99 {
            h.record_ns(1500);
        }
        h.record_ns(1_000_000);
        assert_eq!(h.count(), 100);
        let s = h.summary();
        assert_eq!(s.p50_ns, 1535);
        assert_eq!(s.p95_ns, 1535);
        // Rank 99 of 100 is still in the fast bucket; only the max
        // (rank 100) reaches the outlier's sub-bucket [917504, 2^20).
        assert_eq!(s.p99_ns, 1535);
        assert_eq!(h.quantile_ns(1.0), (1u64 << 20) - 1);
        assert_eq!(s.mean_ns, (99 * 1500 + 1_000_000) / 100);
    }

    #[test]
    fn counter_gauge_roundtrip() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn registry_dedupes_by_name_and_resets() {
        let _serial = TEST_REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Distinct names from the rest of the suite: the registry is
        // process-global and tests share it.
        let a = counter("test-registry-counter");
        let b = counter("test-registry-counter");
        a.incr();
        b.incr();
        assert_eq!(a.get(), 2);
        let snap = metrics_snapshot();
        assert!(snap
            .iter()
            .any(|(n, v)| *n == "test-registry-counter" && *v == MetricValue::Counter(2)));
        // Kind mismatch: returns a detached handle, keeps the original.
        let h = histogram("test-registry-counter");
        h.record_ns(10);
        assert_eq!(a.get(), 2);
        reset_metrics();
        assert!(!metrics_snapshot()
            .iter()
            .any(|(n, _)| *n == "test-registry-counter"));
        // Old handle still works, just unregistered.
        a.incr();
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn thread_cache_shares_one_underlying_metric() {
        let _serial = TEST_REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset_metrics();
        let local = counter("test-tls-cache-counter");
        local.incr();
        // A second lookup on this thread hits the cache; a lookup on a
        // fresh thread goes through the registry. All three handles
        // must alias the same atomic.
        let again = counter("test-tls-cache-counter");
        again.incr();
        let from_thread = std::thread::spawn(|| {
            let c = counter("test-tls-cache-counter");
            c.incr();
            c.get()
        })
        .join()
        .unwrap();
        assert_eq!(from_thread, 3);
        assert_eq!(local.get(), 3);
    }

    #[test]
    fn reset_invalidates_thread_cache() {
        let _serial = TEST_REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = counter("test-tls-gen-counter");
        a.incr();
        reset_metrics();
        // Post-reset the cached handle must not be reused: the lookup
        // re-registers, so the snapshot sees a fresh zeroed counter.
        let b = counter("test-tls-gen-counter");
        assert_eq!(b.get(), 0);
        b.incr();
        assert!(metrics_snapshot()
            .iter()
            .any(|(n, v)| *n == "test-tls-gen-counter" && *v == MetricValue::Counter(1)));
        // The pre-reset handle is detached but alive.
        a.incr();
        assert_eq!(a.get(), 2);
    }
}
