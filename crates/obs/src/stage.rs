//! Per-query stage attribution: where did this query's time go?
//!
//! The serve pipeline crosses three crates (cache lookup in
//! `lbq-serve`, tree traversals in `lbq-rtree`, clipping in
//! `lbq-core`), so per-stage timing cannot live in any one of them.
//! Instead each pipeline stage brackets itself with a [`stage_timer`]
//! guard; the elapsed nanoseconds accumulate in plain thread-local
//! cells (queries never migrate threads mid-flight — a serve worker
//! runs each query start to finish). When a query completes, the
//! engine calls [`take_stages`] to harvest and zero the cells, getting
//! a [`StageNanos`] breakdown it attaches to the response and feeds to
//! the flight recorder.
//!
//! When recording is off ([`set_recording`]) a timer is a single
//! relaxed atomic load and no clock is read — the same disabled-path
//! contract as tracing spans. Re-entrant timers for the same stage
//! (e.g. a grouped TPNN chain falling back to a solo chain) are inert
//! at the inner level, so nesting never double-counts.
//!
//! Stage names are kebab-case literals in [`STAGE_NAMES`]; each stage
//! also feeds a registered `stage-*` histogram so aggregate per-stage
//! latency distributions appear in [`crate::metrics_snapshot`] and in
//! exporter snapshots without any extra plumbing.

use crate::metrics::{histogram, Histogram};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of attributed pipeline stages.
pub const STAGE_COUNT: usize = 7;

/// A timed stage of the serve pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Server-side cache probe (`lbq-serve`).
    CacheLookup = 0,
    /// Solo best-first kNN traversal (`lbq-rtree`).
    TreeKnn = 1,
    /// Shared-frontier group kNN traversal (`lbq-rtree`).
    GroupKnn = 2,
    /// TPNN influence-set chain, solo or grouped (`lbq-rtree`).
    TpnnChain = 3,
    /// Half-plane clipping of the validity polygon (`lbq-core`).
    Clip = 4,
    /// Window query + validity-region construction (`lbq-core`).
    WindowPass = 5,
    /// Hot-tile point location + memoized-cell probe (`lbq-serve`).
    HotLookup = 6,
}

/// Kebab-case display names, indexed by `Stage as usize`.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "cache-lookup",
    "tree-knn",
    "group-knn",
    "tpnn-chain",
    "clip",
    "window-pass",
    "hot-lookup",
];

impl Stage {
    /// The stage's kebab-case name.
    pub fn name(self) -> &'static str {
        STAGE_NAMES[self as usize]
    }

    /// All stages in index order.
    pub fn all() -> [Stage; STAGE_COUNT] {
        [
            Stage::CacheLookup,
            Stage::TreeKnn,
            Stage::GroupKnn,
            Stage::TpnnChain,
            Stage::Clip,
            Stage::WindowPass,
            Stage::HotLookup,
        ]
    }
}

/// Master switch for stage timing and flight recording. Off by
/// default; [`crate::init_recorder`] turns it on.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Whether stage timing / flight recording is currently on.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns stage timing and flight recording on or off. Cheap and
/// race-free to flip at runtime; in-flight queries may report a
/// partial stage breakdown across the transition.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

thread_local! {
    /// Per-stage accumulated nanoseconds for the query currently
    /// running on this thread.
    static STAGE_ACC: [Cell<u64>; STAGE_COUNT] = const { [const { Cell::new(0) }; STAGE_COUNT] };
    /// Bitmask of stages with a live timer on this thread — makes
    /// nested same-stage timers inert instead of double-counting.
    static STAGE_ACTIVE: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard from [`stage_timer`]: adds its elapsed time to the
/// thread's accumulator for the stage when dropped.
#[derive(Debug)]
pub struct StageTimer {
    stage: Stage,
    start: Option<Instant>,
}

/// Starts timing `stage` on this thread until the guard drops.
///
/// Inert (no clock read) when recording is off or when an enclosing
/// timer for the same stage is already running on this thread.
#[inline]
pub fn stage_timer(stage: Stage) -> StageTimer {
    if !recording() {
        return StageTimer { stage, start: None };
    }
    let bit = 1u32 << (stage as usize);
    let nested = STAGE_ACTIVE.with(|m| {
        let mask = m.get();
        if mask & bit != 0 {
            true
        } else {
            m.set(mask | bit);
            false
        }
    });
    StageTimer {
        stage,
        start: if nested { None } else { Some(Instant::now()) },
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let i = self.stage as usize;
            STAGE_ACC.with(|acc| acc[i].set(acc[i].get().saturating_add(ns)));
            let bit = 1u32 << i;
            STAGE_ACTIVE.with(|m| m.set(m.get() & !bit));
        }
    }
}

/// A per-query stage breakdown in nanoseconds, indexed like
/// [`STAGE_NAMES`]. `Copy`, 48 bytes — cheap to attach to responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageNanos(pub [u64; STAGE_COUNT]);

impl StageNanos {
    /// Nanoseconds attributed to `stage`.
    #[inline]
    pub fn get(&self, stage: Stage) -> u64 {
        self.0[stage as usize]
    }

    /// Sum across all stages.
    pub fn total(&self) -> u64 {
        self.0.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// True when no stage recorded any time (e.g. recording off).
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&ns| ns == 0)
    }

    /// `(name, ns)` pairs in stage order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        STAGE_NAMES.iter().copied().zip(self.0.iter().copied())
    }

    /// Element-wise saturating sum.
    pub fn saturating_add(mut self, other: StageNanos) -> StageNanos {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a = a.saturating_add(b);
        }
        self
    }

    /// Element-wise division, for amortizing a group-shared stage
    /// across the group's members (mirrors the engine's `shared_ns`
    /// accounting). `n = 0` is treated as 1.
    pub fn amortized(mut self, n: u64) -> StageNanos {
        let n = n.max(1);
        for a in self.0.iter_mut() {
            *a /= n;
        }
        self
    }
}

/// Harvests and zeroes this thread's stage accumulators.
///
/// The engine calls this at each query boundary; a timer still live on
/// this thread keeps its not-yet-dropped elapsed time (it is charged
/// to whatever query is current when the guard drops).
pub fn take_stages() -> StageNanos {
    STAGE_ACC.with(|acc| {
        let mut out = [0u64; STAGE_COUNT];
        for (o, cell) in out.iter_mut().zip(acc.iter()) {
            *o = cell.replace(0);
        }
        StageNanos(out)
    })
}

/// The registered aggregate histogram for each stage (`stage-*`
/// metric names), created on first use.
pub fn stage_histograms() -> &'static [Histogram; STAGE_COUNT] {
    static HISTS: OnceLock<[Histogram; STAGE_COUNT]> = OnceLock::new();
    HISTS.get_or_init(|| {
        [
            histogram("stage-cache-lookup"),
            histogram("stage-tree-knn"),
            histogram("stage-group-knn"),
            histogram("stage-tpnn-chain"),
            histogram("stage-clip"),
            histogram("stage-window-pass"),
            histogram("stage-hot-lookup"),
        ]
    })
}

/// Feeds each non-zero stage of `stages` into its aggregate
/// `stage-*` histogram (zero stages are skipped so untouched stages
/// do not flood bucket 0).
pub fn record_stage_histograms(stages: &StageNanos) {
    let hists = stage_histograms();
    for (h, &ns) in hists.iter().zip(stages.0.iter()) {
        if ns > 0 {
            h.record_ns(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-global recording flag.
    static RECORDING_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_timer_records_nothing() {
        let _serial = RECORDING_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        set_recording(false);
        {
            let _t = stage_timer(Stage::TreeKnn);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(take_stages().is_zero());
    }

    #[test]
    fn timer_accumulates_into_named_slot() {
        let _serial = RECORDING_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        set_recording(true);
        {
            let _t = stage_timer(Stage::Clip);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = take_stages();
        set_recording(false);
        assert!(
            s.get(Stage::Clip) >= 1_000_000,
            "clip = {}",
            s.get(Stage::Clip)
        );
        assert_eq!(s.get(Stage::TreeKnn), 0);
        // A second take sees zeroed slots.
        assert!(take_stages().is_zero());
    }

    #[test]
    fn nested_same_stage_timer_is_inert() {
        let _serial = RECORDING_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        set_recording(true);
        {
            let _outer = stage_timer(Stage::TpnnChain);
            {
                let _inner = stage_timer(Stage::TpnnChain);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            // Inner dropped: accumulator still untouched, outer owns it.
            assert!(STAGE_ACC.with(|a| a[Stage::TpnnChain as usize].get()) == 0);
        }
        let s = take_stages();
        set_recording(false);
        let ns = s.get(Stage::TpnnChain);
        assert!(ns >= 2_000_000, "outer timer owns the full window: {ns}");
        assert!(ns < 1_000_000_000, "no double count: {ns}");
    }

    #[test]
    fn stage_names_align_with_enum() {
        for stage in Stage::all() {
            assert_eq!(STAGE_NAMES[stage as usize], stage.name());
        }
        assert_eq!(Stage::all().len(), STAGE_COUNT);
    }

    #[test]
    fn amortized_and_sum() {
        let mut a = StageNanos::default();
        a.0[Stage::GroupKnn as usize] = 900;
        a.0[Stage::TpnnChain as usize] = 300;
        let third = a.amortized(3);
        assert_eq!(third.get(Stage::GroupKnn), 300);
        assert_eq!(third.get(Stage::TpnnChain), 100);
        let sum = third.saturating_add(third);
        assert_eq!(sum.total(), 800);
        assert!(!sum.is_zero());
        assert_eq!(
            sum.iter().find(|(n, _)| *n == "group-knn").map(|(_, v)| v),
            Some(600)
        );
    }
}
