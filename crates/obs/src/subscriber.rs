//! Subscribers receive closed spans and emitted events.
//!
//! Exactly one subscriber is installed at a time (process-global).
//! [`install`] flips the tracing fast-path flag on, [`uninstall`] flips
//! it off; both are cheap and test-safe. [`install_from_env`] wires a
//! stderr subscriber from the `LBQ_TRACE` environment variable so
//! examples and benches opt in without code changes.

use crate::trace::{EventRecord, SpanRecord, Value, ENABLED};
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, RwLock};

/// A sink for trace data. Implementations must be `Send + Sync`; they
/// are called from whatever thread closed the span.
pub trait Subscriber: Send + Sync {
    /// Called when a span closes.
    fn on_span(&self, span: &SpanRecord);
    /// Called when an event is emitted.
    fn on_event(&self, event: &EventRecord);
    /// Flushes any buffered output (default: nothing).
    fn flush(&self) {}
}

static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

fn read_global() -> Option<Arc<dyn Subscriber>> {
    GLOBAL
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// Installs `sub` as the process-global subscriber, enabling tracing.
/// Replaces (and returns) any previously installed subscriber.
pub fn install(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    let mut g = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    let prev = g.replace(sub);
    ENABLED.store(true, Ordering::Relaxed);
    prev
}

/// Removes the global subscriber, disabling tracing, and returns it.
pub fn uninstall() -> Option<Arc<dyn Subscriber>> {
    let mut g = GLOBAL.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Relaxed);
    g.take()
}

/// Flushes the installed subscriber, if any.
pub fn flush() {
    if let Some(s) = read_global() {
        s.flush();
    }
}

/// Reads `LBQ_TRACE` and installs a matching stderr subscriber:
/// `text` → [`TextSubscriber`], `jsonl`/`json` → [`JsonLinesSubscriber`].
/// Any other value (or unset) leaves tracing disabled. Returns whether
/// a subscriber was installed.
pub fn install_from_env() -> bool {
    match std::env::var("LBQ_TRACE").as_deref() {
        Ok("text") => {
            install(Arc::new(TextSubscriber::stderr()));
            true
        }
        Ok("jsonl") | Ok("json") => {
            install(Arc::new(JsonLinesSubscriber::stderr()));
            true
        }
        _ => false,
    }
}

pub(crate) fn dispatch_span(record: &SpanRecord) {
    if let Some(s) = read_global() {
        s.on_span(record);
    }
}

pub(crate) fn dispatch_event(record: &EventRecord) {
    if let Some(s) = read_global() {
        s.on_event(record);
    }
}

/// One entry in a [`RingBufferSubscriber`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A closed span.
    Span(SpanRecord),
    /// An emitted event.
    Event(EventRecord),
}

impl TraceRecord {
    /// The record's span/event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceRecord::Span(s) => s.name,
            TraceRecord::Event(e) => e.name,
        }
    }
}

/// Keeps the most recent `capacity` records in memory; older records
/// are overwritten. Useful for tests and post-mortem inspection of the
/// tail of a run.
pub struct RingBufferSubscriber {
    capacity: usize,
    inner: Mutex<Ring>,
}

struct Ring {
    buf: Vec<TraceRecord>,
    /// Index of the slot the next record lands in once `buf` is full.
    next: usize,
    total: u64,
}

impl RingBufferSubscriber {
    /// Creates a ring holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSubscriber {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
                total: 0,
            }),
        }
    }

    fn push(&self, record: TraceRecord) {
        let mut r = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if r.buf.len() < self.capacity {
            r.buf.push(record);
        } else {
            let i = r.next;
            r.buf[i] = record;
            r.next = (i + 1) % self.capacity;
        }
        r.total += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let r = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }

    /// Total records ever received, including overwritten ones.
    pub fn total_received(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Drops all retained records (the total count is kept).
    pub fn clear(&self) {
        let mut r = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        r.buf.clear();
        r.next = 0;
    }
}

impl Subscriber for RingBufferSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        self.push(TraceRecord::Span(span.clone()));
    }
    fn on_event(&self, event: &EventRecord) {
        self.push(TraceRecord::Event(event.clone()));
    }
}

/// Writes one human-readable line per span/event to a writer.
pub struct TextSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl TextSubscriber {
    /// Text output to an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TextSubscriber {
            out: Mutex::new(out),
        }
    }

    /// Text output to stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
    }
}

fn fmt_fields(buf: &mut String, fields: &[(&'static str, Value)]) {
    use std::fmt::Write as _;
    for (k, v) in fields {
        let _ = write!(buf, " {k}={v}");
    }
}

impl Subscriber for TextSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(80);
        let _ = write!(
            line,
            "[lbq-trace] span {} #{} dur={}",
            span.name,
            span.id,
            crate::report::fmt_ns(span.elapsed_ns)
        );
        if let Some(p) = span.parent {
            let _ = write!(line, " parent=#{p}");
        }
        fmt_fields(&mut line, &span.fields);
        self.write_line(&line);
    }

    fn on_event(&self, event: &EventRecord) {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(80);
        let _ = write!(line, "[lbq-trace] event {}", event.name);
        if let Some(p) = event.parent {
            let _ = write!(line, " in=#{p}");
        }
        fmt_fields(&mut line, &event.fields);
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

/// Writes one JSON object per line per span/event — a JSONL trace that
/// downstream tooling can parse without a JSON library on our side.
pub struct JsonLinesSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSubscriber {
    /// JSONL output to an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSubscriber {
            out: Mutex::new(out),
        }
    }

    /// JSONL output to stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{line}");
    }
}

/// Escapes `s` into `buf` as JSON string contents (no quotes).
/// Shared with the snapshot exporter (`crate::export`).
pub(crate) fn json_escape(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

pub(crate) fn json_value(buf: &mut String, v: &Value) {
    use std::fmt::Write as _;
    match v {
        Value::U64(n) => {
            let _ = write!(buf, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(buf, "{n}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(buf, "{x}");
        }
        // JSON has no NaN/Infinity.
        Value::F64(_) => buf.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(buf, "{b}");
        }
        Value::Str(s) => {
            buf.push('"');
            json_escape(buf, s);
            buf.push('"');
        }
        Value::Text(s) => {
            buf.push('"');
            json_escape(buf, s);
            buf.push('"');
        }
    }
}

fn json_fields(buf: &mut String, fields: &[(&'static str, Value)]) {
    buf.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push('"');
        json_escape(buf, k);
        buf.push_str("\":");
        json_value(buf, v);
    }
    buf.push('}');
}

impl Subscriber for JsonLinesSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "{{\"type\":\"span\",\"name\":\"{}\",\"id\":{},\"start_ns\":{},\"elapsed_ns\":{}",
            span.name, span.id, span.start_ns, span.elapsed_ns
        );
        if let Some(p) = span.parent {
            let _ = write!(line, ",\"parent\":{p}");
        }
        json_fields(&mut line, &span.fields);
        line.push('}');
        self.write_line(&line);
    }

    fn on_event(&self, event: &EventRecord) {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(128);
        let _ = write!(
            line,
            "{{\"type\":\"event\",\"name\":\"{}\",\"at_ns\":{}",
            event.name, event.at_ns
        );
        if let Some(p) = event.parent {
            let _ = write!(line, ",\"parent\":{p}");
        }
        json_fields(&mut line, &event.fields);
        line.push('}');
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_specials() {
        let mut buf = String::new();
        json_escape(&mut buf, "a\"b\\c\nd\te\u{1}");
        assert_eq!(buf, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn json_value_nan_is_null() {
        let mut buf = String::new();
        json_value(&mut buf, &Value::F64(f64::NAN));
        assert_eq!(buf, "null");
        buf.clear();
        json_value(&mut buf, &Value::F64(2.5));
        assert_eq!(buf, "2.5");
    }

    #[test]
    fn ring_buffer_wraps_oldest_first() {
        let ring = RingBufferSubscriber::new(3);
        for i in 0..5u64 {
            ring.push(TraceRecord::Event(EventRecord {
                name: "test-event",
                parent: None,
                at_ns: i,
                fields: Vec::new(),
            }));
        }
        let records = ring.records();
        assert_eq!(records.len(), 3);
        let stamps: Vec<u64> = records
            .iter()
            .map(|r| match r {
                TraceRecord::Event(e) => e.at_ns,
                TraceRecord::Span(s) => s.start_ns,
            })
            .collect();
        assert_eq!(stamps, vec![2, 3, 4]);
        assert_eq!(ring.total_received(), 5);
        ring.clear();
        assert!(ring.records().is_empty());
        assert_eq!(ring.total_received(), 5);
    }
}
