//! The snapshot exporter: periodic JSONL exposition of the whole
//! observability surface — metrics registry, heatmaps, flight-recorder
//! stats, and buffered slow-query captures — so external tooling can
//! scrape a running server by tailing one file.
//!
//! [`install_exporter`] spawns a background thread that appends one
//! *snapshot block* to the target file every period (and once at
//! start and once at shutdown, so even short runs export). A block is
//! framed by `snapshot` / `snapshot-end` lines and versioned by
//! [`SNAPSHOT_VERSION`]; every line is a self-describing JSON object
//! with a `type` field, parseable without a JSON library (schema
//! round-trip is tested against `lbq-bench`'s hand-rolled parser).
//!
//! [`install_exporter_from_env`] wires this from
//! `LBQ_OBS_SNAPSHOT=path[,period]` (period like `500ms`, `2s`, or a
//! bare millisecond count; default 1s) and arms the flight recorder,
//! which is how examples and production binaries opt in without code
//! changes.
//!
//! Static context (build id, config knobs, …) can be stamped onto
//! every snapshot header with [`snapshot_field`].

use crate::heatmap::heatmaps_snapshot;
use crate::metrics::{metrics_snapshot, MetricValue};
use crate::recorder::{self, RecorderConfig, SlowCapture};
use crate::stage::STAGE_NAMES;
use crate::subscriber::{json_escape, json_value};
use crate::trace::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Version stamped on every snapshot header; bump on schema changes.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Most tiles a single heatmap line carries (the hottest ones); the
/// line's `tiles-total` field reports how many non-empty tiles existed
/// before truncation.
const MAX_TILES_PER_LINE: usize = 256;

static EXTRA_FIELDS: Mutex<BTreeMap<&'static str, Value>> = Mutex::new(BTreeMap::new());

/// Registers a static field rendered into every snapshot header's
/// `fields` object (last write per name wins). Names must be
/// kebab-case literals (enforced by `obs-span-name` in `lbq-check`).
pub fn snapshot_field(name: &'static str, value: impl Into<Value>) {
    let mut g = EXTRA_FIELDS.lock().unwrap_or_else(|e| e.into_inner());
    g.insert(name, value.into());
}

fn push_kv_str(buf: &mut String, key: &str, v: &str) {
    buf.push('"');
    json_escape(buf, key);
    buf.push_str("\":\"");
    json_escape(buf, v);
    buf.push('"');
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

fn render_slow_line(buf: &mut String, cap: &SlowCapture) {
    let ev = &cap.event;
    let _ = write!(
        buf,
        "{{\"type\":\"slow-query\",\"query-id\":{},\"kind\":\"{}\",\"tier\":\"{}\",\
         \"k\":{},\"tile\":{},\"latency-ns\":{},\"threshold-ns\":{},\
         \"node-accesses\":{},\"page-accesses\":{},\"stages\":{{",
        ev.query_id,
        ev.kind.name(),
        ev.tier.name(),
        ev.k,
        ev.tile,
        ev.latency_ns,
        cap.threshold_ns,
        ev.node_accesses,
        ev.page_accesses,
    );
    for (i, (name, ns)) in STAGE_NAMES.iter().zip(ev.stages.0).enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(buf, "\"{name}\":{ns}");
    }
    buf.push_str("}}\n");
}

/// Renders one complete snapshot block (multiple `\n`-terminated JSONL
/// lines): header, one `metric` line per registered metric, one
/// `heatmap` line per registered heatmap, a `recorder` line plus the
/// drained `slow-query` captures (when the flight recorder is
/// installed), and a `snapshot-end` trailer.
///
/// Public so tests can exercise the schema without a filesystem; the
/// background exporter thread calls this too.
pub fn render_snapshot(seq: u64) -> String {
    let mut out = String::with_capacity(4096);

    // Header.
    let _ = write!(
        out,
        "{{\"type\":\"snapshot\",\"version\":{SNAPSHOT_VERSION},\"seq\":{seq},\"unix-ms\":{}",
        unix_ms()
    );
    out.push_str(",\"fields\":{");
    {
        let extras = EXTRA_FIELDS.lock().unwrap_or_else(|e| e.into_inner());
        for (i, (k, v)) in extras.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, k);
            out.push_str("\":");
            json_value(&mut out, v);
        }
    }
    out.push_str("}}\n");

    // Metrics registry.
    for (name, value) in metrics_snapshot() {
        out.push_str("{\"type\":\"metric\",");
        push_kv_str(&mut out, "name", name);
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"kind\":\"counter\",\"value\":{v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"kind\":\"gauge\",\"value\":{v}");
            }
            MetricValue::Histogram(s) => {
                let _ = write!(
                    out,
                    ",\"kind\":\"histogram\",\"count\":{},\"p50-ns\":{},\"p95-ns\":{},\
                     \"p99-ns\":{},\"mean-ns\":{}",
                    s.count, s.p50_ns, s.p95_ns, s.p99_ns, s.mean_ns
                );
            }
        }
        out.push_str("}\n");
    }

    // Heatmaps: hottest tiles first, truncated per line.
    for (name, mut tiles) in heatmaps_snapshot() {
        let total = tiles.len();
        tiles.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.tile.cmp(&b.tile)));
        tiles.truncate(MAX_TILES_PER_LINE);
        out.push_str("{\"type\":\"heatmap\",");
        push_kv_str(&mut out, "name", name);
        let _ = write!(out, ",\"tiles-total\":{total},\"tiles\":[");
        for (i, t) in tiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{},{}]", t.tile, t.hits, t.total_ns);
        }
        out.push_str("]}\n");
    }

    // Flight recorder stats + drained slow captures.
    if let Some(r) = recorder::recorder() {
        let s = r.stats();
        let _ = write!(
            out,
            "{{\"type\":\"recorder\",\"capacity\":{},\"total\":{},\"slow-captured\":{},\
             \"threshold-ns\":{},\"latency-count\":{},\"latency-p50-ns\":{},\
             \"latency-p99-ns\":{},\"latency-mean-ns\":{}}}\n",
            s.capacity,
            s.total,
            s.slow_captured,
            s.threshold_ns,
            s.latency.count,
            s.latency.p50_ns,
            s.latency.p99_ns,
            s.latency.mean_ns
        );
        for cap in r.take_slow_captures() {
            render_slow_line(&mut out, &cap);
        }
    }

    // Trailer: line count includes header and trailer.
    let lines = out.lines().count() + 1;
    let _ = write!(
        out,
        "{{\"type\":\"snapshot-end\",\"seq\":{seq},\"lines\":{lines}}}\n"
    );
    out
}

/// Handle to the background exporter thread. Dropping it stops the
/// thread, which writes one final snapshot before exiting.
pub struct Exporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl std::fmt::Debug for Exporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exporter")
            .field("path", &self.path)
            .finish()
    }
}

impl Exporter {
    /// The file snapshots are appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the background thread, writes the final snapshot, and
    /// joins. Called automatically on drop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the snapshot exporter: truncates `path`, then appends one
/// snapshot block immediately, one per `period` (floored to 10 ms),
/// and one final block at shutdown.
pub fn install_exporter(path: &Path, period: Duration) -> std::io::Result<Exporter> {
    let mut file = std::fs::File::create(path)?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let period = period.max(Duration::from_millis(10));
    let handle = std::thread::Builder::new()
        .name("lbq-obs-export".into())
        .spawn(move || {
            let mut seq = 0u64;
            loop {
                // Write errors must not take the process down; drop the
                // block and keep serving.
                let _ = file.write_all(render_snapshot(seq).as_bytes());
                let _ = file.flush();
                seq += 1;
                // Sleep in slices so shutdown stays prompt.
                let mut slept = Duration::ZERO;
                while slept < period {
                    if thread_stop.load(Ordering::Acquire) {
                        let _ = file.write_all(render_snapshot(seq).as_bytes());
                        let _ = file.flush();
                        return;
                    }
                    let slice = Duration::from_millis(10).min(period - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })?;
    Ok(Exporter {
        stop,
        handle: Some(handle),
        path: path.to_path_buf(),
    })
}

/// Parses a `path[,period]` exporter spec. The period accepts `500ms`,
/// `2s`, or a bare millisecond count; default 1 s.
fn parse_spec(spec: &str) -> Option<(PathBuf, Duration)> {
    let (path, period) = match spec.split_once(',') {
        Some((p, rest)) => (p.trim(), parse_period(rest.trim())?),
        None => (spec.trim(), Duration::from_secs(1)),
    };
    if path.is_empty() {
        return None;
    }
    Some((PathBuf::from(path), period))
}

fn parse_period(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.trim().parse::<u64>().ok().map(Duration::from_millis);
    }
    if let Some(secs) = s.strip_suffix('s') {
        return secs.trim().parse::<u64>().ok().map(Duration::from_secs);
    }
    s.parse::<u64>().ok().map(Duration::from_millis)
}

/// Reads `LBQ_OBS_SNAPSHOT=path[,period]`; when set, arms the flight
/// recorder (default config) and installs the exporter. Returns the
/// handle — keep it alive for the run — or `None` when unset or
/// malformed (malformed specs and I/O errors are reported on stderr,
/// never fatal).
pub fn install_exporter_from_env() -> Option<Exporter> {
    let spec = std::env::var("LBQ_OBS_SNAPSHOT").ok()?;
    let Some((path, period)) = parse_spec(&spec) else {
        eprintln!("[lbq-obs] ignoring malformed LBQ_OBS_SNAPSHOT={spec:?}");
        return None;
    };
    recorder::init_recorder(RecorderConfig::default());
    match install_exporter(&path, period) {
        Ok(e) => Some(e),
        Err(err) => {
            eprintln!(
                "[lbq-obs] cannot open snapshot file {}: {err}",
                path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_specs() {
        let (p, d) = parse_spec("/tmp/x.jsonl").unwrap();
        assert_eq!(p, PathBuf::from("/tmp/x.jsonl"));
        assert_eq!(d, Duration::from_secs(1));
        assert_eq!(
            parse_spec("snap.jsonl,500ms").unwrap().1,
            Duration::from_millis(500)
        );
        assert_eq!(
            parse_spec("snap.jsonl,2s").unwrap().1,
            Duration::from_secs(2)
        );
        assert_eq!(
            parse_spec("snap.jsonl, 250 ").unwrap().1,
            Duration::from_millis(250)
        );
        assert!(parse_spec("").is_none());
        assert!(parse_spec("x,abc").is_none());
    }

    #[test]
    fn snapshot_block_is_framed_and_versioned() {
        snapshot_field("test-export-field", 7u64);
        let block = render_snapshot(3);
        let lines: Vec<&str> = block.lines().collect();
        assert!(lines.len() >= 2);
        assert!(lines[0].starts_with("{\"type\":\"snapshot\",\"version\":1,\"seq\":3,"));
        assert!(lines[0].contains("\"test-export-field\":7"));
        let last = lines[lines.len() - 1];
        assert!(last.starts_with("{\"type\":\"snapshot-end\",\"seq\":3,"));
        assert!(last.contains(&format!("\"lines\":{}", lines.len())));
        // Every line is a single JSON object on one line.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "line: {l}");
        }
    }

    #[test]
    fn metrics_appear_in_snapshot() {
        let _serial = crate::metrics::TEST_REGISTRY_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let c = crate::metrics::counter("test-export-counter");
        c.add(41);
        c.incr();
        let block = render_snapshot(0);
        assert!(block
            .lines()
            .any(|l| l.contains("\"name\":\"test-export-counter\"")
                && l.contains("\"kind\":\"counter\"")
                && l.contains("\"value\":42")));
    }
}
