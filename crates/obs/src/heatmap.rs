//! Hot-tile heatmaps: per-Hilbert-tile hit and latency counters.
//!
//! A [`Heatmap`] is a flat pair of atomic arrays indexed by a tile
//! prefix — the top [`HEATMAP_TILE_BITS`] bits of a query's Hilbert
//! key. Recording is two relaxed `fetch_add`s, no locks, no hashing:
//! the index is masked into range, so any `u32` tile id is safe.
//! Different tiles touch different cache lines almost always (4096
//! slots × two u64 arrays), so concurrent workers sweeping disjoint
//! tiles don't contend.
//!
//! Heatmaps are looked up by name ([`heatmap`]) from a small global
//! registry (lock only on lookup — stash the cloned handle), which is
//! how the snapshot exporter discovers them. This is the
//! traffic-concentration signal ROADMAP item 4's lazy Voronoi
//! materialization will consume: [`Heatmap::hot_tiles`] answers
//! "which tiles deserve precomputation" directly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tile-prefix width: a heatmap has `2^HEATMAP_TILE_BITS` slots.
pub const HEATMAP_TILE_BITS: u32 = 12;

/// Number of tile slots in a heatmap.
pub const HEATMAP_SLOTS: usize = 1 << HEATMAP_TILE_BITS;

struct HeatmapInner {
    hits: Vec<AtomicU64>,
    total_ns: Vec<AtomicU64>,
}

/// A named per-tile hit/latency accumulator. Cloning shares storage.
#[derive(Clone)]
pub struct Heatmap(Arc<HeatmapInner>);

impl std::fmt::Debug for Heatmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heatmap")
            .field("slots", &HEATMAP_SLOTS)
            .finish()
    }
}

impl Default for Heatmap {
    fn default() -> Self {
        Heatmap(Arc::new(HeatmapInner {
            hits: (0..HEATMAP_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            total_ns: (0..HEATMAP_SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }))
    }
}

/// One non-empty tile in a [`Heatmap::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileStat {
    /// Tile prefix (always `< HEATMAP_SLOTS`).
    pub tile: u32,
    /// Queries whose focus landed in this tile.
    pub hits: u64,
    /// Total latency those queries accumulated, ns.
    pub total_ns: u64,
}

impl TileStat {
    /// Mean latency per hit, ns.
    pub fn mean_ns(&self) -> u64 {
        if self.hits == 0 {
            0
        } else {
            self.total_ns / self.hits
        }
    }
}

impl Heatmap {
    /// Creates a detached (unregistered) heatmap; use [`heatmap`] for
    /// the named global registry.
    pub fn new() -> Heatmap {
        Heatmap::default()
    }

    /// Extracts the tile prefix from a Hilbert key of `key_bits`
    /// significant bits: its top [`HEATMAP_TILE_BITS`] bits. For keys
    /// narrower than a tile prefix the key itself is the tile.
    #[inline]
    pub fn tile_of_key(key: u64, key_bits: u32) -> u32 {
        let shifted = if key_bits > HEATMAP_TILE_BITS {
            key >> (key_bits - HEATMAP_TILE_BITS)
        } else {
            key
        };
        // lbq-check: allow(lossy-cast) — masked to HEATMAP_TILE_BITS
        (shifted as u32) & ((HEATMAP_SLOTS - 1) as u32)
    }

    /// Adds one hit of `ns` latency to `tile` (masked into range).
    /// Two relaxed atomic adds; safe for any `tile` value.
    #[inline]
    pub fn record(&self, tile: u32, ns: u64) {
        let i = (tile as usize) & (HEATMAP_SLOTS - 1);
        self.0.hits[i].fetch_add(1, Ordering::Relaxed);
        self.0.total_ns[i].fetch_add(ns, Ordering::Relaxed);
    }

    /// Hits recorded against `tile` (masked into range).
    pub fn hits(&self, tile: u32) -> u64 {
        self.0.hits[(tile as usize) & (HEATMAP_SLOTS - 1)].load(Ordering::Relaxed)
    }

    /// Total hits across all tiles.
    pub fn total_hits(&self) -> u64 {
        self.0.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    /// All non-empty tiles, ascending by tile id.
    pub fn snapshot(&self) -> Vec<TileStat> {
        (0..HEATMAP_SLOTS)
            .filter_map(|i| {
                let hits = self.0.hits[i].load(Ordering::Relaxed);
                if hits == 0 {
                    return None;
                }
                Some(TileStat {
                    // lbq-check: allow(lossy-cast) — i < HEATMAP_SLOTS = 2^12
                    tile: i as u32,
                    hits,
                    total_ns: self.0.total_ns[i].load(Ordering::Relaxed),
                })
            })
            .collect()
    }

    /// The `n` hottest tiles by hit count, descending (ties broken by
    /// tile id for determinism).
    pub fn hot_tiles(&self, n: usize) -> Vec<TileStat> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.tile.cmp(&b.tile)));
        all.truncate(n);
        all
    }

    /// Zeroes every slot (counts in flight may survive the sweep).
    pub fn clear(&self) {
        for i in 0..HEATMAP_SLOTS {
            self.0.hits[i].store(0, Ordering::Relaxed);
            self.0.total_ns[i].store(0, Ordering::Relaxed);
        }
    }
}

static HEATMAPS: Mutex<BTreeMap<&'static str, Heatmap>> = Mutex::new(BTreeMap::new());

/// Looks up (or creates) the heatmap named `name`. Names must be
/// kebab-case literals (the `obs-span-name` rule in `lbq-check`
/// covers this entry point). Lock only on lookup — clone the handle
/// once and record through it.
pub fn heatmap(name: &'static str) -> Heatmap {
    let mut g = HEATMAPS.lock().unwrap_or_else(|e| e.into_inner());
    g.entry(name).or_default().clone()
}

/// Snapshot of every registered heatmap's non-empty tiles, sorted by
/// name (for the exporter).
pub fn heatmaps_snapshot() -> Vec<(&'static str, Vec<TileStat>)> {
    // Clone the handles out of the registry lock first: the slot sweep
    // below is O(HEATMAP_SLOTS) per map and must not stall `heatmap()`
    // lookups on the serve path.
    let maps: Vec<(&'static str, Heatmap)> = {
        let g = HEATMAPS.lock().unwrap_or_else(|e| e.into_inner());
        g.iter().map(|(n, h)| (*n, h.clone())).collect()
    };
    // lbq-check: allow(guard-across-call) — `maps` is a plain Vec (the guard dropped with the block above); `snapshot` is Heatmap::snapshot, not the hot stats snapshot
    maps.into_iter().map(|(n, h)| (n, h.snapshot())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let h = Heatmap::new();
        h.record(5, 100);
        h.record(5, 50);
        h.record(9, 10);
        assert_eq!(h.hits(5), 2);
        assert_eq!(h.total_hits(), 3);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap[0],
            TileStat {
                tile: 5,
                hits: 2,
                total_ns: 150
            }
        );
        assert_eq!(snap[0].mean_ns(), 75);
        let hot = h.hot_tiles(1);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].tile, 5);
        h.clear();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn out_of_range_tiles_mask_into_bounds() {
        let h = Heatmap::new();
        h.record(u32::MAX, 7);
        // lbq-check: allow(lossy-cast) — HEATMAP_SLOTS = 2^12
        let last = (HEATMAP_SLOTS - 1) as u32;
        assert_eq!(h.hits(last), 1);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].tile, last);
        assert!(snap.iter().all(|t| (t.tile as usize) < HEATMAP_SLOTS));
    }

    #[test]
    fn tile_of_key_takes_top_bits() {
        // A 32-bit Hilbert key: the tile is its top 12 bits.
        let key = 0xABCD_1234u64;
        assert_eq!(Heatmap::tile_of_key(key, 32), 0xABC);
        // Narrow keys pass through (masked).
        assert_eq!(Heatmap::tile_of_key(0x7, 3), 0x7);
        assert_eq!(Heatmap::tile_of_key(u64::MAX, 64), 0xFFF);
    }

    #[test]
    fn registry_dedupes_heatmaps() {
        let a = heatmap("test-heatmap-dedupe");
        let b = heatmap("test-heatmap-dedupe");
        a.record(1, 10);
        b.record(1, 10);
        assert_eq!(a.hits(1), 2);
        assert!(heatmaps_snapshot()
            .iter()
            .any(|(n, tiles)| *n == "test-heatmap-dedupe" && !tiles.is_empty()));
    }
}
