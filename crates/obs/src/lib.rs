//! `lbq_obs` — zero-dependency tracing, metrics, and query profiling
//! for the lbq workspace.
//!
//! The paper's evaluation is cost accounting: node/page accesses per
//! query, TPNN iterations per validity region, influence-set sizes.
//! This crate makes those costs observable at runtime without pulling
//! in any external dependency (the workspace builds offline, std-only).
//!
//! Three layers:
//!
//! - **Tracing** ([`span`], [`event_with`], [`Subscriber`]): named,
//!   timed, nested spans with typed fields, delivered to a pluggable
//!   process-global subscriber ([`TextSubscriber`],
//!   [`JsonLinesSubscriber`], [`RingBufferSubscriber`]). With no
//!   subscriber installed every entry point is one relaxed atomic
//!   load — no clocks, no allocation.
//! - **Metrics** ([`counter`], [`gauge`], [`histogram`]): a named
//!   registry of lock-free handles (with per-thread lookup caches);
//!   histograms give p50/p95/p99 summaries from log-linear buckets
//!   (4 sub-buckets per octave, ≤ +25% quantile error).
//! - **Per-query attribution** ([`stage_timer`], [`take_stages`]):
//!   thread-local stage clocks bracketing each pipeline stage
//!   (cache lookup, tree kNN, group kNN, TPNN chain, clip, window),
//!   harvested per query into a [`StageNanos`] breakdown.
//! - **Flight recorder** ([`init_recorder`], [`record_query`]): a
//!   lock-free ring of recent [`QueryEvent`]s with automatic
//!   slow-query capture against a rolling p99 threshold.
//! - **Heatmaps** ([`heatmap()`]): per-Hilbert-tile hit/latency
//!   counters in flat atomic arrays — the traffic-concentration
//!   signal.
//! - **Snapshot exporter** ([`install_exporter_from_env`],
//!   [`render_snapshot`]): a background thread appending versioned
//!   JSONL snapshots of all of the above to a file on an interval
//!   (`LBQ_OBS_SNAPSHOT=path,period`).
//! - **Allocation counting** ([`note_alloc`], [`alloc_count`],
//!   [`publish_alloc_gauge`]): a bare-atomic hook for counting global
//!   allocators (registry metrics allocate on first lookup, so the hot
//!   hook must bypass them), mirrored into an `alloc-count` gauge on
//!   demand.
//! - **Reporting** ([`ProfileTable`], [`render_metrics`]): the single
//!   end-of-run formatting path used by examples and benches, with a
//!   greppable `== lbq-obs profile ==` banner.
//!
//! Span and metric names are kebab-case string literals, enforced
//! workspace-wide by the `obs-span-name` rule in `lbq-check`. The
//! taxonomy lives in DESIGN.md §9.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//!
//! let ring = Arc::new(lbq_obs::RingBufferSubscriber::new(16));
//! lbq_obs::install(ring.clone());
//! {
//!     let mut outer = lbq_obs::span("rtree-knn");
//!     outer.record("k", 4u64);
//!     let _inner = lbq_obs::span("nn-influence-set");
//!     lbq_obs::event("tpnn-iteration");
//! }
//! lbq_obs::uninstall();
//! assert_eq!(ring.records().len(), 3); // event + two spans
//! ```

pub mod alloc;
pub mod export;
pub mod heatmap;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod stage;
pub mod subscriber;
pub mod trace;

pub use alloc::{alloc_count, note_alloc, publish_alloc_gauge};
pub use export::{
    install_exporter, install_exporter_from_env, render_snapshot, snapshot_field, Exporter,
    SNAPSHOT_VERSION,
};
pub use heatmap::{
    heatmap, heatmaps_snapshot, Heatmap, TileStat, HEATMAP_SLOTS, HEATMAP_TILE_BITS,
};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, reset_metrics, Counter, Gauge, Histogram,
    HistogramSummary, MetricValue, HISTOGRAM_BUCKETS, HISTOGRAM_SUB_BUCKETS,
};
pub use recorder::{
    init_recorder, record_query, recorder, CacheTier, FlightRecorder, QueryEvent, QueryKind,
    RecorderConfig, RecorderStats, SlowCapture,
};
pub use report::{fmt_ns, print_metrics, render_metrics, ProfileTable, PROFILE_HEADER};
pub use stage::{
    record_stage_histograms, recording, set_recording, stage_histograms, stage_timer, take_stages,
    Stage, StageNanos, StageTimer, STAGE_COUNT, STAGE_NAMES,
};
pub use subscriber::{
    flush, install, install_from_env, uninstall, JsonLinesSubscriber, RingBufferSubscriber,
    Subscriber, TextSubscriber, TraceRecord,
};
pub use trace::{
    enabled, event, event_with, span, span_depth, EventRecord, Field, Span, SpanRecord, Value,
};
