//! The flight recorder: a fixed-capacity, lock-free ring of recent
//! per-query event records, with automatic slow-query capture.
//!
//! Serve workers call [`record_query`] once per answered query (a
//! no-op unless [`init_recorder`] ran and recording is on). Each
//! record lands in a power-of-two ring of seqlock-stamped slots:
//! writers claim a ticket with one `fetch_add`, stamp the slot odd,
//! store the payload words, and stamp it even — no locks, no
//! allocation, readers never block writers. [`FlightRecorder::recent`]
//! walks the ring and keeps only slots whose stamp is stable across
//! the read (a torn slot is simply skipped).
//!
//! **Slow-query capture**: the recorder maintains a rolling latency
//! histogram; once `slow_min_samples` queries are in, any query slower
//! than `slow_multiplier × p99` (and ≥ `slow_floor_ns`) is captured —
//! its full per-stage breakdown is pushed to a small bounded capture
//! buffer ([`FlightRecorder::take_slow_captures`]) and dumped as a
//! `slow-query` event (stage tree flattened into fields) to whatever
//! trace subscriber is installed, e.g. the JSONL sink.

use crate::metrics::{Histogram, HistogramSummary};
use crate::stage::{self, StageNanos, STAGE_NAMES};
use crate::trace::{enabled, event_with, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// What kind of query a [`QueryEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// k-nearest-neighbor query.
    Knn = 0,
    /// Window query.
    Window = 1,
}

impl QueryKind {
    /// Kebab-case label.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Knn => "knn",
            QueryKind::Window => "window",
        }
    }

    fn from_u64(v: u64) -> QueryKind {
        if v == 1 {
            QueryKind::Window
        } else {
            QueryKind::Knn
        }
    }
}

/// Which tier answered the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Full tree traversal, answered alone.
    Tree = 0,
    /// Served from the engine's validity-region cache.
    Cache = 1,
    /// Full traversal amortized across a tile group.
    TreeGroup = 2,
    /// Hot-tile Voronoi fast path: point location into a lazily
    /// materialized order-k cell (`lbq-serve`'s hybrid index).
    HotVoronoi = 3,
}

impl CacheTier {
    /// Kebab-case label.
    pub fn name(self) -> &'static str {
        match self {
            CacheTier::Tree => "tree",
            CacheTier::Cache => "cache",
            CacheTier::TreeGroup => "tree-group",
            CacheTier::HotVoronoi => "hot-voronoi",
        }
    }

    fn from_u64(v: u64) -> CacheTier {
        match v {
            1 => CacheTier::Cache,
            2 => CacheTier::TreeGroup,
            3 => CacheTier::HotVoronoi,
            _ => CacheTier::Tree,
        }
    }
}

/// One per-query record as stored in (and read back from) the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// Engine-assigned query id (monotonic per engine).
    pub query_id: u64,
    /// Query kind.
    pub kind: QueryKind,
    /// `k` for kNN queries, 0 for windows.
    pub k: u32,
    /// Which tier answered.
    pub tier: CacheTier,
    /// Hilbert tile prefix the query's focus landed in.
    pub tile: u32,
    /// End-to-end latency as reported to the client, ns.
    pub latency_ns: u64,
    /// R-tree node accesses attributed to this query (approximate
    /// under concurrent traffic — see `RTree::with_stats`).
    pub node_accesses: u32,
    /// R-tree page accesses attributed to this query (same caveat).
    pub page_accesses: u32,
    /// Per-stage breakdown of the latency.
    pub stages: StageNanos,
}

impl Default for QueryEvent {
    fn default() -> Self {
        QueryEvent {
            query_id: 0,
            kind: QueryKind::Knn,
            k: 0,
            tier: CacheTier::Tree,
            tile: 0,
            latency_ns: 0,
            node_accesses: 0,
            page_accesses: 0,
            stages: StageNanos::default(),
        }
    }
}

/// Payload words per ring slot (plus one sequence word).
const SLOT_WORDS: usize = 5 + stage::STAGE_COUNT;

struct Slot {
    /// Seqlock stamp: 0 = never written, odd = write in progress,
    /// `2·ticket + 2` = stable.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; SLOT_WORDS],
        }
    }
}

fn pack(ev: &QueryEvent) -> [u64; SLOT_WORDS] {
    let mut w = [0u64; SLOT_WORDS];
    w[0] = ev.query_id;
    w[1] = (ev.kind as u64) | ((ev.tier as u64) << 8) | ((u64::from(ev.k)) << 32);
    w[2] = u64::from(ev.tile);
    w[3] = ev.latency_ns;
    w[4] = (u64::from(ev.node_accesses) << 32) | u64::from(ev.page_accesses);
    w[5..].copy_from_slice(&ev.stages.0);
    w
}

fn unpack(w: &[u64; SLOT_WORDS]) -> QueryEvent {
    let mut stages = StageNanos::default();
    stages.0.copy_from_slice(&w[5..]);
    QueryEvent {
        query_id: w[0],
        kind: QueryKind::from_u64(w[1] & 0xff),
        tier: CacheTier::from_u64((w[1] >> 8) & 0xff),
        // lbq-check: allow(lossy-cast) — packed as u32, high bits zero
        k: (w[1] >> 32) as u32,
        // lbq-check: allow(lossy-cast) — packed as u32
        tile: w[2] as u32,
        latency_ns: w[3],
        // lbq-check: allow(lossy-cast) — packed as u32
        node_accesses: (w[4] >> 32) as u32,
        // lbq-check: allow(lossy-cast) — packed as u32, masked
        page_accesses: (w[4] & 0xffff_ffff) as u32,
        stages,
    }
}

/// Configuration for [`init_recorder`].
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Ring capacity in records; rounded up to a power of two.
    pub capacity: usize,
    /// Minimum latency samples before slow-query capture arms.
    pub slow_min_samples: u64,
    /// A query is slow when its latency exceeds `p99 × multiplier`.
    pub slow_multiplier: u64,
    /// Absolute floor: captures only fire at or above this latency,
    /// regardless of how tight the p99 is.
    pub slow_floor_ns: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 1024,
            slow_min_samples: 256,
            slow_multiplier: 4,
            slow_floor_ns: 0,
        }
    }
}

/// Upper bound on buffered slow captures; older ones are dropped once
/// the buffer is full (the `recorder-slow-captured` total still counts
/// them).
const SLOW_CAPTURE_BUFFER: usize = 64;

/// How often (in records) the slow threshold is recomputed from the
/// rolling latency histogram.
const THRESHOLD_RECALC_EVERY: u64 = 64;

/// One captured slow query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowCapture {
    /// The offending query's record.
    pub event: QueryEvent,
    /// The threshold it exceeded, ns.
    pub threshold_ns: u64,
}

/// Point-in-time recorder statistics for snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderStats {
    /// Ring capacity in records.
    pub capacity: usize,
    /// Total records ever written (may exceed capacity).
    pub total: u64,
    /// Total slow-query captures fired.
    pub slow_captured: u64,
    /// Current slow threshold, ns (0 while warming up).
    pub threshold_ns: u64,
    /// Summary of the rolling latency histogram.
    pub latency: HistogramSummary,
}

/// The flight recorder. One process-global instance is created by
/// [`init_recorder`]; standalone instances can be built with
/// [`FlightRecorder::new`] for tests.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    mask: u64,
    head: AtomicU64,
    latency: Histogram,
    threshold_ns: AtomicU64,
    slow: Mutex<VecDeque<SlowCapture>>,
    slow_captured: AtomicU64,
    config: RecorderConfig,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("total", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// Builds a recorder with `config` (capacity rounded up to a power
    /// of two, minimum 2).
    pub fn new(config: RecorderConfig) -> FlightRecorder {
        let capacity = config.capacity.next_power_of_two().max(2);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: (capacity as u64) - 1,
            head: AtomicU64::new(0),
            latency: Histogram::new(),
            threshold_ns: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
            slow_captured: AtomicU64::new(0),
            config,
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written.
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Current slow threshold in ns (0 while warming up).
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Writes one record into the ring and runs slow-query detection.
    /// Lock-free on the ring; the capture buffer mutex is only touched
    /// for queries already classified as slow.
    pub fn record(&self, ev: &QueryEvent) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        // lbq-check: allow(lossy-cast) — masked to ring capacity
        let slot = &self.slots[(ticket & self.mask) as usize];
        slot.seq.store(2 * ticket + 1, Ordering::Release);
        for (w, v) in slot.words.iter().zip(pack(ev)) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * ticket + 2, Ordering::Release);

        // Rolling slow threshold: recompute every few records once the
        // histogram is warm.
        self.latency.record_ns(ev.latency_ns);
        let n = self.latency.count();
        if n >= self.config.slow_min_samples
            && (n == self.config.slow_min_samples || n % THRESHOLD_RECALC_EVERY == 0)
        {
            let p99 = self.latency.quantile_ns(0.99);
            let thr = p99
                .saturating_mul(self.config.slow_multiplier)
                .max(self.config.slow_floor_ns)
                .max(1);
            self.threshold_ns.store(thr, Ordering::Relaxed);
        }
        let thr = self.threshold_ns.load(Ordering::Relaxed);
        if thr != 0 && ev.latency_ns > thr {
            self.capture_slow(ev, thr);
        }
    }

    /// Cold path: buffer the capture and dump it to the trace sink.
    fn capture_slow(&self, ev: &QueryEvent, threshold_ns: u64) {
        self.slow_captured.fetch_add(1, Ordering::Relaxed);
        {
            let mut buf = self.slow.lock().unwrap_or_else(|e| e.into_inner());
            if buf.len() >= SLOW_CAPTURE_BUFFER {
                buf.pop_front();
            }
            buf.push_back(SlowCapture {
                event: *ev,
                threshold_ns,
            });
        }
        if enabled() {
            let mut fields: Vec<(&'static str, Value)> = vec![
                ("query-id", Value::U64(ev.query_id)),
                ("kind", Value::Str(ev.kind.name())),
                ("tier", Value::Str(ev.tier.name())),
                ("k", Value::U64(u64::from(ev.k))),
                ("tile", Value::U64(u64::from(ev.tile))),
                ("latency-ns", Value::U64(ev.latency_ns)),
                ("threshold-ns", Value::U64(threshold_ns)),
                ("node-accesses", Value::U64(u64::from(ev.node_accesses))),
                ("page-accesses", Value::U64(u64::from(ev.page_accesses))),
            ];
            for (name, ns) in STAGE_NAMES.iter().zip(ev.stages.0) {
                fields.push((name, Value::U64(ns)));
            }
            event_with("slow-query", fields);
        }
    }

    /// Stable records currently in the ring, oldest first. Slots mid-
    /// write (or overwritten during the read) are skipped, so under
    /// heavy concurrent write pressure fewer than `capacity` records
    /// may come back.
    pub fn recent(&self) -> Vec<(u64, QueryEvent)> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue;
            }
            let mut words = [0u64; SLOT_WORDS];
            for (w, a) in words.iter_mut().zip(slot.words.iter()) {
                *w = a.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue; // torn: a writer got in between
            }
            out.push(((s1 - 2) / 2, unpack(&words)));
        }
        out.sort_unstable_by_key(|(ticket, _)| *ticket);
        out
    }

    /// Drains the buffered slow captures (oldest first).
    pub fn take_slow_captures(&self) -> Vec<SlowCapture> {
        let mut buf = self.slow.lock().unwrap_or_else(|e| e.into_inner());
        buf.drain(..).collect()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> RecorderStats {
        RecorderStats {
            capacity: self.capacity(),
            total: self.total(),
            slow_captured: self.slow_captured.load(Ordering::Relaxed),
            threshold_ns: self.threshold_ns(),
            latency: self.latency.summary(),
        }
    }
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// Installs the process-global flight recorder (first call wins; later
/// calls return the existing instance unchanged) and turns recording
/// on. Returns the instance.
pub fn init_recorder(config: RecorderConfig) -> &'static FlightRecorder {
    let r = RECORDER.get_or_init(|| FlightRecorder::new(config));
    stage::set_recording(true);
    r
}

/// The process-global recorder, if [`init_recorder`] has run.
pub fn recorder() -> Option<&'static FlightRecorder> {
    RECORDER.get()
}

/// Records one query event into the global recorder and the aggregate
/// `stage-*` histograms. No-op (two relaxed loads) unless the recorder
/// is installed and recording is on.
#[inline]
pub fn record_query(ev: &QueryEvent) {
    if !stage::recording() {
        return;
    }
    if let Some(r) = RECORDER.get() {
        stage::record_stage_histograms(&ev.stages);
        r.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, latency: u64) -> QueryEvent {
        QueryEvent {
            query_id: id,
            kind: QueryKind::Knn,
            k: 4,
            tier: CacheTier::TreeGroup,
            tile: 77,
            latency_ns: latency,
            node_accesses: 12,
            page_accesses: 3,
            stages: {
                let mut s = StageNanos::default();
                s.0[2] = latency / 2;
                s
            },
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = ev(42, 123_456);
        assert_eq!(unpack(&pack(&e)), e);
        let w = QueryEvent {
            kind: QueryKind::Window,
            tier: CacheTier::Cache,
            ..QueryEvent::default()
        };
        assert_eq!(unpack(&pack(&w)), w);
    }

    #[test]
    fn ring_keeps_most_recent_after_wraparound() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            ..RecorderConfig::default()
        });
        for i in 0..20 {
            r.record(&ev(i, 1000));
        }
        assert_eq!(r.total(), 20);
        let recent = r.recent();
        assert_eq!(recent.len(), 8);
        // Tickets 12..20 survive, in order.
        let tickets: Vec<u64> = recent.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, (12..20).collect::<Vec<_>>());
        assert_eq!(recent[0].1.query_id, 12);
        assert_eq!(recent[7].1.tile, 77);
    }

    #[test]
    fn slow_threshold_arms_and_captures() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 64,
            slow_min_samples: 32,
            slow_multiplier: 4,
            slow_floor_ns: 0,
        });
        // Warm-up: uniform fast queries. No captures while arming.
        for i in 0..64 {
            r.record(&ev(i, 1_000));
        }
        let thr = r.threshold_ns();
        assert!(thr > 0, "threshold armed after warm-up");
        assert!(thr >= 4_000, "p99(~1 µs) × 4: {thr}");
        assert_eq!(r.stats().slow_captured, 0);
        // One pathological query far past the threshold.
        r.record(&ev(999, thr * 10));
        let caps = r.take_slow_captures();
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].event.query_id, 999);
        assert_eq!(caps[0].threshold_ns, thr);
        assert_eq!(r.stats().slow_captured, 1);
        // Drained: a second take is empty.
        assert!(r.take_slow_captures().is_empty());
    }

    #[test]
    fn fast_queries_below_threshold_are_not_captured() {
        let r = FlightRecorder::new(RecorderConfig {
            capacity: 64,
            slow_min_samples: 16,
            slow_multiplier: 4,
            slow_floor_ns: 0,
        });
        for i in 0..200 {
            r.record(&ev(i, 1_000 + (i % 7) * 10));
        }
        assert_eq!(r.stats().slow_captured, 0);
    }
}
