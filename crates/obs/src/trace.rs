//! The span/event tracing core.
//!
//! A **span** is a named, timed region of execution opened with
//! [`span`] and closed when the returned guard drops; spans nest via a
//! thread-local stack, so recursive query structures (an R-tree descent
//! inside an influence-set construction) come out as a tree. An
//! **event** is a point-in-time record attached to the current span.
//! Both carry typed key/value [`Field`]s.
//!
//! When no subscriber is installed (the default), every entry point
//! degenerates to one relaxed atomic load: no clock reads, no
//! thread-local access, no allocation (asserted by
//! `tests/zero_alloc.rs`).

use crate::subscriber;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Set exactly while a subscriber is installed; the one-load fast path.
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic span-id source (0 is reserved as "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide monotonic epoch; timestamps are nanoseconds since the
/// first trace touched the clock.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// `true` while a subscriber is installed. Hooks use this to skip
/// computing fields that are only worth the cost when someone listens.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch_ns() -> u64 {
    let e = EPOCH.get_or_init(Instant::now);
    u64::try_from(e.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A typed field value. Conversions exist for the common primitive
/// types so call sites can write `span.record("k", k)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (areas, rates).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Static string (labels).
    Str(&'static str),
    /// Owned string (dynamic labels; prefer `Str` on hot paths).
    Text(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Text(v) => write!(f, "{v}"),
        }
    }
}

/// One key/value pair on a span or event. Keys are static so the
/// disabled path never allocates.
pub type Field = (&'static str, Value);

/// The record a subscriber receives when a span closes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (a kebab-case literal; see the `obs-span-name` lint).
    pub name: &'static str,
    /// Unique id within the process.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Nanoseconds since the trace epoch at which the span opened.
    pub start_ns: u64,
    /// Wall-clock duration of the span in nanoseconds.
    pub elapsed_ns: u64,
    /// Fields recorded while the span was open.
    pub fields: Vec<Field>,
}

/// The record a subscriber receives for a point-in-time event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (a kebab-case literal; see the `obs-span-name` lint).
    pub name: &'static str,
    /// Id of the span the event occurred inside, if any.
    pub parent: Option<u64>,
    /// Nanoseconds since the trace epoch.
    pub at_ns: u64,
    /// Event fields.
    pub fields: Vec<Field>,
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_ns: u64,
    fields: Vec<Field>,
}

/// A span guard. Created by [`span`]; emits a [`SpanRecord`] to the
/// installed subscriber when dropped. When tracing is disabled the
/// guard is inert (`None` inside — no clock read, no allocation).
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
#[derive(Default)]
pub struct Span(Option<ActiveSpan>);

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(a) => write!(f, "Span({} #{})", a.name, a.id),
            None => write!(f, "Span(inert)"),
        }
    }
}

/// Opens a span. `name` must be a kebab-case string literal (enforced
/// workspace-wide by the `obs-span-name` lint in `lbq-check`).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span(Some(ActiveSpan {
        name,
        id,
        parent,
        start: Instant::now(),
        start_ns: epoch_ns(),
        fields: Vec::new(),
    }))
}

impl Span {
    /// `true` when the span is live (a subscriber was installed at
    /// creation). Use to gate field computations that are themselves
    /// expensive.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Records a field on the span (no-op when inert).
    #[inline]
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(a) = &mut self.0 {
            a.fields.push((key, value.into()));
        }
    }

    /// This span's id, if live (events created while it is open get it
    /// as their parent automatically; manual correlation rarely needed).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order in normal use; tolerate an
            // out-of-order drop by removing the matching id wherever it
            // sits.
            if s.last() == Some(&a.id) {
                s.pop();
            } else {
                s.retain(|&x| x != a.id);
            }
        });
        let record = SpanRecord {
            name: a.name,
            id: a.id,
            parent: a.parent,
            start_ns: a.start_ns,
            elapsed_ns: u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            fields: a.fields,
        };
        subscriber::dispatch_span(&record);
    }
}

/// Emits a point-in-time event with no fields.
#[inline]
pub fn event(name: &'static str) {
    event_with(name, []);
}

/// Emits a point-in-time event carrying `fields`. Returns without
/// touching the clock or allocating when tracing is disabled; callers
/// computing expensive field values should still gate on [`enabled`].
#[inline]
pub fn event_with(name: &'static str, fields: impl IntoIterator<Item = Field>) {
    if !enabled() {
        return;
    }
    let record = EventRecord {
        name,
        parent: STACK.with(|s| s.borrow().last().copied()),
        at_ns: epoch_ns(),
        fields: fields.into_iter().collect(),
    };
    subscriber::dispatch_event(&record);
}

/// Depth of the span stack on the current thread (test/debug helper).
pub fn span_depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        // No subscriber in this process at unit-test time: spans carry
        // nothing and the stack stays empty.
        let mut s = span("test-span");
        assert!(!s.is_active());
        assert!(s.id().is_none());
        s.record("k", 1u64);
        assert_eq!(span_depth(), 0);
        drop(s);
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn value_conversions_and_display() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x"));
        assert_eq!(format!("{}", Value::F64(0.5)), "0.5");
        assert_eq!(format!("{}", Value::Text("hi".into())), "hi");
    }
}
