//! # lbq-hist — the Minskew spatial histogram
//!
//! Selectivity-estimation substrate of the `lbq` workspace (reproduction
//! of *"Location-based Spatial Queries"*, SIGMOD 2003). The paper's
//! Section 5 derives expected validity-region sizes for **uniform** data
//! and then extends them to skewed real datasets "with the aid of
//! histograms", specifically **Minskew** `[APR99]`: the space is
//! partitioned into rectangular buckets of near-uniform density, and the
//! uniform-data formulas are applied with the data cardinality `N`
//! replaced by an *effective cardinality* `N′` derived from the buckets
//! around the query (eq. 5-6). The paper's setup: 500 buckets built from
//! 10,000 initial cells — the defaults here.
//!
//! ## Construction
//!
//! [`Minskew::build`] bins the points into a `g × g` grid and then
//! greedily splits buckets: starting from one bucket covering the grid,
//! repeatedly perform the (bucket, axis, position) split that maximally
//! reduces the total **spatial skew** — the summed variance of cell
//! counts within each bucket — until the bucket budget is reached.
//! This is the exact greedy of the Minskew paper; each candidate split
//! is evaluated in O(rows + cols) via prefix sums.

use lbq_geom::{Point, Rect};

/// One histogram bucket: a rectangle with a point count, assumed
/// internally uniform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    pub rect: Rect,
    pub count: f64,
}

impl Bucket {
    /// Density (points per unit area).
    pub fn density(&self) -> f64 {
        let a = self.rect.area();
        if a > 0.0 {
            self.count / a
        } else {
            0.0
        }
    }
}

/// A Minskew histogram over a 2D point set.
#[derive(Debug, Clone)]
pub struct Minskew {
    universe: Rect,
    buckets: Vec<Bucket>,
    total: f64,
}

/// A bucket under construction: a rectangular block of grid cells.
#[derive(Debug, Clone, Copy)]
struct Block {
    /// Grid-cell bounds, half-open: columns `[c0, c1)`, rows `[r0, r1)`.
    c0: usize,
    c1: usize,
    r0: usize,
    r1: usize,
}

impl Minskew {
    /// The paper's configuration: 10,000 initial cells (100×100 grid)
    /// merged into 500 buckets.
    pub fn paper(points: &[Point], universe: Rect) -> Self {
        Self::build(points, universe, 100, 500)
    }

    /// Builds a histogram from a `grid × grid` binning reduced to at
    /// most `bucket_budget` buckets.
    pub fn build(points: &[Point], universe: Rect, grid: usize, bucket_budget: usize) -> Self {
        assert!(grid >= 1 && bucket_budget >= 1);
        let g = grid;
        let mut cells = vec![0.0f64; g * g];
        let w = universe.width();
        let h = universe.height();
        for p in points {
            debug_assert!(universe.contains_eps(*p, lbq_geom::EPS * w.max(h)));
            let cx = (((p.x - universe.xmin) / w * g as f64) as usize).min(g - 1);
            let cy = (((p.y - universe.ymin) / h * g as f64) as usize).min(g - 1);
            cells[cy * g + cx] += 1.0;
        }

        // Prefix sums over the grid for O(1) block count/sq-count sums.
        let pre = Prefix::new(&cells, g);

        let mut blocks = vec![Block {
            c0: 0,
            c1: g,
            r0: 0,
            r1: g,
        }];
        // Greedy: always apply the globally best skew-reducing split.
        while blocks.len() < bucket_budget {
            let mut best: Option<(f64, usize, Block, Block)> = None;
            for (i, b) in blocks.iter().enumerate() {
                if let Some((gain, lo, hi)) = best_split(b, &pre) {
                    if best.as_ref().is_none_or(|(bg, ..)| gain > *bg) {
                        best = Some((gain, i, lo, hi));
                    }
                }
            }
            match best {
                Some((gain, i, lo, hi)) if gain > 0.0 => {
                    blocks.swap_remove(i);
                    blocks.push(lo);
                    blocks.push(hi);
                }
                _ => break, // nothing left to gain (all blocks uniform)
            }
        }

        let cell_w = w / g as f64;
        let cell_h = h / g as f64;
        let buckets = blocks
            .iter()
            .map(|b| Bucket {
                rect: Rect::new(
                    universe.xmin + b.c0 as f64 * cell_w,
                    universe.ymin + b.r0 as f64 * cell_h,
                    universe.xmin + b.c1 as f64 * cell_w,
                    universe.ymin + b.r1 as f64 * cell_h,
                ),
                count: pre.block_sum(b),
            })
            .collect();
        Minskew {
            universe,
            buckets,
            total: points.len() as f64,
        }
    }

    /// The buckets.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// The universe the histogram covers.
    pub fn universe(&self) -> Rect {
        self.universe
    }

    /// Total points summarized.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Expected number of points inside `r` (uniformity within each
    /// bucket).
    pub fn estimate_count(&self, r: &Rect) -> f64 {
        self.buckets
            .iter()
            .map(|b| {
                let ov = b.rect.overlap_area(r);
                if ov > 0.0 && b.rect.area() > 0.0 {
                    b.count * ov / b.rect.area()
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// The paper's eq. (5-6) for **window queries**: effective uniform
    /// cardinality `N′` from the density around the *boundary* of the
    /// query window — where result-changing points live — scaled to the
    /// whole universe so the uniform formulas apply unchanged.
    ///
    /// Implemented at sub-bucket granularity: the density is measured
    /// over a band `q ± 15%` of the window extents (expected counts via
    /// fractional bucket overlap), which degrades gracefully when a
    /// single merged bucket is much larger than the window — whole-bucket
    /// summation would otherwise wash out locality on extreme skew
    /// (line-clustered street data).
    pub fn effective_cardinality_window(&self, q: &Rect) -> f64 {
        let dx = q.width() * 0.15;
        let dy = q.height() * 0.15;
        let outer = q.inflate(dx, dy);
        let inner = q.inflate(-dx, -dy);
        let band_count = (self.estimate_count(&outer) - self.estimate_count(&inner)).max(0.0);
        let band_area = outer.area() - inner.area();
        if band_area <= 0.0 || band_count <= 0.0 {
            // Degenerate window or genuinely empty neighborhood: fall
            // back to whole-bucket boundary summation, then global.
            let mut n = 0.0;
            let mut a = 0.0;
            for b in &self.buckets {
                if b.rect.intersects(q) && !strictly_inside(&b.rect, q) {
                    n += b.count;
                    a += b.rect.area();
                }
            }
            if a <= 0.0 || n <= 0.0 {
                return self.total;
            }
            return (n / a) * self.universe.area();
        }
        (band_count / band_area) * self.universe.area()
    }

    /// Effective cardinality for **nearest-neighbor queries** at `q`:
    /// grow a square region around `q` from the scale of the bucket
    /// containing it until the expected point count suffices for a k-NN
    /// result (the paper grows a bucket neighborhood; geometric region
    /// growth over the same buckets is equivalent and simpler), then
    /// scale the local density to the universe.
    pub fn effective_cardinality_nn(&self, q: Point, k: usize) -> f64 {
        let need = (4 * k + 16) as f64;
        let start = self
            .buckets
            .iter()
            .find(|b| b.rect.contains(q))
            .map(|b| 0.5 * (b.rect.width().min(b.rect.height())))
            .unwrap_or(self.universe.width() / 100.0)
            // lbq-check: allow(local-epsilon) — probe floor, not a tolerance
            .max(self.universe.width() * 1e-6);
        let mut half = start;
        let max_half = self.universe.width().max(self.universe.height());
        loop {
            let r = Rect::centered(q, half, half);
            let cnt = self.estimate_count(&r);
            if cnt >= need || half >= max_half {
                let area = r
                    .intersection(&self.universe)
                    .map_or(r.area(), |i| i.area());
                if area <= 0.0 || cnt <= 0.0 {
                    return self.total;
                }
                return (cnt / area) * self.universe.area();
            }
            half *= 1.5;
        }
    }
}

/// `inner` lies strictly inside `outer` (touching boundaries excluded).
fn strictly_inside(inner: &Rect, outer: &Rect) -> bool {
    inner.xmin > outer.xmin
        && inner.xmax < outer.xmax
        && inner.ymin > outer.ymin
        && inner.ymax < outer.ymax
}

/// 2D prefix sums of counts and squared counts.
struct Prefix {
    g: usize,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
}

impl Prefix {
    fn new(cells: &[f64], g: usize) -> Self {
        let stride = g + 1;
        let mut sum = vec![0.0; stride * stride];
        let mut sum_sq = vec![0.0; stride * stride];
        for r in 0..g {
            for c in 0..g {
                let v = cells[r * g + c];
                let idx = (r + 1) * stride + (c + 1);
                sum[idx] = v + sum[idx - 1] + sum[idx - stride] - sum[idx - stride - 1];
                sum_sq[idx] =
                    v * v + sum_sq[idx - 1] + sum_sq[idx - stride] - sum_sq[idx - stride - 1];
            }
        }
        Prefix { g, sum, sum_sq }
    }

    fn rect_sum(&self, v: &[f64], r0: usize, r1: usize, c0: usize, c1: usize) -> f64 {
        let s = self.g + 1;
        v[r1 * s + c1] - v[r0 * s + c1] - v[r1 * s + c0] + v[r0 * s + c0]
    }

    fn block_sum(&self, b: &Block) -> f64 {
        self.rect_sum(&self.sum, b.r0, b.r1, b.c0, b.c1)
    }

    fn block_sum_sq(&self, b: &Block) -> f64 {
        self.rect_sum(&self.sum_sq, b.r0, b.r1, b.c0, b.c1)
    }

    /// Spatial skew of a block: Σ (nᵢ − n̄)² = Σ nᵢ² − (Σ nᵢ)²/cells.
    fn skew(&self, b: &Block) -> f64 {
        let cells = ((b.r1 - b.r0) * (b.c1 - b.c0)) as f64;
        // lbq-check: allow(float-eq) — integer-valued cast, 0.0 is exact
        if cells == 0.0 {
            return 0.0;
        }
        let s = self.block_sum(b);
        (self.block_sum_sq(b) - s * s / cells).max(0.0)
    }
}

/// Best skew-reducing split of a block, if any: returns
/// `(gain, low_block, high_block)`.
fn best_split(b: &Block, pre: &Prefix) -> Option<(f64, Block, Block)> {
    let base = pre.skew(b);
    if base <= 0.0 {
        return None;
    }
    let mut best: Option<(f64, Block, Block)> = None;
    // Vertical splits (between columns).
    for c in (b.c0 + 1)..b.c1 {
        let lo = Block { c1: c, ..*b };
        let hi = Block { c0: c, ..*b };
        let gain = base - pre.skew(&lo) - pre.skew(&hi);
        if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
            best = Some((gain, lo, hi));
        }
    }
    // Horizontal splits (between rows).
    for r in (b.r0 + 1)..b.r1 {
        let lo = Block { r1: r, ..*b };
        let hi = Block { r0: r, ..*b };
        let gain = base - pre.skew(&lo) - pre.skew(&hi);
        if best.as_ref().is_none_or(|(g, ..)| gain > *g) {
            best = Some((gain, lo, hi));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n).map(|_| Point::new(next(), next())).collect()
    }

    #[test]
    fn buckets_partition_and_counts_sum() {
        let pts = uniform_points(5000, 9);
        let h = Minskew::build(&pts, unit(), 20, 32);
        assert!(h.buckets().len() <= 32);
        let total: f64 = h.buckets().iter().map(|b| b.count).sum();
        assert!((total - 5000.0).abs() < 1e-6);
        let area: f64 = h.buckets().iter().map(|b| b.rect.area()).sum();
        assert!((area - 1.0).abs() < 1e-9, "bucket areas sum to {area}");
    }

    #[test]
    fn estimate_full_universe_is_total() {
        let pts = uniform_points(2000, 3);
        let h = Minskew::build(&pts, unit(), 16, 20);
        assert!((h.estimate_count(&unit()) - 2000.0).abs() < 1e-6);
        assert_eq!(h.estimate_count(&Rect::new(2.0, 2.0, 3.0, 3.0)), 0.0);
    }

    #[test]
    fn uniform_data_estimates_match_area_fraction() {
        let pts = uniform_points(20000, 5);
        let h = Minskew::build(&pts, unit(), 25, 50);
        let q = Rect::new(0.2, 0.3, 0.5, 0.7);
        let est = h.estimate_count(&q);
        let expect = 20000.0 * q.area();
        assert!((est - expect).abs() / expect < 0.1, "est {est} vs {expect}");
        // Effective cardinality ≈ true cardinality for uniform data.
        let n_eff = h.effective_cardinality_window(&q);
        assert!((n_eff - 20000.0).abs() / 20000.0 < 0.15, "N' = {n_eff}");
        let n_eff_nn = h.effective_cardinality_nn(Point::new(0.5, 0.5), 1);
        assert!(
            (n_eff_nn - 20000.0).abs() / 20000.0 < 0.25,
            "N'_nn = {n_eff_nn}"
        );
    }

    #[test]
    fn skewed_data_gets_dense_and_sparse_buckets() {
        // Left half has 10× the density of the right half.
        let mut pts = uniform_points(10000, 7)
            .into_iter()
            .map(|p| Point::new(p.x * 0.5, p.y))
            .collect::<Vec<_>>();
        pts.extend(
            uniform_points(1000, 8)
                .into_iter()
                .map(|p| Point::new(0.5 + p.x * 0.5, p.y)),
        );
        let h = Minskew::build(&pts, unit(), 20, 16);
        let left = Point::new(0.25, 0.5);
        let right = Point::new(0.75, 0.5);
        let nl = h.effective_cardinality_nn(left, 1);
        let nr = h.effective_cardinality_nn(right, 1);
        assert!(
            nl > 4.0 * nr,
            "left density must dominate: N'l={nl} N'r={nr}"
        );
        // Window straddling the divide sees an intermediate density.
        let q = Rect::centered(Point::new(0.5, 0.5), 0.1, 0.1);
        let nw = h.effective_cardinality_window(&q);
        assert!(nw < nl && nw > nr * 0.5, "straddling N'={nw}");
    }

    #[test]
    fn single_bucket_budget() {
        let pts = uniform_points(500, 2);
        let h = Minskew::build(&pts, unit(), 10, 1);
        assert_eq!(h.buckets().len(), 1);
        assert!((h.buckets()[0].count - 500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset() {
        let h = Minskew::build(&[], unit(), 10, 5);
        assert_eq!(h.estimate_count(&unit()), 0.0);
        assert_eq!(h.total(), 0.0);
    }

    #[test]
    fn splits_stop_when_uniform() {
        // A perfectly uniform grid of points: one point per cell →
        // zero skew → no splits beyond the first bucket.
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 / 10.0 + 0.05, j as f64 / 10.0 + 0.05));
            }
        }
        let h = Minskew::build(&pts, unit(), 10, 64);
        assert_eq!(h.buckets().len(), 1, "uniform data needs one bucket");
    }

    #[test]
    fn prefix_sums_correct() {
        let cells = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let p = Prefix::new(&cells, 3);
        let all = Block {
            c0: 0,
            c1: 3,
            r0: 0,
            r1: 3,
        };
        assert_eq!(p.block_sum(&all), 45.0);
        assert_eq!(p.block_sum_sq(&all), 285.0);
        let mid = Block {
            c0: 1,
            c1: 3,
            r0: 1,
            r1: 2,
        };
        assert_eq!(p.block_sum(&mid), 11.0); // cells 5 + 6
                                             // Skew of a constant block is zero.
        let row = Block {
            c0: 0,
            c1: 1,
            r0: 0,
            r1: 1,
        };
        assert_eq!(p.skew(&row), 0.0);
    }
}
