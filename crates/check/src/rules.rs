//! The per-file lint rules, each a pure function over the token stream
//! of one file. (The interprocedural rules — `hot-alloc`, `hot-panic`,
//! `atomic-ordering`, `guard-across-call` — live in
//! [`crate::interproc`] and run over the whole-workspace call graph.)
//!
//! | rule | meaning |
//! |------|---------|
//! | `float-eq` | no `==`/`!=` against floating-point operands outside the approved epsilon module |
//! | `local-epsilon` | no literal epsilons (1e-12 ..= 1e-6) outside the approved epsilon module |
//! | `no-unwrap-core` | no `.unwrap()` / `.expect()` / `panic!` in library code of the core crates |
//! | `lossy-cast` | no narrowing `as` casts in `crates/rtree` — use `try_into` or justify |
//! | `pub-doc` | every `pub fn` / `pub struct` in the doc-mandatory crates carries a doc comment |
//! | `obs-span-name` | `lbq_obs` span/event/metric/heatmap/snapshot-field names are kebab-case string literals |
//! | `allow-reason` | every allow directive carries a reason explaining the escape |
//!
//! Any finding can be silenced with a justification comment on the same
//! line or the line directly above. The reason is mandatory — either as
//! a quoted argument or as trailing text after the closing paren:
//!
//! ```text
//! // lbq-check: allow(local-epsilon, "Box–Muller guard, not a tolerance")
//! // lbq-check: allow(local-epsilon) — Box–Muller guard, not a tolerance
//! ```

use crate::lexer::{float_value, is_float_literal, lex, Token, TokenKind};

/// All rule names, as used in diagnostics and allow comments.
pub const RULE_NAMES: [&str; 11] = [
    "float-eq",
    "local-epsilon",
    "no-unwrap-core",
    "lossy-cast",
    "pub-doc",
    "obs-span-name",
    "allow-reason",
    "hot-alloc",
    "hot-panic",
    "atomic-ordering",
    "guard-across-call",
];

/// The one module allowed to define epsilons and compare floats exactly.
pub const APPROVED_EPS_MODULE: &str = "crates/geom/src/lib.rs";

/// Crates whose library code must be panic-free (`no-unwrap-core`).
pub const PANIC_FREE_CRATES: [&str; 9] = [
    "geom", "rtree", "voronoi", "hist", "core", "obs", "serve", "proto", "net",
];

/// Crates whose public items must be documented (`pub-doc`).
pub const DOC_CRATES: [&str; 11] = [
    "geom", "core", "obs", "voronoi", "hist", "rng", "data", "rtree", "serve", "proto", "net",
];

/// One finding: rule, location, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lexes one file and runs every per-file rule that applies to its
/// path, then applies the allow filter.
/// `path` must be workspace-relative with `/` separators.
pub fn check_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let allows = Allows::collect(&tokens);
    let mut out = per_file(path, &tokens, &allows);
    out.retain(|d| !allows.is_allowed(d.rule, d.line));
    out.sort_by_key(|d| (d.line, d.rule));
    out
}

/// Runs every per-file rule that applies to `path` over an
/// already-lexed token stream. Returns **unfiltered** findings — the
/// caller applies [`Allows::is_allowed`]; the workspace driver does
/// this centrally so interprocedural findings share the same filter.
pub fn per_file(path: &str, tokens: &[Token], allows: &Allows) -> Vec<Diagnostic> {
    let test_from = test_region_start(tokens);
    let ctx = FileCtx {
        path,
        tokens,
        test_from,
    };

    let mut out = Vec::new();
    if path != APPROVED_EPS_MODULE {
        float_eq(&ctx, &mut out);
        local_epsilon(&ctx, &mut out);
    }
    no_unwrap_core(&ctx, &mut out);
    lossy_cast(&ctx, &mut out);
    pub_doc(&ctx, &mut out);
    obs_span_name(&ctx, &mut out);
    allow_reason(&ctx, allows, &mut out);
    out
}

struct FileCtx<'a> {
    path: &'a str,
    tokens: &'a [Token],
    /// First line of a top-level `#[cfg(test)]` region, if any; the
    /// region is assumed to extend to end-of-file (the workspace keeps
    /// test modules last).
    test_from: Option<u32>,
}

impl FileCtx<'_> {
    /// Crate name when the file is library source (`crates/<c>/src/…`).
    fn lib_crate(&self) -> Option<&str> {
        let rest = self.path.strip_prefix("crates/")?;
        let (krate, rest) = rest.split_once('/')?;
        rest.starts_with("src/").then_some(krate)
    }

    /// Test-like source: under `tests/`, `benches/`, `examples/`, or
    /// inside the file's trailing `#[cfg(test)]` region.
    fn is_test_code(&self, line: u32) -> bool {
        let p = self.path;
        p.starts_with("tests/")
            || p.contains("/tests/")
            || p.contains("/benches/")
            || p.contains("/examples/")
            || self.test_from.is_some_and(|t| line >= t)
    }
}

// -------------------------------------------------------- allowlist

/// One `// lbq-check: allow(…)` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive comment sits on.
    pub line: u32,
    /// Rule names listed inside the parens.
    pub rules: Vec<String>,
    /// Whether the directive carries a reason — a quoted argument
    /// inside the parens or prose after the closing paren.
    pub has_reason: bool,
}

/// All allow directives of one file.
#[derive(Debug, Clone, Default)]
pub struct Allows {
    directives: Vec<AllowDirective>,
}

impl Allows {
    /// Extracts `// lbq-check: allow(rule, rule, "reason")` directives.
    pub fn collect(tokens: &[Token]) -> Allows {
        let mut directives = Vec::new();
        for t in tokens {
            if !t.is_comment() {
                continue;
            }
            let Some(pos) = t.text.find("lbq-check:") else {
                continue;
            };
            let rest = &t.text[pos + "lbq-check:".len()..];
            let Some(open) = rest.find("allow(") else {
                continue;
            };
            let inner = &rest[open + "allow(".len()..];
            let Some(close) = inner.find(')') else {
                continue;
            };
            let mut rules = Vec::new();
            let mut has_reason = false;
            for item in inner[..close].split(',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                if item.starts_with('"') {
                    has_reason = true;
                } else {
                    rules.push(item.to_string());
                }
            }
            // Trailing prose after the `)` also counts as a reason:
            // `// lbq-check: allow(rule) — why this is sound`.
            if inner[close + 1..].chars().any(|c| c.is_alphanumeric()) {
                has_reason = true;
            }
            if !rules.is_empty() {
                directives.push(AllowDirective {
                    line: t.line,
                    rules,
                    has_reason,
                });
            }
        }
        Allows { directives }
    }

    /// A finding at `line` is silenced by a directive on that line or
    /// the line directly above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.directives.iter().any(|d| {
            (d.line == line || d.line == line.saturating_sub(1))
                && d.rules.iter().any(|r| r == rule)
        })
    }

    /// Directives with no reason (the `allow-reason` rule's input).
    pub fn reasonless(&self) -> impl Iterator<Item = &AllowDirective> {
        self.directives.iter().filter(|d| !d.has_reason)
    }
}

/// `allow-reason`: every allow directive must explain itself — the
/// escape hatch is only auditable if each use records *why* the rule
/// does not apply at that site.
fn allow_reason(ctx: &FileCtx, allows: &Allows, out: &mut Vec<Diagnostic>) {
    for d in allows.reasonless() {
        out.push(Diagnostic {
            rule: "allow-reason",
            file: ctx.path.to_string(),
            line: d.line,
            message: format!(
                "allow({}) has no reason; write `// lbq-check: allow({}, \"why\")` \
                 or append an explanation after the closing paren",
                d.rules.join(", "),
                d.rules.join(", "),
            ),
        });
    }
}

/// Line of the first top-level `#[cfg(test)]` attribute.
fn test_region_start(tokens: &[Token]) -> Option<u32> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    code.windows(5).find_map(|w| {
        (w[0].text == "#"
            && w[1].text == "["
            && w[2].text == "cfg"
            && w[3].text == "("
            && w[4].text == "test")
            .then_some(w[0].line)
    })
}

// -------------------------------------------------------- rules

/// `float-eq`: `==`/`!=` with a float literal or `f32`/`f64` path on
/// either side. (Type-aware cases are covered by `clippy::float_cmp`,
/// which the workspace denies; this catches the literal-adjacent subset
/// without needing type inference.)
fn float_eq(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let code: Vec<&Token> = ctx.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Punct || (tok.text != "==" && tok.text != "!=") {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| code[p]);
        let next = code.get(i + 1).copied();
        // Unary minus on the right-hand side: `== -1.0`.
        let next_val = match next {
            Some(t) if t.text == "-" => code.get(i + 2).copied(),
            other => other,
        };
        let float_lit = |t: Option<&Token>| {
            t.is_some_and(|t| t.kind == TokenKind::Number && is_float_literal(&t.text))
        };
        let float_path = |t: Option<&Token>| {
            t.is_some_and(|t| t.kind == TokenKind::Ident && (t.text == "f64" || t.text == "f32"))
        };
        // `f64::INFINITY == x`: look a few tokens back across `f64::CONST`.
        let prev_path = i >= 4
            && float_path(Some(code[i - 4]))
            && code[i - 3].text == ":"
            && code[i - 2].text == ":";
        if float_lit(prev) || float_lit(next_val) || float_path(next) || prev_path {
            out.push(Diagnostic {
                rule: "float-eq",
                file: ctx.path.to_string(),
                line: tok.line,
                message: format!(
                    "floating-point `{}` comparison; use lbq_geom::approx_eq or an \
                     explicit EPS tolerance",
                    tok.text
                ),
            });
        }
    }
}

/// `local-epsilon`: literal float in `[1e-12, 1e-6]` in library code.
fn local_epsilon(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.lib_crate().is_none() {
        return;
    }
    for tok in ctx.tokens {
        if tok.kind != TokenKind::Number || ctx.is_test_code(tok.line) {
            continue;
        }
        let Some(v) = float_value(&tok.text) else {
            continue;
        };
        // lbq-check: allow(local-epsilon) — this range *defines* the rule
        if (1e-12..=1e-6).contains(&v) {
            out.push(Diagnostic {
                rule: "local-epsilon",
                file: ctx.path.to_string(),
                line: tok.line,
                message: format!(
                    "literal epsilon `{}`; use the shared constants in lbq_geom \
                     (EPS family) or justify with an allow comment",
                    tok.text
                ),
            });
        }
    }
}

/// `no-unwrap-core`: `.unwrap()`, `.expect(`, `panic!` in library code
/// of the panic-free crates.
fn no_unwrap_core(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    match ctx.lib_crate() {
        Some(k) if PANIC_FREE_CRATES.contains(&k) => {}
        _ => return,
    }
    let code: Vec<&Token> = ctx.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || ctx.is_test_code(tok.line) {
            continue;
        }
        let prev_dot = i > 0 && code[i - 1].text == ".";
        let next = code.get(i + 1).map(|t| t.text.as_str());
        let hit = match tok.text.as_str() {
            "unwrap" | "expect" => prev_dot && next == Some("("),
            "panic" => next == Some("!"),
            _ => false,
        };
        if hit {
            out.push(Diagnostic {
                rule: "no-unwrap-core",
                file: ctx.path.to_string(),
                line: tok.line,
                message: format!(
                    "`{}` in library code; return an error/Option or justify the \
                     invariant with an allow comment",
                    tok.text
                ),
            });
        }
    }
}

/// `lossy-cast`: narrowing `as` casts inside `crates/rtree` — the crate
/// that juggles `u32` node ids against `usize` arena indices.
fn lossy_cast(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.lib_crate() != Some("rtree") {
        return;
    }
    const NARROW: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "NodeId"];
    let code: Vec<&Token> = ctx.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.text != "as" || tok.kind != TokenKind::Ident || ctx.is_test_code(tok.line) {
            continue;
        }
        // `usize` is narrowing only in the abstract (from u64); flag it
        // too — the point is to route every id<->index hop through the
        // checked helpers.
        let Some(target) = code.get(i + 1) else {
            continue;
        };
        if NARROW.contains(&target.text.as_str()) || target.text == "usize" {
            out.push(Diagnostic {
                rule: "lossy-cast",
                file: ctx.path.to_string(),
                line: tok.line,
                message: format!(
                    "narrowing `as {}` cast; use try_into / the checked id helpers \
                     or justify with an allow comment",
                    target.text
                ),
            });
        }
    }
}

/// `pub-doc`: undocumented `pub fn` / `pub struct` in the doc-mandatory
/// crates.
fn pub_doc(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    match ctx.lib_crate() {
        Some(k) if DOC_CRATES.contains(&k) => {}
        _ => return,
    }
    let toks = ctx.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "pub" || ctx.is_test_code(tok.line) {
            continue;
        }
        // Restricted visibility (pub(crate), pub(super)) is not public API.
        let code_after: Vec<(usize, &Token)> = toks
            .iter()
            .enumerate()
            .skip(i + 1)
            .filter(|(_, t)| !t.is_comment())
            .take(4)
            .collect();
        if code_after.first().is_some_and(|(_, t)| t.text == "(") {
            continue;
        }
        // Walk over qualifiers to the item keyword.
        let mut item = None;
        for (_, t) in &code_after {
            match t.text.as_str() {
                "const" | "unsafe" | "async" | "extern" => continue,
                "fn" | "struct" => {
                    item = Some(t.text.clone());
                    break;
                }
                _ => break,
            }
        }
        let Some(item) = item else { continue };
        let name = code_after
            .iter()
            .skip_while(|(_, t)| t.text != item)
            .nth(1)
            .map(|(_, t)| t.text.clone())
            .unwrap_or_default();
        if !has_doc_before(toks, i) {
            out.push(Diagnostic {
                rule: "pub-doc",
                file: ctx.path.to_string(),
                line: tok.line,
                message: format!("public {item} `{name}` has no doc comment"),
            });
        }
    }
}

/// `obs-span-name`: the name argument of `lbq_obs::span` /
/// `event` / `event_with` / `counter` / `gauge` / `histogram` /
/// `heatmap` / `snapshot_field` must be a kebab-case string literal, so
/// trace, metric, heatmap, and snapshot-field names stay greppable,
/// stable, and collision-free across the workspace. The obs crate
/// itself (whose tests exercise the machinery with throwaway names) is
/// exempt.
fn obs_span_name(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.path.starts_with("crates/obs/") {
        return;
    }
    const NAMED_FNS: [&str; 8] = [
        "span",
        "event",
        "event_with",
        "counter",
        "gauge",
        "histogram",
        "heatmap",
        "snapshot_field",
    ];
    let code: Vec<&Token> = ctx.tokens.iter().filter(|t| !t.is_comment()).collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || (tok.text != "lbq_obs" && tok.text != "obs") {
            continue;
        }
        if !(code.get(i + 1).is_some_and(|t| t.text == ":")
            && code.get(i + 2).is_some_and(|t| t.text == ":"))
        {
            continue;
        }
        let Some(f) = code.get(i + 3) else { continue };
        if f.kind != TokenKind::Ident || !NAMED_FNS.contains(&f.text.as_str()) {
            continue;
        }
        if !code.get(i + 4).is_some_and(|t| t.text == "(") {
            continue;
        }
        let arg = code.get(i + 5);
        let literal = arg.filter(|t| t.kind == TokenKind::Str);
        let ok = literal.is_some_and(|t| is_kebab_str_literal(&t.text));
        if !ok {
            let line = arg.map_or(f.line, |t| t.line);
            let what = match literal {
                Some(t) => format!("name {} is not kebab-case", t.text),
                None => "name is not a string literal".to_string(),
            };
            out.push(Diagnostic {
                rule: "obs-span-name",
                file: ctx.path.to_string(),
                line,
                message: format!(
                    "`lbq_obs::{}` {what}; use a kebab-case &'static str literal \
                     (lowercase letters, digits, single dashes) or justify with an \
                     allow comment",
                    f.text
                ),
            });
        }
    }
}

/// True when `text` is a plain `"…"` literal whose contents are
/// kebab-case: non-empty, `[a-z0-9-]` only, no leading/trailing/double
/// dash.
fn is_kebab_str_literal(text: &str) -> bool {
    let Some(inner) = text.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
        return false; // raw/byte strings don't qualify
    };
    !inner.is_empty()
        && !inner.starts_with('-')
        && !inner.ends_with('-')
        && !inner.contains("--")
        && inner
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Walks backwards from the token before `pub_idx`, skipping attributes
/// (`#[…]`) and plain comments, and reports whether a doc comment is
/// attached.
fn has_doc_before(toks: &[Token], pub_idx: usize) -> bool {
    let mut j = pub_idx;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_doc_comment() {
            return true;
        }
        if t.is_comment() {
            continue;
        }
        if t.text == "]" {
            // Skip backwards over the attribute's bracket group.
            let mut depth = 1usize;
            while j > 0 && depth > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            // Consume the leading `#` (and `!` of inner attributes).
            while j > 0 && (toks[j - 1].text == "#" || toks[j - 1].text == "!") {
                j -= 1;
            }
            continue;
        }
        return false;
    }
    false
}
