//! Stage 1 of the analyzer: the brace-matched token tree.
//!
//! The lexer ([`crate::lexer`]) produces a flat token stream; this
//! module pairs every `(`/`[`/`{` with its closer, giving downstream
//! passes O(1) access to the extent of any group — a function body, an
//! argument list, an attribute. That is all the "parsing" the item
//! index ([`crate::items`]) and call graph ([`crate::callgraph`]) need:
//! none of the rules require expression precedence, only *which tokens
//! live inside which braces*.
//!
//! Unbalanced delimiters are a hard error ([`ParseError`]) rather than
//! a diagnostic: the workspace compiles, so an unbalanced file means
//! the analyzer (not the code) is confused, and `lbq-check` must exit
//! with status 2, not report bogus findings.

use crate::lexer::{lex, Token, TokenKind};

/// A lexed file with delimiter pairing and a comment-free view.
#[derive(Debug)]
pub struct TokenFile {
    /// Every token, comments included, in source order.
    pub tokens: Vec<Token>,
    /// `pair[i]` is the index of the matching delimiter for an opening
    /// or closing `(`/`[`/`{`/`)`/`]`/`}` at `i`, `None` otherwise.
    pub pair: Vec<Option<usize>>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
}

/// Why a file could not be brace-matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending delimiter (or the last line for
    /// end-of-file errors).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn closer_of(open: &str) -> &'static str {
    match open {
        "(" => ")",
        "[" => "]",
        _ => "}",
    }
}

/// Lexes and brace-matches one file.
pub fn parse(src: &str) -> Result<TokenFile, ParseError> {
    let tokens = lex(src);
    let mut pair = vec![None; tokens.len()];
    let mut code = Vec::with_capacity(tokens.len());
    // Stack of (index, opener text).
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_comment() {
            continue;
        }
        code.push(i);
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push(i),
            ")" | "]" | "}" => {
                let Some(open) = stack.pop() else {
                    return Err(ParseError {
                        line: t.line,
                        message: format!("unmatched closing `{}`", t.text),
                    });
                };
                let expected = closer_of(&tokens[open].text);
                if t.text != expected {
                    return Err(ParseError {
                        line: t.line,
                        message: format!(
                            "mismatched delimiter: `{}` opened on line {} closed by `{}`",
                            tokens[open].text, tokens[open].line, t.text
                        ),
                    });
                }
                pair[open] = Some(i);
                pair[i] = Some(open);
            }
            _ => {}
        }
    }
    if let Some(open) = stack.pop() {
        return Err(ParseError {
            line: tokens[open].line,
            message: format!("unclosed `{}`", tokens[open].text),
        });
    }
    Ok(TokenFile { tokens, pair, code })
}

impl TokenFile {
    /// The matching delimiter index for the token at `i`, if it is a
    /// paired delimiter.
    pub fn match_of(&self, i: usize) -> Option<usize> {
        self.pair.get(i).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_nested_groups() {
        let f = parse("fn f(a: u8) { if a > [1][0] { g(a) } }").expect("balanced");
        // Every opener pairs with a closer of the right flavor.
        for (i, t) in f.tokens.iter().enumerate() {
            if matches!(t.text.as_str(), "(" | "[" | "{") {
                let j = f.match_of(i).expect("paired");
                assert_eq!(f.tokens[j].text, closer_of(&t.text));
                assert_eq!(f.match_of(j), Some(i));
            }
        }
    }

    #[test]
    fn body_extent_is_recoverable() {
        let f = parse("fn f() { a(); }\nfn g() {}").expect("balanced");
        let open = f
            .tokens
            .iter()
            .position(|t| t.text == "{")
            .expect("open brace");
        let close = f.match_of(open).expect("paired");
        let inner: Vec<&str> = f.tokens[open + 1..close]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(inner, ["a", "(", ")", ";"]);
    }

    #[test]
    fn delimiters_inside_strings_and_comments_are_inert() {
        let f = parse("// {\nfn f() { let s = \"(\"; }").expect("balanced");
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn unbalanced_is_an_error() {
        let e = parse("fn f() {").expect_err("unclosed");
        assert!(e.message.contains("unclosed"));
        let e = parse("fn f() }").expect_err("unmatched");
        assert!(e.message.contains("unmatched"));
        let e = parse("fn f( }").expect_err("mismatched");
        assert!(e.message.contains("mismatched"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn code_view_skips_comments() {
        let f = parse("// c\nfn /* x */ f() {}").expect("balanced");
        let texts: Vec<&str> = f.code.iter().map(|&i| f.tokens[i].text.as_str()).collect();
        assert_eq!(texts, ["fn", "f", "(", ")", "{", "}"]);
    }
}
