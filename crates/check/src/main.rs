//! `lbq-check` binary: lint the workspace (or a directory passed as the
//! first argument) and exit non-zero when violations survive the
//! allowlist. See the crate docs in `lib.rs` for the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Default to the workspace root (the parent of this crate's
    // manifest dir) so `cargo run -p lbq-check` works from anywhere.
    let root = std::env::args().nth(1).map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("."))
        },
        PathBuf::from,
    );
    match lbq_check::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("lbq-check: ok ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("lbq-check: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lbq-check: io error under {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
