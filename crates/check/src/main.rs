//! `lbq-check` binary: analyze the workspace (or a directory passed as
//! the first argument) and exit by outcome:
//!
//! * `0` — clean (no findings beyond the baseline),
//! * `1` — findings,
//! * `2` — analyzer breakage (bad CLI, IO error, unparseable file).
//!
//! Flags: `--format text|json`, `--baseline <path>` (subtract a
//! committed findings document), `--quiet` (suppress per-finding
//! output; the exit code still tells the story). See the crate docs in
//! `lib.rs` for the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: lbq-check [ROOT] [--format text|json] [--baseline FILE] [--quiet]";

#[derive(Debug, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Cli {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    quiet: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut root = None;
    let mut format = Format::Text;
    let mut baseline = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format takes `text` or `json`, got {other:?}\n{USAGE}"
                        ))
                    }
                };
            }
            "--baseline" => {
                let Some(p) = args.next() else {
                    return Err(format!("--baseline takes a file path\n{USAGE}"));
                };
                baseline = Some(PathBuf::from(p));
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return Err(format!("more than one ROOT argument\n{USAGE}"));
                }
            }
        }
    }
    // Default to the workspace root (the parent of this crate's
    // manifest dir) so `cargo run -p lbq-check` works from anywhere.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    Ok(Cli {
        root,
        format,
        baseline,
        quiet,
    })
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let diags = match lbq_check::check_workspace(&cli.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lbq-check: {e}");
            return ExitCode::from(2);
        }
    };

    // Baseline subtraction happens before any output: the committed
    // baseline is part of the contract, not a display option.
    let (fresh, stale) = match &cli.baseline {
        None => (diags, 0),
        Some(path) => {
            let doc = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("lbq-check: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let base = match lbq_check::json::parse_findings(&doc) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("lbq-check: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            lbq_check::json::diff_against_baseline(&diags, &base)
        }
    };
    if stale > 0 {
        eprintln!(
            "lbq-check: warning: {stale} stale baseline entr{} (finding fixed but \
             still baselined) — regenerate with --format json",
            if stale == 1 { "y" } else { "ies" }
        );
    }

    match cli.format {
        Format::Json => {
            if !cli.quiet {
                print!("{}", lbq_check::json::render(&fresh));
            }
        }
        Format::Text => {
            if !cli.quiet {
                for d in &fresh {
                    println!("{d}");
                }
                if fresh.is_empty() {
                    println!("lbq-check: ok ({})", cli.root.display());
                } else {
                    println!("lbq-check: {} violation(s)", fresh.len());
                }
            }
        }
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
