//! Stage 3 of the analyzer: interprocedural rules over the call graph.
//!
//! | rule | meaning |
//! |------|---------|
//! | `hot-alloc` | no allocating construct (`Vec::new`, `with_capacity`, `collect`, `format!`, `Box::new`, `String` ctors, `vec!`, `to_vec`/`to_string`/`to_owned`) reachable from a hot root — the static twin of the PR 4 counting-allocator zero-steady-state-allocation proof |
//! | `hot-panic` | no `unwrap`/`expect`/`panic!`/`unreachable!`/bare `[…]` indexing reachable from a `// lbq-check: no-panic` root |
//! | `atomic-ordering` | an atomic accessed with Acquire/Release/AcqRel/SeqCst anywhere must not also be accessed `Relaxed` — every Relaxed use of a cross-thread gate needs a justified allow |
//! | `guard-across-call` | no `MutexGuard` held across a call into the hot call graph — a lock around a tree traversal serializes the whole pool |
//!
//! All four rules report *sites*; the reason-carrying allow comment
//! (`// lbq-check: allow(rule, "why")`, see [`crate::rules`]) silences
//! a site like any other diagnostic. Hot/no-panic provenance is spelled
//! out in each message (`hot via knn_in → knn_core`) so a finding deep
//! in a callee is traceable to its root.

use crate::callgraph::CallGraph;
use crate::items::ItemIndex;
use crate::lexer::TokenKind;
use crate::parse::TokenFile;
use crate::rules::Diagnostic;
use std::collections::HashMap;

/// Runs all interprocedural rules. `files` is index-aligned with
/// [`ItemIndex::files`].
pub fn run(ix: &ItemIndex, cg: &CallGraph, files: &[&TokenFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    hot_alloc(ix, cg, files, &mut out);
    hot_panic(ix, cg, files, &mut out);
    atomic_ordering(ix, files, &mut out);
    guard_across_call(ix, cg, files, &mut out);
    out
}

/// Container types whose `new`/`with_capacity`/`from` constructors own
/// heap storage.
const ALLOC_TYPES: [&str; 10] = [
    "Vec", "VecDeque", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Box", "Arc", "Rc",
];
const ALLOC_CTORS: [&str; 3] = ["new", "with_capacity", "from"];
/// Allocating methods (`recv.collect()` &c.).
const ALLOC_METHODS: [&str; 4] = ["collect", "to_vec", "to_string", "to_owned"];
/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// `hot-alloc`: allocation constructs inside functions on the hot call
/// graph.
fn hot_alloc(ix: &ItemIndex, cg: &CallGraph, files: &[&TokenFile], out: &mut Vec<Diagnostic>) {
    for (fi, f) in ix.fns.iter().enumerate() {
        if cg.hot[fi].is_none() {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let tf = files[f.file];
        let chain = cg.chain(ix, &cg.hot, fi);
        for_each_body_code(tf, start, end, |code, p| {
            let t = &tf.tokens[code[p]];
            if t.kind != TokenKind::Ident {
                return;
            }
            let next = |k: usize| code.get(p + k).map(|&n| tf.tokens[n].text.as_str());
            let prev = |k: usize| p.checked_sub(k).map(|q| tf.tokens[code[q]].text.as_str());
            let name = t.text.as_str();
            let what: Option<String> = if ALLOC_MACROS.contains(&name) && next(1) == Some("!") {
                Some(format!("{name}!"))
            } else if ALLOC_CTORS.contains(&name)
                && next(1) == Some("(")
                && prev(1) == Some(":")
                && prev(2) == Some(":")
                && prev(3).is_some_and(|q| ALLOC_TYPES.contains(&q))
            {
                // lbq-check: allow(no-unwrap-core) — prev(3) was just matched Some
                Some(format!("{}::{}", prev(3).expect("matched above"), name))
            } else if ALLOC_METHODS.contains(&name)
                && prev(1) == Some(".")
                && (next(1) == Some("(") || (next(1) == Some(":") && next(2) == Some(":")))
            {
                Some(format!(".{name}()"))
            } else {
                None
            };
            if let Some(what) = what {
                out.push(Diagnostic {
                    rule: "hot-alloc",
                    file: ix.files[f.file].clone(),
                    line: t.line,
                    message: format!(
                        "allocating `{what}` on the hot path (hot via {chain}); move the \
                         buffer into QueryScratch, mark the callee `// lbq-check: cold`, \
                         or justify with an allow"
                    ),
                });
            }
        });
    }
}

/// Keywords that can legitimately precede a `[` without it being an
/// indexing expression (`return [a, b]`, `match [x] { … }`).
const NON_INDEX_KEYWORDS: [&str; 18] = [
    "in", "as", "return", "break", "continue", "else", "match", "if", "while", "loop", "move",
    "ref", "mut", "box", "dyn", "where", "unsafe", "await",
];

/// `hot-panic`: panic sites inside functions on a no-panic path.
fn hot_panic(ix: &ItemIndex, cg: &CallGraph, files: &[&TokenFile], out: &mut Vec<Diagnostic>) {
    for (fi, f) in ix.fns.iter().enumerate() {
        if cg.no_panic[fi].is_none() {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let tf = files[f.file];
        let chain = cg.chain(ix, &cg.no_panic, fi);
        for_each_body_code(tf, start, end, |code, p| {
            let t = &tf.tokens[code[p]];
            let next = |k: usize| code.get(p + k).map(|&n| tf.tokens[n].text.as_str());
            let prev = |k: usize| p.checked_sub(k).map(|q| &tf.tokens[code[q]]);
            let what: Option<String> = match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, m @ ("unwrap" | "expect"))
                    if prev(1).is_some_and(|q| q.text == ".") && next(1) == Some("(") =>
                {
                    Some(format!(".{m}()"))
                }
                (TokenKind::Ident, m @ ("panic" | "unreachable")) if next(1) == Some("!") => {
                    Some(format!("{m}!"))
                }
                (TokenKind::Punct, "[") => {
                    let is_index = prev(1).is_some_and(|q| match q.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&q.text.as_str()),
                        TokenKind::Punct => q.text == ")" || q.text == "]",
                        _ => false,
                    });
                    is_index.then(|| "bare `[…]` indexing".to_string())
                }
                _ => None,
            };
            if let Some(what) = what {
                out.push(Diagnostic {
                    rule: "hot-panic",
                    file: ix.files[f.file].clone(),
                    line: t.line,
                    message: format!(
                        "{what} on a no-panic path (no-panic via {chain}); return an \
                         Option/use get(), or justify the invariant with an allow"
                    ),
                });
            }
        });
    }
}

/// Atomic RMW/load/store methods whose ordering argument the rule
/// inspects.
const ATOMIC_METHODS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic access site.
struct AtomicSite {
    /// Receiver identifier directly before the method call.
    field: String,
    method: String,
    /// All `Ordering::X` names found in the argument list.
    orderings: Vec<&'static str>,
    file: usize,
    line: u32,
}

/// `atomic-ordering`: per-field ordering-pairing analysis. A field
/// accessed with Acquire/Release/AcqRel/SeqCst anywhere gates
/// cross-thread data; every all-Relaxed access to the same field is
/// flagged.
fn atomic_ordering(ix: &ItemIndex, files: &[&TokenFile], out: &mut Vec<Diagnostic>) {
    let mut sites: Vec<AtomicSite> = Vec::new();
    for f in &ix.fns {
        if f.is_test || ItemIndex::lib_crate(&ix.files[f.file]).is_none() {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let tf = files[f.file];
        for_each_body_code(tf, start, end, |code, p| {
            let t = &tf.tokens[code[p]];
            if t.kind != TokenKind::Ident || !ATOMIC_METHODS.contains(&t.text.as_str()) {
                return;
            }
            let dot_before = p
                .checked_sub(1)
                .is_some_and(|q| tf.tokens[code[q]].text == ".");
            let open = code.get(p + 1).copied();
            if !dot_before || open.map(|ti| tf.tokens[ti].text.as_str()) != Some("(") {
                return;
            }
            let Some(close) = open.and_then(|ti| tf.match_of(ti)) else {
                return;
            };
            // lbq-check: allow(no-unwrap-core) — open was tested Some above
            let open = open.expect("checked above");
            let mut orderings = Vec::new();
            let mut i = open + 1;
            while i < close {
                let a = &tf.tokens[i];
                if a.kind == TokenKind::Ident {
                    if let Some(&o) = ORDERINGS.iter().find(|&&o| o == a.text) {
                        // Require the `Ordering ::` qualifier so
                        // unrelated identifiers cannot match.
                        let qualified = i >= 3
                            && tf.tokens[i - 1].text == ":"
                            && tf.tokens[i - 2].text == ":"
                            && tf.tokens[i - 3].text == "Ordering";
                        if qualified {
                            orderings.push(o);
                        }
                    }
                }
                i += 1;
            }
            if orderings.is_empty() {
                return; // `.load(` on something that is not an atomic
            }
            let field = p
                .checked_sub(2)
                .map(|q| &tf.tokens[code[q]])
                .filter(|r| r.kind == TokenKind::Ident)
                .map(|r| r.text.clone())
                .unwrap_or_else(|| "<expr>".to_string());
            sites.push(AtomicSite {
                field,
                method: t.text.clone(),
                orderings,
                file: f.file,
                line: t.line,
            });
        });
    }
    // Pairing table: field → does any site use a non-Relaxed ordering?
    let mut strong_at: HashMap<&str, (usize, u32)> = HashMap::new();
    for s in &sites {
        if s.orderings.iter().any(|&o| o != "Relaxed") {
            strong_at.entry(&s.field).or_insert((s.file, s.line));
        }
    }
    for s in &sites {
        let all_relaxed = s.orderings.iter().all(|&o| o == "Relaxed");
        if !all_relaxed {
            continue;
        }
        if let Some(&(sf, sl)) = strong_at.get(s.field.as_str()) {
            out.push(Diagnostic {
                rule: "atomic-ordering",
                file: ix.files[s.file].clone(),
                line: s.line,
                message: format!(
                    "atomic `{}` pairs Acquire/Release at {}:{}; this Relaxed `{}` \
                     breaks the ordering contract — strengthen it or justify with an allow",
                    s.field, ix.files[sf], sl, s.method
                ),
            });
        }
    }
}

/// `guard-across-call`: a `let`-bound guard from `.lock()` that is
/// still live when the function calls into the hot call graph.
fn guard_across_call(
    ix: &ItemIndex,
    cg: &CallGraph,
    files: &[&TokenFile],
    out: &mut Vec<Diagnostic>,
) {
    for (fi, f) in ix.fns.iter().enumerate() {
        if f.is_test || ItemIndex::lib_crate(&ix.files[f.file]).is_none() {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let tf = files[f.file];
        let code: Vec<usize> = tf
            .code
            .iter()
            .copied()
            .filter(|&ti| ti >= start && ti < end)
            .collect();
        // Innermost enclosing brace-close for each code position.
        let mut brace_stack: Vec<usize> = Vec::new(); // token idx of pending closes
        let mut scope_close: Vec<usize> = Vec::with_capacity(code.len());
        for &ti in &code {
            while brace_stack.last().is_some_and(|&c| ti > c) {
                brace_stack.pop();
            }
            scope_close.push(brace_stack.last().copied().unwrap_or(end));
            if tf.tokens[ti].text == "{" {
                if let Some(c) = tf.match_of(ti) {
                    brace_stack.push(c);
                }
            }
        }
        for p in 0..code.len() {
            if tf.tokens[code[p]].text != "let" {
                continue;
            }
            // Binding name: `let [mut] name = …`. Destructuring patterns
            // are skipped (no single guard identity).
            let mut q = p + 1;
            if code.get(q).is_some_and(|&ti| tf.tokens[ti].text == "mut") {
                q += 1;
            }
            let Some(&name_ti) = code.get(q) else {
                continue;
            };
            let name_tok = &tf.tokens[name_ti];
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            // Statement extent: to the `;` at this nesting level.
            let mut r = q + 1;
            let mut has_lock = false;
            let stmt_end;
            loop {
                let Some(&ti) = code.get(r) else {
                    stmt_end = end;
                    break;
                };
                let t = &tf.tokens[ti];
                if t.text == ";" {
                    stmt_end = ti;
                    break;
                }
                if matches!(t.text.as_str(), "(" | "[" | "{") {
                    // Descend into groups only to look for `.lock(`.
                    if let Some(c) = tf.match_of(ti) {
                        if contains_lock_call(tf, ti, c) {
                            has_lock = true;
                        }
                        while code.get(r).is_some_and(|&x| x <= c) {
                            r += 1;
                        }
                        continue;
                    }
                }
                if t.text == "lock"
                    && t.kind == TokenKind::Ident
                    && r > 0
                    && tf.tokens[code[r - 1]].text == "."
                    && code.get(r + 1).is_some_and(|&n| tf.tokens[n].text == "(")
                {
                    has_lock = true;
                }
                r += 1;
            }
            if !has_lock {
                continue;
            }
            let guard = name_tok.text.clone();
            // Live until `drop(guard)` or the end of the enclosing block.
            let mut live_end = scope_close[p];
            let mut s = r;
            while let Some(&ti) = code.get(s) {
                if ti >= live_end {
                    break;
                }
                if tf.tokens[ti].text == "drop"
                    && code.get(s + 1).is_some_and(|&n| tf.tokens[n].text == "(")
                    && code.get(s + 2).is_some_and(|&n| tf.tokens[n].text == guard)
                {
                    live_end = ti;
                    break;
                }
                s += 1;
            }
            // Any hot call strictly inside the live range?
            let mut seen_tok = usize::MAX;
            for call in &cg.calls[fi] {
                if call.tok <= stmt_end || call.tok >= live_end || call.tok == seen_tok {
                    continue;
                }
                if cg.hot[call.callee].is_none() {
                    continue;
                }
                seen_tok = call.tok;
                let callee = &ix.fns[call.callee];
                out.push(Diagnostic {
                    rule: "guard-across-call",
                    file: ix.files[f.file].clone(),
                    line: call.line,
                    message: format!(
                        "guard `{guard}` (locked on line {}) is held across a call into \
                         the hot call graph (`{}`, hot via {}); drop the guard before the \
                         call or justify with an allow",
                        name_tok.line,
                        callee.name,
                        cg.chain(ix, &cg.hot, call.callee)
                    ),
                });
            }
        }
    }
}

/// True when `tokens[open..close]` contains a `.lock(` call.
fn contains_lock_call(tf: &TokenFile, open: usize, close: usize) -> bool {
    let mut i = open + 1;
    while i + 1 < close {
        let t = &tf.tokens[i];
        if t.kind == TokenKind::Ident
            && t.text == "lock"
            && i >= 1
            && tf.tokens[..i]
                .iter()
                .rev()
                .find(|x| !x.is_comment())
                .is_some_and(|x| x.text == ".")
            && tf.tokens[i + 1..close]
                .iter()
                .find(|x| !x.is_comment())
                .is_some_and(|x| x.text == "(")
        {
            return true;
        }
        i += 1;
    }
    false
}

/// Calls `f(code, p)` for every code position `p` restricted to
/// `tokens[start..end)`. `code` holds raw token indices.
fn for_each_body_code(
    tf: &TokenFile,
    start: usize,
    end: usize,
    mut f: impl FnMut(&[usize], usize),
) {
    let code: Vec<usize> = tf
        .code
        .iter()
        .copied()
        .filter(|&ti| ti >= start && ti < end)
        .collect();
    // `debug_assert*!(…)` groups are compiled out of the release
    // builds the hot-path proofs measure; nothing inside them counts.
    let mut skip_until: usize = 0;
    for p in 0..code.len() {
        let ti = code[p];
        if ti < skip_until {
            continue;
        }
        if tf.tokens[ti].text.starts_with("debug_assert")
            && code.get(p + 1).map(|&n| tf.tokens[n].text.as_str()) == Some("!")
        {
            if let Some(close) = code.get(p + 2).and_then(|&open| tf.match_of(open)) {
                skip_until = close;
            }
            continue;
        }
        f(&code, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parse::parse;

    fn check(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut ix = ItemIndex::default();
        let mut tfs = Vec::new();
        for (path, src) in srcs {
            let tf = parse(src).expect("fixture parses");
            ix.add_file(path, &tf);
            tfs.push(tf);
        }
        let refs: Vec<&TokenFile> = tfs.iter().collect();
        let cg = CallGraph::build(&ix, &refs);
        run(&ix, &cg, &refs)
    }

    fn rules_of(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hot_alloc_fires_transitively() {
        let d = check(&[(
            "crates/rtree/src/x.rs",
            "pub fn knn_in() { helper(); }\n\
             fn helper() { let v: Vec<u8> = Vec::with_capacity(4); }",
        )]);
        assert_eq!(rules_of(&d), ["hot-alloc"]);
        assert!(d[0].message.contains("knn_in → helper"), "{}", d[0].message);
    }

    #[test]
    fn hot_alloc_covers_each_construct() {
        for (snippet, needle) in [
            ("let v = vec![1, 2];", "vec!"),
            ("let s = format!(\"x\");", "format!"),
            ("let b = Box::new(3);", "Box::new"),
            ("let s = String::new();", "String::new"),
            ("let v: Vec<u8> = it.collect();", ".collect()"),
            ("let v = it.collect::<Vec<u8>>();", ".collect()"),
            ("let v = s.to_vec();", ".to_vec()"),
            ("let s = x.to_string();", ".to_string()"),
        ] {
            let src = format!("pub fn q_in(it: I, s: &[u8], x: u8) {{ {snippet} }}");
            let d = check(&[("crates/rtree/src/x.rs", &src)]);
            assert_eq!(rules_of(&d), ["hot-alloc"], "snippet: {snippet}");
            assert!(d[0].message.contains(needle), "{}", d[0].message);
        }
    }

    #[test]
    fn hot_alloc_ignores_cold_fns_and_warm_pushes() {
        let d = check(&[(
            "crates/rtree/src/x.rs",
            "pub fn knn_in(s: &mut Vec<u8>) { s.push(1); s.clear(); grow(); }\n\
             // lbq-check: cold — one-time scratch warm-up\n\
             fn grow() { let v: Vec<u8> = Vec::with_capacity(64); }\n\
             fn never_hot() { let v = vec![1]; }",
        )]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn hot_panic_fires_on_annotated_paths() {
        let d = check(&[(
            "crates/serve/src/x.rs",
            "// lbq-check: no-panic — worker must survive poisoned locks\n\
             fn worker(v: &[u8], o: Option<u8>) { step(v); o.unwrap(); }\n\
             fn step(v: &[u8]) { let _x = v[0]; }",
        )]);
        let rules = rules_of(&d);
        assert_eq!(rules, ["hot-panic", "hot-panic"], "{d:?}");
        assert!(d.iter().any(|d| d.message.contains(".unwrap()")));
        assert!(d.iter().any(|d| d.message.contains("indexing")));
    }

    #[test]
    fn hot_panic_ignores_slice_types_and_array_literals() {
        let d = check(&[(
            "crates/serve/src/x.rs",
            "// lbq-check: no-panic\n\
             fn worker(v: &[u8]) -> [u8; 2] { let a = [1u8, 2]; let _s: &[u8] = v; a }",
        )]);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn atomic_ordering_flags_mixed_fields() {
        let d = check(&[(
            "crates/serve/src/x.rs",
            "struct S { flag: AtomicBool }\n\
             impl S {\n\
             fn publish(&self) { self.flag.store(true, Ordering::Release); }\n\
             fn check(&self) -> bool { self.flag.load(Ordering::Relaxed) }\n\
             }",
        )]);
        assert_eq!(rules_of(&d), ["atomic-ordering"]);
        assert!(d[0].message.contains("`flag`"), "{}", d[0].message);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn atomic_ordering_accepts_consistent_fields() {
        let d = check(&[(
            "crates/serve/src/x.rs",
            "struct S { hits: AtomicU64, gate: AtomicBool }\n\
             impl S {\n\
             fn a(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
             fn b(&self) -> u64 { self.hits.load(Ordering::Relaxed) }\n\
             fn c(&self) { self.gate.store(true, Ordering::Release); }\n\
             fn d(&self) -> bool { self.gate.load(Ordering::Acquire) }\n\
             }",
        )]);
        assert!(
            d.is_empty(),
            "pure counters and paired gates are fine: {d:?}"
        );
    }

    #[test]
    fn guard_across_call_fires_and_respects_drop() {
        let d = check(&[(
            "crates/rtree/src/x.rs",
            "pub fn traverse_in() {}\n\
             fn bad(m: &Mutex<u8>) { let g = m.lock(); traverse_in(); }\n\
             fn good(m: &Mutex<u8>) { let g = m.lock(); drop(g); traverse_in(); }\n\
             fn scoped(m: &Mutex<u8>) { { let g = m.lock(); } traverse_in(); }",
        )]);
        assert_eq!(rules_of(&d), ["guard-across-call"], "{d:?}");
        assert!(d[0].message.contains("`g`"));
        assert!(d[0].message.contains("traverse_in"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn guard_across_cold_call_is_fine() {
        let d = check(&[(
            "crates/rtree/src/x.rs",
            "pub fn traverse_in() {}\n\
             fn cold_helper() {}\n\
             fn ok(m: &Mutex<u8>) { let g = m.lock(); cold_helper(); }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
