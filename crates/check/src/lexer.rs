//! A minimal hand-rolled Rust token scanner.
//!
//! Just enough lexical structure for the lint rules in [`crate::rules`]:
//! identifiers, numeric/string/char literals, comments (kept as tokens —
//! the allowlist and `pub-doc` need them) and punctuation, each tagged
//! with its 1-based source line. It is *not* a full Rust lexer: shebangs,
//! unicode identifiers and a few exotic literal forms are out of scope
//! for this workspace.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `pub`, `as`, `unwrap`, …).
    Ident,
    /// Numeric literal, integer or float, including any suffix.
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// `//` comment; `doc` marks `///` and `//!`.
    LineComment {
        /// True for `///` and `//!` forms.
        doc: bool,
    },
    /// `/* */` comment; `doc` marks `/**` and `/*!`.
    BlockComment {
        /// True for `/**` and `/*!` forms.
        doc: bool,
    },
    /// Punctuation. `==` and `!=` are fused into one token; everything
    /// else is a single character.
    Punct,
}

/// One token with its text and the line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Verbatim source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    fn new(kind: TokenKind, text: &str, line: u32) -> Self {
        Token {
            kind,
            text: text.to_string(),
            line,
        }
    }

    /// True for comment tokens of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True for doc comments (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Tokenizes `src`. Never fails: unrecognized bytes come out as
/// single-character [`TokenKind::Punct`] tokens, so rules degrade
/// gracefully on input the scanner does not fully understand.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                b'=' if self.peek(1) == b'=' => self.punct2("=="),
                b'!' if self.peek(1) == b'=' => self.punct2("!="),
                c => {
                    // Single punctuation character; multi-byte UTF-8
                    // (only expected inside strings/comments) is
                    // consumed whole so we never split a char boundary.
                    let mut end = self.i + 1;
                    if c >= 0x80 {
                        while end < self.b.len() && self.b[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                    }
                    self.out.push(Token::new(
                        TokenKind::Punct,
                        self.src.get(self.i..end).unwrap_or("?"),
                        self.line,
                    ));
                    self.i = end;
                }
            }
        }
        self.out
    }

    fn punct2(&mut self, text: &str) {
        self.out.push(Token::new(TokenKind::Punct, text, self.line));
        self.i += 2;
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.out
            .push(Token::new(TokenKind::LineComment { doc }, text, self.line));
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let mut depth = 0usize;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        let text = &self.src[start..self.i];
        let doc = text.starts_with("/*!")
            || (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4);
        self.out.push(Token::new(
            TokenKind::BlockComment { doc },
            text,
            start_line,
        ));
    }

    /// Plain (escaped) string literal starting at the `"` at `self.i`.
    fn string(&mut self, start: usize) {
        let start_line = self.line;
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Token::new(
            TokenKind::Str,
            self.src.get(start..self.i).unwrap_or(""),
            start_line,
        ));
    }

    /// Raw string starting at the first `#` or `"` after the `r` prefix.
    fn raw_string(&mut self, start: usize, mut j: usize) {
        let start_line = self.line;
        let mut hashes = 0usize;
        while j < self.b.len() && self.b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
                // Scan for `"` followed by `hashes` hash marks.
        while j < self.b.len() {
            if self.b[j] == b'\n' {
                self.line += 1;
                j += 1;
            } else if self.b[j] == b'"'
                && self.b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == b'#')
                    .count()
                    == hashes
            {
                j += 1 + hashes;
                break;
            } else {
                j += 1;
            }
        }
        self.i = j;
        self.out.push(Token::new(
            TokenKind::Str,
            self.src.get(start..self.i).unwrap_or(""),
            start_line,
        ));
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` and raw
    /// identifiers. Returns false when the `r`/`b` is an ordinary
    /// identifier start, leaving the position untouched.
    fn raw_or_byte_literal(&mut self) -> bool {
        let c = self.b[self.i];
        let start = self.i;
        if c == b'r' {
            let mut j = self.i + 1;
            let mut hashes = 0usize;
            while j < self.b.len() && self.b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < self.b.len() && self.b[j] == b'"' {
                self.raw_string(start, self.i + 1);
                return true;
            }
            if hashes == 1 && j < self.b.len() && is_ident_start(self.b[j]) {
                // Raw identifier r#type.
                self.i = j;
                self.ident();
                let tok = self.out.last_mut().expect("ident just pushed");
                tok.text = self.src[start..start + 2 + tok.text.len()].to_string();
                return true;
            }
            return false;
        }
        // c == b'b'
        match self.peek(1) {
            b'"' => {
                self.i += 1;
                let tok_start = start;
                self.string(tok_start);
                return true;
            }
            b'\'' => {
                self.i += 1;
                self.char_or_lifetime();
                if let Some(t) = self.out.last_mut() {
                    t.text = self.src[start..start + 1 + t.text.len()].to_string();
                }
                return true;
            }
            b'r' => {
                let mut j = self.i + 2;
                while j < self.b.len() && self.b[j] == b'#' {
                    j += 1;
                }
                if j < self.b.len() && self.b[j] == b'"' {
                    self.raw_string(start, self.i + 2);
                    return true;
                }
                return false;
            }
            _ => false,
        }
    }

    /// Disambiguates `'x'` / `'\n'` (char literal) from `'a` (lifetime).
    /// Lifetimes are emitted as [`TokenKind::Punct`] so downstream rules
    /// can ignore them uniformly.
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let n1 = self.peek(1);
        let is_char = n1 == b'\\'
            || n1 >= 0x80
            || (!is_ident_cont(n1) && n1 != 0)
            || (is_ident_cont(n1) && self.peek(2) == b'\'');
        if !is_char {
            // Lifetime: 'ident
            self.i += 1;
            while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
                self.i += 1;
            }
            self.out.push(Token::new(
                TokenKind::Punct,
                &self.src[start..self.i],
                start_line,
            ));
            return;
        }
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.out.push(Token::new(
            TokenKind::CharLit,
            self.src.get(start..self.i).unwrap_or(""),
            start_line,
        ));
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
            self.i += 1;
        }
        self.out.push(Token::new(
            TokenKind::Ident,
            &self.src[start..self.i],
            self.line,
        ));
    }

    fn number(&mut self) {
        let start = self.i;
        if self.b[self.i] == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
        } else {
            self.decimal_digits();
            // Fractional part — but not `..` ranges or method calls.
            if self.b.get(self.i) == Some(&b'.')
                && self.peek(1) != b'.'
                && !is_ident_start(self.peek(1))
            {
                self.i += 1;
                self.decimal_digits();
            }
            // Exponent.
            if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
                let sign = matches!(self.peek(1), b'+' | b'-') as usize;
                if self.peek(1 + sign).is_ascii_digit() {
                    self.i += 1 + sign;
                    self.decimal_digits();
                }
            }
            // Suffix (f64, u32, …) glued onto the digits.
            while self.i < self.b.len() && is_ident_cont(self.b[self.i]) {
                self.i += 1;
            }
        }
        self.out.push(Token::new(
            TokenKind::Number,
            &self.src[start..self.i],
            self.line,
        ));
    }

    fn decimal_digits(&mut self) {
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_') {
            self.i += 1;
        }
    }
}

/// True when a [`TokenKind::Number`] token denotes a floating-point
/// literal: it has a fractional part, a decimal exponent, or an explicit
/// `f32`/`f64` suffix. Hex/octal/binary literals never qualify.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text.bytes().any(|c| c == b'e' || c == b'E')
}

/// Numeric value of a float literal token, if it parses. Underscores
/// and type suffixes are stripped first.
pub fn float_value(text: &str) -> Option<f64> {
    if !is_float_literal(text) {
        return None;
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let cleaned = cleaned
        .strip_suffix("f64")
        .or_else(|| cleaned.strip_suffix("f32"))
        .unwrap_or(&cleaned);
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_punct() {
        let t = kinds("let x = 1.5e-7 + 0x1e;");
        assert_eq!(t[0], (TokenKind::Ident, "let".into()));
        assert_eq!(t[1], (TokenKind::Ident, "x".into()));
        assert_eq!(t[3], (TokenKind::Number, "1.5e-7".into()));
        assert_eq!(t[5], (TokenKind::Number, "0x1e".into()));
    }

    #[test]
    fn eq_operators_fuse() {
        let t = kinds("a == b != c = d <= e");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "=", "<", "="]);
    }

    #[test]
    fn range_is_not_a_float() {
        let t = kinds("for i in 0..10 {}");
        assert_eq!(t[3], (TokenKind::Number, "0".into()));
        assert_eq!(t[6], (TokenKind::Number, "10".into()));
    }

    #[test]
    fn method_call_on_literal_stops_the_number() {
        let t = kinds("2.0.sqrt() and 1.max(2)");
        assert_eq!(t[0], (TokenKind::Number, "2.0".into()));
        assert_eq!(t[2], (TokenKind::Ident, "sqrt".into()));
        assert_eq!(t[6], (TokenKind::Number, "1".into()));
        assert_eq!(t[8], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn comments_and_docs() {
        let src = "/// doc\n// note\n//! inner\n/* block */ /** docblock */ fn f() {}";
        let t = lex(src);
        assert_eq!(t[0].kind, TokenKind::LineComment { doc: true });
        assert_eq!(t[1].kind, TokenKind::LineComment { doc: false });
        assert_eq!(t[2].kind, TokenKind::LineComment { doc: true });
        assert_eq!(t[3].kind, TokenKind::BlockComment { doc: false });
        assert_eq!(t[4].kind, TokenKind::BlockComment { doc: true });
        assert_eq!(t[3].line, 4);
    }

    #[test]
    fn nested_block_comment_and_lines() {
        let t = lex("/* a /* b */ c\n */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].text, "x");
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let t = kinds(r#"let s = "a == b // not a comment"; 'x'; 'a: loop {}"#);
        assert!(t.iter().all(|(_, s)| s != "=="));
        assert!(t.iter().any(|(k, _)| *k == TokenKind::Str));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::CharLit && s == "'x'"));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Punct && s == "'a"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let t = kinds(r##"r"plain" r#"with "quotes""# b"bytes" br#"raw bytes"# b'x'"##);
        let strs = t.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(strs, 4);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::CharLit && s == "b'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        let t = kinds(r"'\n' '\'' '\u{1F600}'");
        assert!(t.iter().all(|(k, _)| *k == TokenKind::CharLit));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn multiline_string_line_tracking() {
        let t = lex("let a = \"x\ny\";\nfn f() {}");
        let f = t.iter().find(|t| t.text == "fn").expect("fn token");
        assert_eq!(f.line, 3);
    }

    #[test]
    fn float_literal_classification() {
        assert!(is_float_literal("1.0"));
        assert!(is_float_literal("1e-9"));
        assert!(is_float_literal("2f64"));
        assert!(is_float_literal("1_000.5"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("0x1e"));
        assert!(!is_float_literal("1_000u64"));
        assert_eq!(float_value("1.5e-7"), Some(1.5e-7));
        assert_eq!(float_value("1e-9f64"), Some(1e-9));
        assert_eq!(float_value("7"), None);
    }
}
