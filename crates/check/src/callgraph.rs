//! Stage 2b of the analyzer: the conservative intra-workspace call
//! graph and the transitive property propagation on top of it.
//!
//! ## Resolution model
//!
//! Calls are resolved **by name**: a call site `foo(…)`, `x.foo(…)` or
//! `Path::foo(…)` gets an edge to *every* indexed function named `foo`
//! (for `Type::foo(…)` with a known `impl Type`, only that type's
//! `foo`). No type inference — the graph over-approximates, with one
//! deliberate recall exception: a `.method(…)` call whose name is on
//! the [`STD_METHODS`] list (`len`, `push`, `insert`, `collect`, …) is
//! treated as a std-library call and produces **no** edge. Without
//! that carve-out, every `HashMap::insert` in the workspace aliases
//! `RTree::insert` and the whole mutation subtree goes hot — the graph
//! becomes all noise. A workspace method shadowing a std name loses
//! propagation; the runtime counting-allocator assertions remain the
//! ground-truth backstop for that gap. The `// lbq-check: cold`
//! annotation and reason-carrying allows are the other pressure valves
//! (see DESIGN.md §13).
//!
//! ## Propagation
//!
//! Two properties flow root → callee, transitively:
//!
//! * **hot** — seeded by every `*_in` query entry point in the `rtree`
//!   library code (the scratch-backed zero-steady-state-allocation
//!   query API of PR 4) and by `// lbq-check: hot` annotations
//!   (`retrieve_influence_set_in` in core — the one core entry point
//!   under a runtime zero-alloc assertion; core's other `_in` fns build
//!   owned responses and allocate by design — and the serve worker
//!   loop). Consumed by `hot-alloc` and `guard-across-call`.
//! * **no-panic** — seeded by `// lbq-check: no-panic` annotations
//!   only. Consumed by `hot-panic`.
//!
//! Propagation stops at `// lbq-check: cold` functions, at test code,
//! and at the `crates/obs` boundary: the observability hooks are
//! allocation-free when disabled (exactly the configuration the
//! runtime counting-allocator proof measures), so their enabled-path
//! internals are exempt by policy, mirroring the runtime harness.

use crate::items::{FnItem, ItemIndex};
use crate::lexer::TokenKind;
use crate::parse::TokenFile;

/// Crates whose functions act as propagation barriers (see module
/// docs).
pub const BARRIER_CRATES: [&str; 1] = ["obs"];

/// How a function acquired a propagated property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// The function is itself a root (annotation or `*_in` naming).
    Root,
    /// Reached through a call from this function (index into
    /// [`ItemIndex::fns`]).
    Via(usize),
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    /// Callee: index into [`ItemIndex::fns`].
    pub callee: usize,
    /// Raw token index of the callee name at the call site.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: u32,
}

/// The call graph plus propagation results, index-aligned with
/// [`ItemIndex::fns`].
#[derive(Debug)]
pub struct CallGraph {
    /// Outgoing resolved calls per function.
    pub calls: Vec<Vec<Call>>,
    /// `Some` iff the function is on the hot call graph.
    pub hot: Vec<Option<Provenance>>,
    /// `Some` iff the function is on a no-panic path.
    pub no_panic: Vec<Option<Provenance>>,
}

/// Method names resolved as std-library calls: a `.name(…)` call with
/// one of these names produces no workspace edge (see module docs).
/// Qualified calls (`Type::name(…)`) are unaffected.
pub const STD_METHODS: [&str; 52] = [
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "clear",
    "extend",
    "drain",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "contains",
    "contains_key",
    "entry",
    "keys",
    "values",
    "sort",
    "sort_unstable",
    "dedup",
    "retain",
    "truncate",
    "reserve",
    "resize",
    "fill",
    "swap",
    "take",
    "replace",
    "clone",
    "to_owned",
    "to_vec",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "last",
    "first",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "peek",
    "lock",
    "read",
    "write",
    "set",
    "count",
];

/// True when `f` seeds the hot set: annotated, or an `*_in` query entry
/// point in the rtree library code.
pub fn is_hot_root(ix: &ItemIndex, f: &FnItem) -> bool {
    if f.ann.hot {
        return true;
    }
    if f.is_test || f.body.is_none() || !f.name.ends_with("_in") {
        return false;
    }
    ItemIndex::lib_crate(&ix.files[f.file]) == Some("rtree")
}

/// True when propagation must not enter `f` (nor continue through it).
fn is_barrier(ix: &ItemIndex, f: &FnItem) -> bool {
    if f.ann.cold || f.is_test {
        return true;
    }
    matches!(ItemIndex::lib_crate(&ix.files[f.file]),
        Some(k) if BARRIER_CRATES.contains(&k))
}

impl CallGraph {
    /// Builds the graph and runs both propagations. `files` must be
    /// index-aligned with [`ItemIndex::files`].
    pub fn build(ix: &ItemIndex, files: &[&TokenFile]) -> CallGraph {
        let calls: Vec<Vec<Call>> = ix
            .fns
            .iter()
            .map(|f| match f.body {
                Some((start, end)) => {
                    resolve_calls(ix, files[f.file], start, end, f.owner.as_deref())
                }
                None => Vec::new(),
            })
            .collect();
        let hot = propagate(ix, &calls, |f| is_hot_root(ix, f));
        let no_panic = propagate(ix, &calls, |f| f.ann.no_panic);
        CallGraph {
            calls,
            hot,
            no_panic,
        }
    }

    /// Root-to-`idx` provenance chain, e.g. `knn_in → knn_core`, for
    /// diagnostics. Walks the `via` pointers back to a root.
    pub fn chain(&self, ix: &ItemIndex, prov: &[Option<Provenance>], idx: usize) -> String {
        let mut names = vec![ix.fns[idx].name.clone()];
        let mut cur = idx;
        // The via chain is acyclic by construction (BFS tree), but cap
        // the walk anyway so a future bug cannot hang the analyzer.
        for _ in 0..prov.len() {
            match prov[cur] {
                Some(Provenance::Via(p)) => {
                    names.push(ix.fns[p].name.clone());
                    cur = p;
                }
                _ => break,
            }
        }
        names.reverse();
        names.join(" → ")
    }
}

/// BFS from every root, stopping at barriers.
fn propagate(
    ix: &ItemIndex,
    calls: &[Vec<Call>],
    is_root: impl Fn(&FnItem) -> bool,
) -> Vec<Option<Provenance>> {
    let mut state: Vec<Option<Provenance>> = vec![None; ix.fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for (i, f) in ix.fns.iter().enumerate() {
        if is_root(f) && !is_barrier(ix, f) {
            state[i] = Some(Provenance::Root);
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        for c in &calls[i] {
            if state[c.callee].is_none() && !is_barrier(ix, &ix.fns[c.callee]) {
                state[c.callee] = Some(Provenance::Via(i));
                queue.push(c.callee);
            }
        }
    }
    state
}

/// Scans `tokens[start..end]` (a function body) for call sites and
/// resolves each by name against the index. `owner` is the enclosing
/// impl's self type, used to resolve `Self::` paths.
fn resolve_calls(
    ix: &ItemIndex,
    tf: &TokenFile,
    start: usize,
    end: usize,
    owner: Option<&str>,
) -> Vec<Call> {
    let toks = &tf.tokens;
    let mut out = Vec::new();
    // Code-token positions restricted to the body.
    let code: Vec<usize> = tf
        .code
        .iter()
        .copied()
        .filter(|&ti| ti >= start && ti < end)
        .collect();
    // Raw-token bound below which call sites are ignored: set past the
    // closing delimiter of a `debug_assert*!(…)` group, because those
    // groups are compiled out of the release builds the hot-path
    // proofs measure.
    let mut skip_until: usize = 0;
    for (p, &ti) in code.iter().enumerate() {
        if ti < skip_until {
            continue;
        }
        let t = &toks[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // A call is `name (`; `name !` is a macro, `fn name` a nested
        // definition.
        let next = code.get(p + 1).map(|&n| toks[n].text.as_str());
        if t.text.starts_with("debug_assert") && next == Some("!") {
            if let Some(close) = code.get(p + 2).and_then(|&open| tf.match_of(open)) {
                skip_until = close;
            }
            continue;
        }
        if next != Some("(") {
            continue;
        }
        let prev = p.checked_sub(1).map(|q| toks[code[q]].text.as_str());
        if prev == Some("fn") {
            continue;
        }
        // `.len(…)` and friends: std container/iterator workhorses —
        // resolving them by name would alias half the workspace.
        if prev == Some(".") && STD_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // `Qualifier::name(` — the qualifier decides the resolution
        // scope (see below).
        let qualified = p >= 3
            && toks[code[p - 1]].text == ":"
            && toks[code[p - 2]].text == ":"
            && toks[code[p - 3]].kind == TokenKind::Ident;
        let qualifier = qualified.then(|| toks[code[p - 3]].text.as_str());
        let Some(cands) = ix.by_name.get(&t.text) else {
            continue;
        };
        let targets: Vec<usize> = match qualifier {
            Some(q) => {
                let q = if q == "Self" { owner.unwrap_or(q) } else { q };
                if ix.impls.iter().any(|im| im.ty == q) || ix.traits.iter().any(|t| t.name == q) {
                    // Known workspace type: only its own methods. An
                    // empty result means a derived/blanket method —
                    // external, no edge.
                    cands
                        .iter()
                        .copied()
                        .filter(|&fi| ix.fns[fi].owner.as_deref() == Some(q))
                        .collect()
                } else if q.starts_with(|c: char| c.is_ascii_lowercase() || c == '_') {
                    // Module or crate path segment (`crate::util::f`,
                    // `lbq_core::g`): any same-named workspace fn.
                    cands.clone()
                } else {
                    // External type (`Vec::new`, `AtomicU64::new`,
                    // `Instant::now`): not a workspace call.
                    Vec::new()
                }
            }
            // Bare calls and `.method(` calls: every candidate.
            None => cands.clone(),
        };
        for callee in targets {
            out.push(Call {
                callee,
                tok: ti,
                line: t.line,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn build(srcs: &[(&str, &str)]) -> (ItemIndex, Vec<crate::parse::TokenFile>) {
        let mut ix = ItemIndex::default();
        let mut files = Vec::new();
        for (path, src) in srcs {
            let tf = parse(src).expect("fixture parses");
            ix.add_file(path, &tf);
            files.push(tf);
        }
        (ix, files)
    }

    fn graph(srcs: &[(&str, &str)]) -> (ItemIndex, CallGraph) {
        let (ix, files) = build(srcs);
        let refs: Vec<&crate::parse::TokenFile> = files.iter().collect();
        let cg = CallGraph::build(&ix, &refs);
        (ix, cg)
    }

    fn fn_idx(ix: &ItemIndex, name: &str) -> usize {
        ix.by_name[name][0]
    }

    #[test]
    fn direct_and_method_calls_resolve() {
        let (ix, cg) = graph(&[(
            "crates/core/src/x.rs",
            "fn a() { b(); }\nfn b() { }\nimpl S { fn m(&self) { a(); } }\n\
             fn c(s: &S) { s.m(); }",
        )]);
        let a = fn_idx(&ix, "a");
        let c = fn_idx(&ix, "c");
        assert_eq!(cg.calls[a].len(), 1);
        assert_eq!(ix.fns[cg.calls[a][0].callee].name, "b");
        assert_eq!(ix.fns[cg.calls[c][0].callee].name, "m");
    }

    #[test]
    fn qualified_calls_restrict_to_the_impl() {
        let (ix, cg) = graph(&[(
            "crates/core/src/x.rs",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\n\
             fn f() { A::go(); }\nfn g(x: &A) { x.go(); }",
        )]);
        let f = fn_idx(&ix, "f");
        let g = fn_idx(&ix, "g");
        assert_eq!(cg.calls[f].len(), 1, "A::go resolves to A's impl only");
        assert_eq!(ix.fns[cg.calls[f][0].callee].owner.as_deref(), Some("A"));
        assert_eq!(cg.calls[g].len(), 2, "method call keeps both candidates");
    }

    #[test]
    fn hot_propagates_from_in_roots_and_annotations() {
        let (ix, cg) = graph(&[
            (
                "crates/rtree/src/x.rs",
                "pub fn knn_in(s: &mut S) { core_loop(s); }\n\
                 fn core_loop(s: &mut S) { helper(); }\nfn helper() {}\nfn unrelated() {}",
            ),
            (
                "crates/serve/src/y.rs",
                "// lbq-check: hot — worker loop\nfn worker_loop() { helper(); }",
            ),
        ]);
        assert_eq!(cg.hot[fn_idx(&ix, "knn_in")], Some(Provenance::Root));
        assert!(cg.hot[fn_idx(&ix, "core_loop")].is_some());
        assert!(cg.hot[fn_idx(&ix, "helper")].is_some());
        assert!(cg.hot[fn_idx(&ix, "unrelated")].is_none());
        assert_eq!(cg.hot[fn_idx(&ix, "worker_loop")], Some(Provenance::Root));
        let chain = cg.chain(&ix, &cg.hot, fn_idx(&ix, "helper"));
        assert!(
            chain.ends_with("→ helper"),
            "chain shows provenance: {chain}"
        );
    }

    #[test]
    fn in_roots_require_rtree_lib_code() {
        let (ix, cg) = graph(&[
            ("crates/bench/src/x.rs", "pub fn run_in() { }"),
            ("crates/rtree/tests/t.rs", "pub fn probe_in() { }"),
            ("crates/core/src/x.rs", "pub fn build_response_in() { }"),
        ]);
        assert!(cg.hot[fn_idx(&ix, "run_in")].is_none(), "bench crate");
        assert!(cg.hot[fn_idx(&ix, "probe_in")].is_none(), "test file");
        assert!(
            cg.hot[fn_idx(&ix, "build_response_in")].is_none(),
            "core response builders allocate by design; they opt in via annotation"
        );
    }

    #[test]
    fn std_method_names_do_not_alias_workspace_fns() {
        let (ix, cg) = graph(&[(
            "crates/rtree/src/x.rs",
            "impl T { fn insert(&mut self) {} fn len(&self) -> usize { 0 } }\n\
             pub fn q_in(m: &mut M) { m.insert(1, 2); let _n = m.len(); T::insert(t); }",
        )]);
        let q = fn_idx(&ix, "q_in");
        let callees: Vec<&str> = cg.calls[q]
            .iter()
            .map(|c| ix.fns[c.callee].name.as_str())
            .collect();
        assert_eq!(
            callees,
            ["insert"],
            "dot-calls on std names skip resolution; qualified calls still resolve"
        );
        assert!(cg.hot[fn_idx(&ix, "len")].is_none());
    }

    #[test]
    fn cold_and_obs_are_barriers() {
        let (ix, cg) = graph(&[
            (
                "crates/rtree/src/x.rs",
                "pub fn q_in() { mutate(); span(); }\n\
                 // lbq-check: cold — mutation path\nfn mutate() { deep(); }\nfn deep() {}",
            ),
            (
                "crates/obs/src/t.rs",
                "pub fn span() { alloc_here(); }\nfn alloc_here() {}",
            ),
        ]);
        assert!(cg.hot[fn_idx(&ix, "mutate")].is_none(), "cold annotation");
        assert!(cg.hot[fn_idx(&ix, "deep")].is_none(), "behind the barrier");
        assert!(cg.hot[fn_idx(&ix, "span")].is_none(), "obs boundary");
        assert!(cg.hot[fn_idx(&ix, "alloc_here")].is_none());
    }

    #[test]
    fn no_panic_propagates_from_annotations_only() {
        let (ix, cg) = graph(&[(
            "crates/serve/src/x.rs",
            "// lbq-check: no-panic — drop path must not unwind\n\
             fn shutdown() { flush(); }\nfn flush() {}\npub fn other_in() {}",
        )]);
        assert!(cg.no_panic[fn_idx(&ix, "shutdown")].is_some());
        assert!(cg.no_panic[fn_idx(&ix, "flush")].is_some());
        assert!(
            cg.no_panic[fn_idx(&ix, "other_in")].is_none(),
            "_in naming seeds hot, not no-panic"
        );
    }

    #[test]
    fn external_types_do_not_alias_workspace_fns() {
        let (ix, cg) = graph(&[(
            "crates/core/src/x.rs",
            "impl S { fn new() -> S { S } }\n\
             fn f() { let _v: Vec<u8> = Vec::new(); let _a = AtomicU64::new(0); }\n\
             fn g() -> S { Self_less(); S::new() }\nfn Self_less() {}",
        )]);
        assert!(
            cg.calls[fn_idx(&ix, "f")].is_empty(),
            "Vec::new / AtomicU64::new are external"
        );
        let g = fn_idx(&ix, "g");
        let callees: Vec<&str> = cg.calls[g]
            .iter()
            .map(|c| ix.fns[c.callee].name.as_str())
            .collect();
        assert!(callees.contains(&"new"), "S::new resolves");
    }

    #[test]
    fn self_paths_resolve_to_the_enclosing_impl() {
        let (ix, cg) = graph(&[(
            "crates/core/src/x.rs",
            "impl A { fn new() -> A { A } fn fresh() -> A { Self::new() } }\n\
             impl B { fn new() -> B { B } }\n\
             fn crate_path() { crate::nn::helper(); }\nfn helper() {}",
        )]);
        let fresh = fn_idx(&ix, "fresh");
        assert_eq!(cg.calls[fresh].len(), 1);
        assert_eq!(
            ix.fns[cg.calls[fresh][0].callee].owner.as_deref(),
            Some("A")
        );
        let cp = fn_idx(&ix, "crate_path");
        assert_eq!(
            ix.fns[cg.calls[cp][0].callee].name, "helper",
            "module paths resolve by name"
        );
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let (ix, cg) = graph(&[(
            "crates/core/src/x.rs",
            "fn target() {}\nfn f() { target!(); }\nfn g() { target(); }",
        )]);
        assert!(cg.calls[fn_idx(&ix, "f")].is_empty());
        assert_eq!(cg.calls[fn_idx(&ix, "g")].len(), 1);
    }
}
