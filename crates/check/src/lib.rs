//! # lbq-check — workspace-specific static analysis
//!
//! A zero-dependency lint pass for this workspace, run as
//! `cargo run -p lbq-check` (wired into `ci.sh`). It lexes every `.rs`
//! file with a hand-rolled scanner ([`lexer`]) and enforces six rules
//! ([`rules`]) that `rustc`/`clippy` cannot express project-wide:
//! floating-point comparison hygiene, centralized epsilons, panic-free
//! library code, checked id/index casts in the R-tree arena, doc
//! coverage of the public geometry/server API, and kebab-case
//! `lbq_obs` span/metric names.
//!
//! Exit status is non-zero when any diagnostic survives the allowlist
//! (`// lbq-check: allow(<rule>)` on the offending line or the line
//! above). See DESIGN.md §Correctness tooling.

pub mod lexer;
pub mod rules;

pub use rules::{check_source, Diagnostic};

use std::path::{Path, PathBuf};

/// Recursively collects every `.rs` file under `root`, skipping
/// `target/` and hidden directories. Paths come back sorted and
/// workspace-relative with `/` separators.
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs every rule over every `.rs` file under `root` and returns the
/// surviving diagnostics, sorted by file and line.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for path in workspace_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        out.extend(check_source(&rel, &src));
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        check_source(path, src)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    const LIB: &str = "crates/core/src/x.rs";

    // ---------------------------------------------------- float-eq

    #[test]
    fn float_eq_hits_literal_comparisons() {
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { a == 0.5 }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { 1e-3 != a }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { a == -1.0 }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { a == f64::INFINITY }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { f64::NAN == a }"),
            ["float-eq"]
        );
    }

    #[test]
    fn float_eq_ignores_integers_and_the_approved_module() {
        assert!(rules_hit(LIB, "fn f(a: u64) -> bool { a == 5 }").is_empty());
        assert!(rules_hit(LIB, "fn f(a: u64) -> bool { a != 0x1e }").is_empty());
        assert!(rules_hit(
            rules::APPROVED_EPS_MODULE,
            "fn approx_eq(a: f64, b: f64) -> bool { a == b || (a - b).abs() < 1e-9 }"
        )
        .is_empty());
        // Comparison text inside strings and comments is inert.
        assert!(rules_hit(LIB, "// a == 1.0\nfn f() -> &'static str { \"x == 2.5\" }").is_empty());
    }

    // ------------------------------------------------ local-epsilon

    #[test]
    fn local_epsilon_hits_the_magic_range() {
        assert_eq!(rules_hit(LIB, "const E: f64 = 1e-9;"), ["local-epsilon"]);
        assert_eq!(
            rules_hit(LIB, "const E: f64 = 0.000001;"),
            ["local-epsilon"]
        );
        assert_eq!(rules_hit(LIB, "const E: f64 = 2.5e-7;"), ["local-epsilon"]);
    }

    #[test]
    fn local_epsilon_misses_out_of_range_and_test_code() {
        assert!(rules_hit(LIB, "const E: f64 = 1e-3;").is_empty());
        assert!(rules_hit(LIB, "const E: f64 = 1e-13;").is_empty());
        assert!(rules_hit(rules::APPROVED_EPS_MODULE, "pub const EPS: f64 = 1e-9;").is_empty());
        assert!(rules_hit("crates/core/tests/t.rs", "const E: f64 = 1e-9;").is_empty());
        assert!(rules_hit(LIB, "#[cfg(test)]\nmod tests { const E: f64 = 1e-9; }").is_empty());
    }

    // ----------------------------------------------- no-unwrap-core

    #[test]
    fn no_unwrap_hits_library_code() {
        assert_eq!(
            rules_hit(LIB, "fn f(x: Option<u8>) { x.unwrap(); }"),
            ["no-unwrap-core"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(x: Option<u8>) { x.expect(\"set\"); }"),
            ["no-unwrap-core"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { panic!(\"boom\"); }"),
            ["no-unwrap-core"]
        );
    }

    #[test]
    fn no_unwrap_misses_tests_other_crates_and_lookalikes() {
        assert!(rules_hit(
            "crates/core/tests/t.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }"
        )
        .is_empty());
        assert!(rules_hit("crates/core/benches/b.rs", "fn f() { panic!(); }").is_empty());
        assert!(rules_hit(
            "crates/data/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }"
        )
        .is_empty());
        assert!(rules_hit(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }").is_empty());
        assert!(rules_hit(
            LIB,
            "fn f(x: Option<u8>) { let _ = x.unwrap_or_default(); }"
        )
        .is_empty());
        assert!(rules_hit(
            LIB,
            "fn f(x: Option<u8>) { #[cfg(test)] mod t { fn g(x: Option<u8>) { x.unwrap(); } } }"
        )
        .is_empty());
    }

    // --------------------------------------------------- lossy-cast

    #[test]
    fn lossy_cast_hits_narrowing_in_rtree() {
        const RT: &str = "crates/rtree/src/tree.rs";
        assert_eq!(
            rules_hit(RT, "fn f(n: u64) -> u32 { n as u32 }"),
            ["lossy-cast"]
        );
        assert_eq!(
            rules_hit(RT, "fn f(n: u64) -> usize { n as usize }"),
            ["lossy-cast"]
        );
        assert_eq!(
            rules_hit(RT, "fn f(n: usize) -> NodeId { n as NodeId }"),
            ["lossy-cast"]
        );
    }

    #[test]
    fn lossy_cast_misses_widening_and_other_crates() {
        const RT: &str = "crates/rtree/src/tree.rs";
        assert!(rules_hit(RT, "fn f(n: u32) -> u64 { n as u64 }").is_empty());
        assert!(rules_hit(RT, "fn f(n: u32) -> f64 { n as f64 }").is_empty());
        assert!(rules_hit(RT, "use std::fmt as f;").is_empty());
        assert!(rules_hit(LIB, "fn f(n: u64) -> u32 { n as u32 }").is_empty());
    }

    // ------------------------------------------------------ pub-doc

    #[test]
    fn pub_doc_hits_undocumented_items() {
        assert_eq!(rules_hit(LIB, "pub fn f() {}"), ["pub-doc"]);
        assert_eq!(rules_hit(LIB, "pub struct S;"), ["pub-doc"]);
        assert_eq!(
            rules_hit(LIB, "#[derive(Debug)]\npub struct S;"),
            ["pub-doc"]
        );
    }

    #[test]
    fn pub_doc_accepts_documented_and_restricted_items() {
        assert!(rules_hit(LIB, "/// Does f.\npub fn f() {}").is_empty());
        assert!(rules_hit(LIB, "/// S.\n#[derive(Debug)]\npub struct S;").is_empty());
        assert!(rules_hit(LIB, "/** S */\npub struct S;").is_empty());
        assert!(rules_hit(LIB, "pub(crate) fn f() {}").is_empty());
        assert!(rules_hit(LIB, "fn f() {}").is_empty());
        // Only fn/struct are covered.
        assert!(rules_hit(LIB, "pub mod m {}\npub use m as n;").is_empty());
        // Outside the doc-mandatory crates (bench is the only exempt lib).
        assert!(rules_hit("crates/bench/src/lib.rs", "pub fn f() {}").is_empty());
        // Doc comment above an attribute still counts.
        assert!(rules_hit(LIB, "/// Doc.\n#[inline]\npub const fn f() -> u8 { 0 }").is_empty());
    }

    // ------------------------------------------------ obs-span-name

    #[test]
    fn obs_span_name_hits_bad_names() {
        assert_eq!(
            rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"BadName\"); }"),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"ends-\"); }"),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"double--dash\"); }"),
            ["obs-span-name"]
        );
        // Dynamic names defeat grep; the rule demands a literal.
        assert_eq!(
            rules_hit(
                LIB,
                "fn f(n: &'static str) { let _c = lbq_obs::counter(n); }"
            ),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { lbq_obs::event(concat!(\"a\", \"b\")); }"),
            ["obs-span-name"]
        );
    }

    #[test]
    fn obs_span_name_accepts_kebab_literals_and_exempts_obs() {
        assert!(rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"rtree-knn\"); }").is_empty());
        assert!(rules_hit(
            LIB,
            "fn f() { let _c = lbq_obs::counter(\"cache-hits2\"); }"
        )
        .is_empty());
        assert!(rules_hit(
            LIB,
            "fn f() { lbq_obs::event_with(\"tpnn-iteration\", []); }"
        )
        .is_empty());
        // `use lbq_obs as obs` call sites are covered too.
        assert_eq!(
            rules_hit(LIB, "fn f() { let _g = obs::gauge(\"Nope\"); }"),
            ["obs-span-name"]
        );
        // Unrelated paths/functions don't trip the rule.
        assert!(rules_hit(LIB, "fn f() { let _s = tracing::span(\"Whatever\"); }").is_empty());
        assert!(rules_hit(LIB, "fn f() { let _ = lbq_obs::enabled(); }").is_empty());
        // The obs crate itself is exempt (its tests use throwaway names).
        assert!(rules_hit(
            "crates/obs/src/trace.rs",
            "fn f() { let _s = lbq_obs::span(\"NotKebab\"); }"
        )
        .is_empty());
        // Allow comment escape hatch.
        assert!(rules_hit(
            LIB,
            "fn f(n: &'static str) { // lbq-check: allow(obs-span-name)\n    let _c = lbq_obs::counter(n); }"
        )
        .is_empty());
    }

    // ---------------------------------------------------- allowlist

    #[test]
    fn allow_comment_suppresses_same_line_and_line_above() {
        let same = "fn f(x: Option<u8>) { x.unwrap(); } // lbq-check: allow(no-unwrap-core)";
        assert!(rules_hit(LIB, same).is_empty());
        let above = "// lbq-check: allow(no-unwrap-core) — invariant: filled above\n\
                     fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(rules_hit(LIB, above).is_empty());
    }

    #[test]
    fn allow_comment_is_rule_specific_and_local() {
        let wrong_rule = "fn f(x: Option<u8>) { x.unwrap(); } // lbq-check: allow(float-eq)";
        assert_eq!(rules_hit(LIB, wrong_rule), ["no-unwrap-core"]);
        let too_far = "// lbq-check: allow(no-unwrap-core)\n\n\
                       fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(rules_hit(LIB, too_far), ["no-unwrap-core"]);
    }

    #[test]
    fn allow_comment_supports_lists() {
        let src = "// lbq-check: allow(local-epsilon, float-eq)\n\
                   fn f(a: f64) -> bool { a == 1e-9 }";
        assert!(rules_hit(LIB, src).is_empty());
    }

    // -------------------------------------------------- diagnostics

    #[test]
    fn diagnostics_carry_file_and_line() {
        let d = check_source(LIB, "fn a() {}\nfn b(x: Option<u8>) { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, LIB);
        assert_eq!(d[0].line, 2);
        assert_eq!(
            format!("{}", d[0]),
            format!("{LIB}:2: [no-unwrap-core] {}", d[0].message)
        );
    }

    #[test]
    fn file_walker_finds_this_file() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = workspace_rs_files(root).expect("walk");
        assert!(files.iter().any(|p| p.ends_with("src/lib.rs")));
        assert!(files.iter().any(|p| p.ends_with("src/lexer.rs")));
    }
}
