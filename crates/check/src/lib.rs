//! # lbq-check — workspace-specific static analysis
//!
//! A zero-dependency analyzer for this workspace, run as
//! `cargo run -p lbq-check` (wired into `ci.sh`). Three stages:
//!
//! 1. **Parse** ([`lexer`], [`parse`]): a hand-rolled scanner plus
//!    brace matching turns each `.rs` file into a [`parse::TokenFile`].
//!    Files are scanned in parallel by a hand-rolled worker pool (the
//!    same Mutex-queue pattern `lbq-serve` uses).
//! 2. **Index** ([`items`], [`callgraph`]): fns, impls, traits, statics
//!    and atomic fields across all crates feed a conservative
//!    name-resolved call graph; `hot` and `no-panic` properties
//!    propagate transitively from the `_in` query entry points and
//!    `// lbq-check: hot` annotations.
//! 3. **Rules** ([`rules`], [`interproc`]): seven per-file rules
//!    (floating-point hygiene, centralized epsilons, panic-free library
//!    code, checked casts, doc coverage, kebab-case obs names,
//!    reason-carrying allows) and four interprocedural rules
//!    (`hot-alloc`, `hot-panic`, `atomic-ordering`,
//!    `guard-across-call`) over the call graph.
//!
//! Findings can be rendered as text or JSON ([`json`]) and diffed
//! against a committed baseline. Exit status: 0 clean, 1 findings,
//! 2 parse/IO error. See DESIGN.md §13 "Analyzer architecture".

pub mod callgraph;
pub mod interproc;
pub mod items;
pub mod json;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use rules::{check_source, Diagnostic, RULE_NAMES};

use items::ItemIndex;
use parse::{ParseError, TokenFile};
use rules::Allows;
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Why a workspace check could not run to completion (exit code 2).
#[derive(Debug)]
pub enum CheckError {
    /// A file or directory could not be read.
    Io {
        /// Path being read when the error occurred.
        file: String,
        /// Underlying IO error.
        source: std::io::Error,
    },
    /// A file could not be brace-matched — the analyzer, not the code,
    /// is confused (the workspace compiles), so findings would be bogus.
    Parse {
        /// Workspace-relative path of the unparseable file.
        file: String,
        /// What went wrong, with line information.
        error: ParseError,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io { file, source } => write!(f, "io error on {file}: {source}"),
            CheckError::Parse { file, error } => write!(f, "parse error in {file}: {error}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// Everything stage 1 extracts from one file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Lexed and brace-matched tokens.
    pub tf: TokenFile,
    /// The file's allow directives.
    pub allows: Allows,
    /// Per-file findings, **unfiltered** by the allowlist.
    pub diags: Vec<Diagnostic>,
}

/// Recursively collects every `.rs` file under `root`, skipping
/// `target/`, hidden directories, and `fixtures/` trees (the rule
/// fixture corpus under `crates/check/tests/fixtures` is deliberately
/// rule-violating). Paths come back sorted and workspace-relative with
/// `/` separators.
pub fn workspace_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != "fixtures" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lexes, parses, and runs the per-file rules over one file.
pub fn analyze_source(path: &str, src: &str) -> Result<FileAnalysis, ParseError> {
    let tf = parse::parse(src)?;
    let allows = Allows::collect(&tf.tokens);
    let diags = rules::per_file(path, &tf.tokens, &allows);
    Ok(FileAnalysis {
        path: path.to_string(),
        tf,
        allows,
        diags,
    })
}

/// Stage 1 over a file list: parallel read + lex + parse + per-file
/// rules. Worker count follows available parallelism (capped at 8 —
/// the scan is IO-light and short). Results come back sorted by path
/// regardless of completion order.
fn scan_files(root: &Path, paths: &[PathBuf]) -> Result<Vec<FileAnalysis>, CheckError> {
    let queue: Mutex<VecDeque<&PathBuf>> = Mutex::new(paths.iter().collect());
    let results: Mutex<Vec<FileAnalysis>> = Mutex::new(Vec::with_capacity(paths.len()));
    let failure: Mutex<Option<CheckError>> = Mutex::new(None);
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8)
        .min(paths.len())
        .max(1);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let Ok(mut q) = queue.lock() else { return };
                let Some(path) = q.pop_front() else { return };
                drop(q);
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(path)
                    .to_string_lossy()
                    .replace('\\', "/");
                let outcome = match std::fs::read_to_string(path) {
                    Err(e) => Err(CheckError::Io {
                        file: rel,
                        source: e,
                    }),
                    Ok(src) => analyze_source(&rel, &src)
                        .map_err(|error| CheckError::Parse { file: rel, error }),
                };
                match outcome {
                    Ok(a) => {
                        if let Ok(mut r) = results.lock() {
                            r.push(a);
                        }
                    }
                    Err(e) => {
                        if let Ok(mut f) = failure.lock() {
                            f.get_or_insert(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap_or(None) {
        return Err(e);
    }
    let mut out = results.into_inner().unwrap_or_default();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Runs the full three-stage analysis over every `.rs` file under
/// `root` and returns the surviving diagnostics, sorted by file, line,
/// and rule.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, CheckError> {
    let paths = workspace_rs_files(root).map_err(|source| CheckError::Io {
        file: root.display().to_string(),
        source,
    })?;
    let analyses = scan_files(root, &paths)?;

    // Stage 2: item index + call graph (sequential; file order is the
    // sorted path order, so indices are deterministic).
    let mut ix = ItemIndex::default();
    for a in &analyses {
        ix.add_file(&a.path, &a.tf);
    }
    let tfs: Vec<&TokenFile> = analyses.iter().map(|a| &a.tf).collect();
    let cg = callgraph::CallGraph::build(&ix, &tfs);

    // Stage 3: per-file findings + interprocedural findings, one shared
    // allow filter.
    let mut out: Vec<Diagnostic> = analyses.iter().flat_map(|a| a.diags.clone()).collect();
    out.extend(interproc::run(&ix, &cg, &tfs));
    let allows: HashMap<&str, &Allows> = analyses
        .iter()
        .map(|a| (a.path.as_str(), &a.allows))
        .collect();
    out.retain(|d| {
        allows
            .get(d.file.as_str())
            .is_none_or(|al| !al.is_allowed(d.rule, d.line))
    });
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        check_source(path, src)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    const LIB: &str = "crates/core/src/x.rs";

    // ---------------------------------------------------- float-eq

    #[test]
    fn float_eq_hits_literal_comparisons() {
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { a == 0.5 }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { 1e-3 != a }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { a == -1.0 }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { a == f64::INFINITY }"),
            ["float-eq"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(a: f64) -> bool { f64::NAN == a }"),
            ["float-eq"]
        );
    }

    #[test]
    fn float_eq_ignores_integers_and_the_approved_module() {
        assert!(rules_hit(LIB, "fn f(a: u64) -> bool { a == 5 }").is_empty());
        assert!(rules_hit(LIB, "fn f(a: u64) -> bool { a != 0x1e }").is_empty());
        assert!(rules_hit(
            rules::APPROVED_EPS_MODULE,
            "fn approx_eq(a: f64, b: f64) -> bool { a == b || (a - b).abs() < 1e-9 }"
        )
        .is_empty());
        // Comparison text inside strings and comments is inert.
        assert!(rules_hit(LIB, "// a == 1.0\nfn f() -> &'static str { \"x == 2.5\" }").is_empty());
    }

    // ------------------------------------------------ local-epsilon

    #[test]
    fn local_epsilon_hits_the_magic_range() {
        assert_eq!(rules_hit(LIB, "const E: f64 = 1e-9;"), ["local-epsilon"]);
        assert_eq!(
            rules_hit(LIB, "const E: f64 = 0.000001;"),
            ["local-epsilon"]
        );
        assert_eq!(rules_hit(LIB, "const E: f64 = 2.5e-7;"), ["local-epsilon"]);
    }

    #[test]
    fn local_epsilon_misses_out_of_range_and_test_code() {
        assert!(rules_hit(LIB, "const E: f64 = 1e-3;").is_empty());
        assert!(rules_hit(LIB, "const E: f64 = 1e-13;").is_empty());
        assert!(rules_hit(rules::APPROVED_EPS_MODULE, "pub const EPS: f64 = 1e-9;").is_empty());
        assert!(rules_hit("crates/core/tests/t.rs", "const E: f64 = 1e-9;").is_empty());
        assert!(rules_hit(LIB, "#[cfg(test)]\nmod tests { const E: f64 = 1e-9; }").is_empty());
    }

    // ----------------------------------------------- no-unwrap-core

    #[test]
    fn no_unwrap_hits_library_code() {
        assert_eq!(
            rules_hit(LIB, "fn f(x: Option<u8>) { x.unwrap(); }"),
            ["no-unwrap-core"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f(x: Option<u8>) { x.expect(\"set\"); }"),
            ["no-unwrap-core"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { panic!(\"boom\"); }"),
            ["no-unwrap-core"]
        );
    }

    #[test]
    fn no_unwrap_misses_tests_other_crates_and_lookalikes() {
        assert!(rules_hit(
            "crates/core/tests/t.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }"
        )
        .is_empty());
        assert!(rules_hit("crates/core/benches/b.rs", "fn f() { panic!(); }").is_empty());
        assert!(rules_hit(
            "crates/data/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }"
        )
        .is_empty());
        assert!(rules_hit(LIB, "fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }").is_empty());
        assert!(rules_hit(
            LIB,
            "fn f(x: Option<u8>) { let _ = x.unwrap_or_default(); }"
        )
        .is_empty());
        assert!(rules_hit(
            LIB,
            "fn f(x: Option<u8>) { #[cfg(test)] mod t { fn g(x: Option<u8>) { x.unwrap(); } } }"
        )
        .is_empty());
    }

    // --------------------------------------------------- lossy-cast

    #[test]
    fn lossy_cast_hits_narrowing_in_rtree() {
        const RT: &str = "crates/rtree/src/tree.rs";
        assert_eq!(
            rules_hit(RT, "fn f(n: u64) -> u32 { n as u32 }"),
            ["lossy-cast"]
        );
        assert_eq!(
            rules_hit(RT, "fn f(n: u64) -> usize { n as usize }"),
            ["lossy-cast"]
        );
        assert_eq!(
            rules_hit(RT, "fn f(n: usize) -> NodeId { n as NodeId }"),
            ["lossy-cast"]
        );
    }

    #[test]
    fn lossy_cast_misses_widening_and_other_crates() {
        const RT: &str = "crates/rtree/src/tree.rs";
        assert!(rules_hit(RT, "fn f(n: u32) -> u64 { n as u64 }").is_empty());
        assert!(rules_hit(RT, "fn f(n: u32) -> f64 { n as f64 }").is_empty());
        assert!(rules_hit(RT, "use std::fmt as f;").is_empty());
        assert!(rules_hit(LIB, "fn f(n: u64) -> u32 { n as u32 }").is_empty());
    }

    // ------------------------------------------------------ pub-doc

    #[test]
    fn pub_doc_hits_undocumented_items() {
        assert_eq!(rules_hit(LIB, "pub fn f() {}"), ["pub-doc"]);
        assert_eq!(rules_hit(LIB, "pub struct S;"), ["pub-doc"]);
        assert_eq!(
            rules_hit(LIB, "#[derive(Debug)]\npub struct S;"),
            ["pub-doc"]
        );
    }

    #[test]
    fn pub_doc_accepts_documented_and_restricted_items() {
        assert!(rules_hit(LIB, "/// Does f.\npub fn f() {}").is_empty());
        assert!(rules_hit(LIB, "/// S.\n#[derive(Debug)]\npub struct S;").is_empty());
        assert!(rules_hit(LIB, "/** S */\npub struct S;").is_empty());
        assert!(rules_hit(LIB, "pub(crate) fn f() {}").is_empty());
        assert!(rules_hit(LIB, "fn f() {}").is_empty());
        // Only fn/struct are covered.
        assert!(rules_hit(LIB, "pub mod m {}\npub use m as n;").is_empty());
        // Outside the doc-mandatory crates (bench is the only exempt lib).
        assert!(rules_hit("crates/bench/src/lib.rs", "pub fn f() {}").is_empty());
        // Doc comment above an attribute still counts.
        assert!(rules_hit(LIB, "/// Doc.\n#[inline]\npub const fn f() -> u8 { 0 }").is_empty());
    }

    // ------------------------------------------------ obs-span-name

    #[test]
    fn obs_span_name_hits_bad_names() {
        assert_eq!(
            rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"BadName\"); }"),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"ends-\"); }"),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"double--dash\"); }"),
            ["obs-span-name"]
        );
        // Dynamic names defeat grep; the rule demands a literal.
        assert_eq!(
            rules_hit(
                LIB,
                "fn f(n: &'static str) { let _c = lbq_obs::counter(n); }"
            ),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(LIB, "fn f() { lbq_obs::event(concat!(\"a\", \"b\")); }"),
            ["obs-span-name"]
        );
        // The v2 observability registries are named the same way.
        assert_eq!(
            rules_hit(LIB, "fn f() { let _h = lbq_obs::heatmap(\"HotTiles\"); }"),
            ["obs-span-name"]
        );
        assert_eq!(
            rules_hit(
                LIB,
                "fn f(k: &'static str) { lbq_obs::snapshot_field(k, 1u64); }"
            ),
            ["obs-span-name"]
        );
    }

    #[test]
    fn obs_span_name_accepts_kebab_literals_and_exempts_obs() {
        assert!(rules_hit(LIB, "fn f() { let _s = lbq_obs::span(\"rtree-knn\"); }").is_empty());
        assert!(rules_hit(
            LIB,
            "fn f() { let _c = lbq_obs::counter(\"cache-hits2\"); }"
        )
        .is_empty());
        assert!(rules_hit(
            LIB,
            "fn f() { lbq_obs::event_with(\"tpnn-iteration\", []); }"
        )
        .is_empty());
        assert!(rules_hit(
            LIB,
            "fn f() { let _h = lbq_obs::heatmap(\"serve-tile-heat\"); }"
        )
        .is_empty());
        assert!(rules_hit(
            LIB,
            "fn f() { lbq_obs::snapshot_field(\"serve-config-workers\", 4u64); }"
        )
        .is_empty());
        // `use lbq_obs as obs` call sites are covered too.
        assert_eq!(
            rules_hit(LIB, "fn f() { let _g = obs::gauge(\"Nope\"); }"),
            ["obs-span-name"]
        );
        // Unrelated paths/functions don't trip the rule.
        assert!(rules_hit(LIB, "fn f() { let _s = tracing::span(\"Whatever\"); }").is_empty());
        assert!(rules_hit(LIB, "fn f() { let _ = lbq_obs::enabled(); }").is_empty());
        // The obs crate itself is exempt (its tests use throwaway names).
        assert!(rules_hit(
            "crates/obs/src/trace.rs",
            "fn f() { let _s = lbq_obs::span(\"NotKebab\"); }"
        )
        .is_empty());
        // Allow comment escape hatch.
        assert!(rules_hit(
            LIB,
            "fn f(n: &'static str) { // lbq-check: allow(obs-span-name, \"caller passes a literal\")\n    let _c = lbq_obs::counter(n); }"
        )
        .is_empty());
    }

    // ---------------------------------------------------- allowlist

    #[test]
    fn allow_comment_suppresses_same_line_and_line_above() {
        let same =
            "fn f(x: Option<u8>) { x.unwrap(); } // lbq-check: allow(no-unwrap-core, \"test double\")";
        assert!(rules_hit(LIB, same).is_empty());
        let above = "// lbq-check: allow(no-unwrap-core) — invariant: filled above\n\
                     fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(rules_hit(LIB, above).is_empty());
    }

    #[test]
    fn allow_comment_is_rule_specific_and_local() {
        let wrong_rule =
            "fn f(x: Option<u8>) { x.unwrap(); } // lbq-check: allow(float-eq, \"wrong rule\")";
        assert_eq!(rules_hit(LIB, wrong_rule), ["no-unwrap-core"]);
        let too_far = "// lbq-check: allow(no-unwrap-core) — too far away\n\n\
                       fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(rules_hit(LIB, too_far), ["no-unwrap-core"]);
    }

    #[test]
    fn allow_comment_supports_lists() {
        let src = "// lbq-check: allow(local-epsilon, float-eq, \"demonstration\")\n\
                   fn f(a: f64) -> bool { a == 1e-9 }";
        assert!(rules_hit(LIB, src).is_empty());
    }

    // -------------------------------------------------- allow-reason

    #[test]
    fn allow_without_reason_is_flagged() {
        let src = "// lbq-check: allow(no-unwrap-core)\n\
                   fn f(x: Option<u8>) { x.unwrap(); }";
        assert_eq!(rules_hit(LIB, src), ["allow-reason"]);
    }

    #[test]
    fn allow_reason_accepts_quoted_and_trailing_forms() {
        let quoted = "// lbq-check: allow(no-unwrap-core, \"invariant: filled by caller\")\n\
                      fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(rules_hit(LIB, quoted).is_empty());
        let trailing = "// lbq-check: allow(no-unwrap-core) — invariant: filled by caller\n\
                        fn f(x: Option<u8>) { x.unwrap(); }";
        assert!(rules_hit(LIB, trailing).is_empty());
    }

    // -------------------------------------------------- diagnostics

    #[test]
    fn diagnostics_carry_file_and_line() {
        let d = check_source(LIB, "fn a() {}\nfn b(x: Option<u8>) { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].file, LIB);
        assert_eq!(d[0].line, 2);
        assert_eq!(
            format!("{}", d[0]),
            format!("{LIB}:2: [no-unwrap-core] {}", d[0].message)
        );
    }

    #[test]
    fn file_walker_finds_this_file_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = workspace_rs_files(root).expect("walk");
        assert!(files.iter().any(|p| p.ends_with("src/lib.rs")));
        assert!(files.iter().any(|p| p.ends_with("src/lexer.rs")));
        assert!(
            !files
                .iter()
                .any(|p| p.components().any(|c| c.as_os_str() == "fixtures")),
            "fixture corpus must not be scanned as workspace source"
        );
    }

    #[test]
    fn analyze_source_reports_parse_errors() {
        let e = analyze_source(LIB, "fn f() {").expect_err("unbalanced");
        assert!(e.message.contains("unclosed"));
    }
}
