//! JSON findings output and the committed-baseline diff gate.
//!
//! `lbq-check --format json` renders findings as a stable, versioned
//! document; `--baseline <path>` loads a previously committed document
//! and subtracts its findings (multiset, keyed on rule+file+message so
//! line drift from unrelated edits does not invalidate the baseline)
//! before deciding the exit code. Both directions are hand-rolled —
//! the workspace is std-only, and the subset of JSON needed here
//! (strings, numbers, arrays, flat objects) is small.

use crate::rules::Diagnostic;
use std::collections::HashMap;

/// Schema version of the findings document.
pub const FORMAT_VERSION: u32 = 2;

/// Renders findings as the versioned JSON document, findings in their
/// sorted order, one finding per line for reviewable diffs.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"version\": {FORMAT_VERSION},\n"));
    s.push_str("  \"tool\": \"lbq-check\",\n");
    s.push_str("  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": {}, ", escape(d.rule)));
        s.push_str(&format!("\"file\": {}, ", escape(&d.file)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"message\": {}", escape(&d.message)));
        s.push('}');
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A finding loaded from a baseline document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineFinding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Parses a findings document produced by [`render`] (or hand-edited).
pub fn parse_findings(src: &str) -> Result<Vec<BaselineFinding>, String> {
    let v = Parser {
        b: src.as_bytes(),
        i: 0,
    }
    .document()?;
    let Value::Obj(top) = v else {
        return Err("baseline: top level is not an object".to_string());
    };
    let Some(Value::Arr(items)) = top.get("findings") else {
        return Err("baseline: missing \"findings\" array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Value::Obj(o) = item else {
            return Err(format!("baseline: finding #{i} is not an object"));
        };
        let get_str = |k: &str| -> Result<String, String> {
            match o.get(k) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(format!("baseline: finding #{i} missing string \"{k}\"")),
            }
        };
        let line = match o.get("line") {
            Some(Value::Num(n)) if *n >= 0.0 => *n as u32,
            _ => return Err(format!("baseline: finding #{i} missing number \"line\"")),
        };
        out.push(BaselineFinding {
            rule: get_str("rule")?,
            file: get_str("file")?,
            line,
            message: get_str("message")?,
        });
    }
    Ok(out)
}

/// Subtracts the baseline from `diags` as a multiset keyed on
/// (rule, file, message) — line numbers are ignored so that unrelated
/// edits shifting a baselined finding do not break the gate. Returns
/// the new findings and the count of stale baseline entries (present
/// in the baseline but no longer produced).
pub fn diff_against_baseline(
    diags: &[Diagnostic],
    baseline: &[BaselineFinding],
) -> (Vec<Diagnostic>, usize) {
    let mut budget: HashMap<(String, String, String), usize> = HashMap::new();
    for b in baseline {
        *budget
            .entry((b.rule.clone(), b.file.clone(), b.message.clone()))
            .or_insert(0) += 1;
    }
    let mut fresh = Vec::new();
    for d in diags {
        let key = (d.rule.to_string(), d.file.clone(), d.message.clone());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => fresh.push(d.clone()),
        }
    }
    let stale = budget.values().sum();
    (fresh, stale)
}

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser (strings, numbers, bools,
// null, arrays, objects). Sufficient for baseline documents.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(HashMap<String, Value>),
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn document(mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.ws();
        if self.i != self.b.len() {
            return Err(format!("trailing bytes at offset {}", self.i));
        }
        Ok(v)
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape `\\{}`", e as char)),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8
                    // multibyte sequences intact.
                    self.i -= 1;
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    self.i += ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut out = HashMap::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            let v = self.value()?;
            out.insert(key, v);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32, message: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn render_then_parse_round_trips() {
        let diags = vec![
            diag(
                "hot-alloc",
                "crates/rtree/src/nn.rs",
                10,
                "a \"quoted\"\nmessage",
            ),
            diag("float-eq", "crates/geom/src/lib.rs", 3, "x == y"),
        ];
        let doc = render(&diags);
        let parsed = parse_findings(&doc).expect("round trip");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].rule, "hot-alloc");
        assert_eq!(parsed[0].message, "a \"quoted\"\nmessage");
        assert_eq!(parsed[1].line, 3);
    }

    #[test]
    fn empty_findings_render_and_parse() {
        let doc = render(&[]);
        assert!(doc.contains("\"findings\": []"));
        assert!(parse_findings(&doc).expect("empty ok").is_empty());
    }

    #[test]
    fn baseline_subtraction_ignores_line_drift() {
        let current = vec![diag("float-eq", "a.rs", 99, "x == y")];
        let baseline = vec![BaselineFinding {
            rule: "float-eq".to_string(),
            file: "a.rs".to_string(),
            line: 10, // the finding moved, same content
            message: "x == y".to_string(),
        }];
        let (fresh, stale) = diff_against_baseline(&current, &baseline);
        assert!(fresh.is_empty());
        assert_eq!(stale, 0);
    }

    #[test]
    fn baseline_is_a_multiset_and_reports_stale_entries() {
        let current = vec![
            diag("float-eq", "a.rs", 1, "x == y"),
            diag("float-eq", "a.rs", 2, "x == y"),
        ];
        let one = BaselineFinding {
            rule: "float-eq".to_string(),
            file: "a.rs".to_string(),
            line: 1,
            message: "x == y".to_string(),
        };
        let (fresh, stale) = diff_against_baseline(&current, &[one.clone()]);
        assert_eq!(fresh.len(), 1, "second occurrence is fresh");
        assert_eq!(stale, 0);
        let gone = BaselineFinding {
            rule: "pub-doc".to_string(),
            file: "b.rs".to_string(),
            line: 5,
            message: "old".to_string(),
        };
        let (fresh, stale) = diff_against_baseline(&current, &[one.clone(), one, gone]);
        assert!(fresh.is_empty());
        assert_eq!(stale, 1, "fixed finding left in baseline is stale");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(
            parse_findings("[1, 2]").is_err(),
            "top level must be object"
        );
        assert!(parse_findings("{\"findings\": [{\"rule\": 3}]}").is_err());
        assert!(parse_findings("{\"findings\": []} trailing").is_err());
    }
}
