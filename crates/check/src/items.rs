//! Stage 2a of the analyzer: the whole-workspace item index.
//!
//! One linear walk over each file's brace-matched token stream
//! ([`crate::parse`]) collects every `fn` (with the token extent of its
//! body), `impl` block (so methods carry their self type), `trait`,
//! `static`, and atomic struct field across all crates. Each function
//! also carries its analyzer annotations, read from the comment block
//! directly above the item:
//!
//! ```text
//! // lbq-check: hot — serve worker loop, steady-state alloc-free
//! // lbq-check: cold — mutation path, exempt from hot propagation
//! // lbq-check: no-panic — must never unwind under a poisoned lock
//! ```
//!
//! `hot` and `no-panic` seed the transitive propagation in
//! [`crate::callgraph`]; `cold` stops it. The index is deliberately
//! name-based and conservative: it never resolves types, so downstream
//! passes over-approximate rather than miss.

use crate::parse::TokenFile;
use std::collections::HashMap;

/// Analyzer annotations attached to one function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Annotations {
    /// `// lbq-check: hot` — a root of the hot (steady-state
    /// allocation-free) call graph.
    pub hot: bool,
    /// `// lbq-check: cold` — never considered hot, and hot-ness does
    /// not propagate through this function into its callees.
    pub cold: bool,
    /// `// lbq-check: no-panic` — a root of the panic-free call graph.
    pub no_panic: bool,
}

/// One indexed function (free function, method, or trait method).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (last path segment only).
    pub name: String,
    /// Index into [`ItemIndex::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Self type of the enclosing `impl`/`trait`, if any.
    pub owner: Option<String>,
    /// Token-index range of the body *between* its braces
    /// (`tokens[range.0..range.1]`), `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
    /// Test code: test-only file, `#[cfg(test)]` region, or `#[test]`.
    pub is_test: bool,
    /// Annotations from the comment block above the item.
    pub ann: Annotations,
}

/// One indexed `static` item (including `thread_local!` interiors).
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Item name.
    pub name: String,
    /// Index into [`ItemIndex::files`].
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Flattened type text (no spaces), e.g. `AtomicU64`.
    pub ty: String,
}

/// One indexed `trait` definition.
#[derive(Debug, Clone)]
pub struct TraitItem {
    /// Trait name.
    pub name: String,
    /// Index into [`ItemIndex::files`].
    pub file: usize,
    /// 1-based line.
    pub line: u32,
}

/// One indexed `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Self type (last path segment, generics stripped).
    pub ty: String,
    /// Trait being implemented, if any.
    pub trait_name: Option<String>,
    /// Index into [`ItemIndex::files`].
    pub file: usize,
    /// 1-based line.
    pub line: u32,
}

/// A struct field whose type names an `Atomic*` — the nouns the
/// `atomic-ordering` rule keys its pairing table on.
#[derive(Debug, Clone)]
pub struct AtomicField {
    /// Field (or static) name.
    pub name: String,
    /// Index into [`ItemIndex::files`].
    pub file: usize,
    /// 1-based line.
    pub line: u32,
}

/// The whole-workspace item index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Workspace-relative file paths, `/`-separated.
    pub files: Vec<String>,
    /// Every indexed function, across all files.
    pub fns: Vec<FnItem>,
    /// Every `static` item.
    pub statics: Vec<StaticItem>,
    /// Every `trait` definition.
    pub traits: Vec<TraitItem>,
    /// Every `impl` block.
    pub impls: Vec<ImplItem>,
    /// Atomic-typed struct fields and statics.
    pub atomics: Vec<AtomicField>,
    /// Function name → indices into `fns` (conservative name-keyed
    /// resolution for the call graph).
    pub by_name: HashMap<String, Vec<usize>>,
}

impl ItemIndex {
    /// Registers `path` and indexes every item of `tf` under it.
    pub fn add_file(&mut self, path: &str, tf: &TokenFile) {
        let file = self.files.len();
        self.files.push(path.to_string());
        index_file(self, file, path, tf);
    }

    /// Crate name when `path` is library source (`crates/<c>/src/…`).
    pub fn lib_crate(path: &str) -> Option<&str> {
        let rest = path.strip_prefix("crates/")?;
        let (krate, rest) = rest.split_once('/')?;
        rest.starts_with("src/").then_some(krate)
    }

    /// True when `path` is test-shaped source (integration tests,
    /// benches, examples).
    pub fn is_test_path(path: &str) -> bool {
        path.starts_with("tests/")
            || path.contains("/tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
    }
}

/// What a currently-open brace group means to the item walk.
#[derive(Debug, Clone)]
enum Ctx {
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Owner(String),
    /// A `#[cfg(test)] mod … { … }` region.
    TestMod,
    /// Any other group.
    Other,
}

/// One frame: the token index of the group's closing brace plus its
/// meaning.
struct Frame {
    close: usize,
    ctx: Ctx,
}

fn index_file(ix: &mut ItemIndex, file: usize, path: &str, tf: &TokenFile) {
    let toks = &tf.tokens;
    let path_is_test = ItemIndex::is_test_path(path);
    let mut frames: Vec<Frame> = Vec::new();
    // Pending context discovered at an `impl`/`trait`/`cfg(test) mod`
    // header, applied when its `{` opens.
    let mut pending: Option<Ctx> = None;

    let mut c = 0usize; // position in tf.code
    while c < tf.code.len() {
        let ti = tf.code[c];
        while frames.last().is_some_and(|f| ti > f.close) {
            frames.pop();
        }
        let t = &toks[ti];
        match t.text.as_str() {
            "{" => {
                if let Some(close) = tf.match_of(ti) {
                    frames.push(Frame {
                        close,
                        ctx: pending.take().unwrap_or(Ctx::Other),
                    });
                }
                c += 1;
            }
            "impl" => {
                let (ctx, impl_item) = parse_impl_header(tf, c, file);
                if let Some(item) = impl_item {
                    ix.impls.push(item);
                }
                pending = ctx;
                c += 1;
            }
            "trait" => {
                if let Some(name) = next_ident(tf, c) {
                    ix.traits.push(TraitItem {
                        name: name.clone(),
                        file,
                        line: t.line,
                    });
                    pending = Some(Ctx::Owner(name));
                }
                c += 1;
            }
            "mod" => {
                // A test module makes everything inside test code.
                if has_test_attr(tf, ti) {
                    pending = Some(Ctx::TestMod);
                }
                c += 1;
            }
            "fn" => {
                let in_test_mod = frames.iter().any(|f| matches!(f.ctx, Ctx::TestMod));
                let owner = frames.iter().rev().find_map(|f| match &f.ctx {
                    Ctx::Owner(ty) => Some(ty.clone()),
                    _ => None,
                });
                let name = next_ident(tf, c).unwrap_or_default();
                let body = fn_body_range(tf, c);
                let item_start_ti = toks_idx_at(tf, item_start_token(tf, c));
                let ann = annotations_above(toks, item_start_ti);
                let is_test = path_is_test || in_test_mod || has_test_attr(tf, item_start_ti);
                ix.by_name
                    .entry(name.clone())
                    .or_default()
                    .push(ix.fns.len());
                ix.fns.push(FnItem {
                    name,
                    file,
                    line: t.line,
                    owner,
                    body,
                    is_test,
                    ann,
                });
                c += 1;
            }
            "static" => {
                if let Some((name, ty, line)) = parse_static(tf, c) {
                    if ty.contains("Atomic") {
                        ix.atomics.push(AtomicField {
                            name: name.clone(),
                            file,
                            line,
                        });
                    }
                    ix.statics.push(StaticItem {
                        name,
                        file,
                        line,
                        ty,
                    });
                }
                c += 1;
            }
            "struct" => {
                collect_atomic_fields(ix, tf, c, file);
                c += 1;
            }
            _ => c += 1,
        }
    }
}

/// The code-position's token index, saturating for synthetic positions.
fn toks_idx_at(tf: &TokenFile, code_pos: usize) -> usize {
    tf.code.get(code_pos).copied().unwrap_or(0)
}

/// The next code token's text after position `c`, if it is an
/// identifier.
fn next_ident(tf: &TokenFile, c: usize) -> Option<String> {
    let ti = *tf.code.get(c + 1)?;
    let t = &tf.tokens[ti];
    (t.kind == crate::lexer::TokenKind::Ident).then(|| t.text.clone())
}

/// Walks back from the `fn` keyword (code position `c`) over qualifiers
/// (`pub`, `pub(crate)`, `const`, `unsafe`, `async`, `extern "C"`) to
/// the code position where the item starts.
fn item_start_token(tf: &TokenFile, c: usize) -> usize {
    let mut p = c;
    while p > 0 {
        let prev = &tf.tokens[tf.code[p - 1]];
        match prev.text.as_str() {
            "const" | "unsafe" | "async" | "extern" | "pub" => p -= 1,
            ")" => {
                // Possibly the `(crate)` of `pub(crate)`.
                let open = tf.match_of(tf.code[p - 1]);
                let before_open = open.and_then(|o| {
                    tf.code
                        .iter()
                        .position(|&ti| ti == o)
                        .and_then(|cp| cp.checked_sub(1))
                        .map(|cp| &tf.tokens[tf.code[cp]])
                });
                if before_open.is_some_and(|t| t.text == "pub") {
                    let open = open.unwrap_or_default();
                    let open_cp = tf.code.iter().position(|&ti| ti == open).unwrap_or(p - 1);
                    p = open_cp.saturating_sub(1);
                } else {
                    break;
                }
            }
            _ if prev.kind == crate::lexer::TokenKind::Str => p -= 1, // extern "C"
            _ => break,
        }
    }
    p
}

/// Reads the analyzer annotations from the comment/attribute block
/// directly above the token at raw index `start_ti`.
fn annotations_above(toks: &[crate::lexer::Token], start_ti: usize) -> Annotations {
    let mut ann = Annotations::default();
    let mut j = start_ti;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_comment() {
            apply_annotation(&t.text, &mut ann);
            continue;
        }
        match t.text.as_str() {
            "]" => {
                // Skip backwards over an attribute group.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match toks[j].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                while j > 0 && (toks[j - 1].text == "#" || toks[j - 1].text == "!") {
                    j -= 1;
                }
            }
            _ => break,
        }
    }
    ann
}

/// Applies one `// lbq-check: <marker>` comment to `ann`.
fn apply_annotation(comment: &str, ann: &mut Annotations) {
    let Some(pos) = comment.find("lbq-check:") else {
        return;
    };
    let rest = comment[pos + "lbq-check:".len()..].trim_start();
    // Markers are word-delimited; `no-panic` must win over `no`.
    for (marker, flag) in [("no-panic", 2usize), ("hot", 0), ("cold", 1)] {
        if rest.starts_with(marker) {
            let after = rest[marker.len()..].chars().next();
            let boundary = after.is_none_or(|ch| !ch.is_ascii_alphanumeric() && ch != '-');
            if boundary {
                match flag {
                    0 => ann.hot = true,
                    1 => ann.cold = true,
                    _ => ann.no_panic = true,
                }
                return;
            }
        }
    }
}

/// True when the raw token at `ti` has a `#[test]` / `#[cfg(test)]`
/// style attribute directly above it (comments in between are fine).
fn has_test_attr(tf: &TokenFile, ti: usize) -> bool {
    let toks = &tf.tokens;
    let mut j = ti;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_comment() {
            continue;
        }
        if t.text == "]" {
            let close = j;
            let mut depth = 1usize;
            while j > 0 && depth > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            let inside = &toks[j..=close];
            if inside
                .iter()
                .any(|t| t.kind == crate::lexer::TokenKind::Ident && t.text == "test")
            {
                return true;
            }
            while j > 0 && (toks[j - 1].text == "#" || toks[j - 1].text == "!") {
                j -= 1;
            }
            continue;
        }
        // `pub`, qualifiers, `mod` keyword itself, …
        match t.text.as_str() {
            "pub" | "const" | "unsafe" | "async" | "extern" => continue,
            _ => return false,
        }
    }
    false
}

/// Parses an `impl` header starting at code position `c` (the `impl`
/// token): returns the owner context for the body plus the impl record.
fn parse_impl_header(tf: &TokenFile, c: usize, file: usize) -> (Option<Ctx>, Option<ImplItem>) {
    let line = tf.tokens[tf.code[c]].line;
    // Collect header code tokens up to the opening `{` (or `;`).
    let mut header: Vec<&crate::lexer::Token> = Vec::new();
    let mut p = c + 1;
    while p < tf.code.len() {
        let t = &tf.tokens[tf.code[p]];
        if t.text == "{" || t.text == ";" {
            break;
        }
        header.push(t);
        p += 1;
    }
    // Split at a top-level `for` (angle-depth 0): `impl Trait for Type`.
    let mut angle = 0i32;
    let mut for_pos = None;
    for (i, t) in header.iter().enumerate() {
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => angle -= 1,
            "for" if angle == 0 => {
                for_pos = Some(i);
                break;
            }
            _ => {}
        }
    }
    let type_segment = |toks: &[&crate::lexer::Token]| -> Option<String> {
        // Last ident before a generic arg list is the path's leaf:
        // `lbq_geom::ConvexPolygon<'a>` → `ConvexPolygon`.
        let mut angle = 0i32;
        let mut last = None;
        for t in toks {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ if angle == 0 && t.kind == crate::lexer::TokenKind::Ident => {
                    last = Some(t.text.clone());
                }
                _ => {}
            }
        }
        last
    };
    let (trait_name, self_ty) = match for_pos {
        Some(fp) => (type_segment(&header[..fp]), type_segment(&header[fp + 1..])),
        None => (None, type_segment(&header)),
    };
    let Some(ty) = self_ty else {
        return (None, None);
    };
    let item = ImplItem {
        ty: ty.clone(),
        trait_name,
        file,
        line,
    };
    (Some(Ctx::Owner(ty)), Some(item))
}

/// Parses `static NAME: Type = …;` at code position `c`; returns
/// `(name, flattened type, line)`.
fn parse_static(tf: &TokenFile, c: usize) -> Option<(String, String, u32)> {
    let mut p = c + 1;
    // `static mut` is impossible here (unsafe is denied) but cheap to skip.
    if tf
        .code
        .get(p)
        .is_some_and(|&ti| tf.tokens[ti].text == "mut")
    {
        p += 1;
    }
    let name_ti = *tf.code.get(p)?;
    let name_tok = &tf.tokens[name_ti];
    if name_tok.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    if !tf
        .code
        .get(p + 1)
        .is_some_and(|&ti| tf.tokens[ti].text == ":")
    {
        return None; // `static` as a lifetime bound position, not an item
    }
    let mut ty = String::new();
    let mut q = p + 2;
    while q < tf.code.len() {
        let t = &tf.tokens[tf.code[q]];
        if t.text == "=" || t.text == ";" {
            break;
        }
        ty.push_str(&t.text);
        q += 1;
    }
    Some((name_tok.text.clone(), ty, name_tok.line))
}

/// Collects atomic-typed fields from a `struct … { … }` at code
/// position `c`.
fn collect_atomic_fields(ix: &mut ItemIndex, tf: &TokenFile, c: usize, file: usize) {
    // Find the field group `{` before any `;` (unit/tuple structs have
    // no named fields).
    let mut p = c + 1;
    let mut open = None;
    while p < tf.code.len() {
        let t = &tf.tokens[tf.code[p]];
        match t.text.as_str() {
            "{" => {
                open = Some(tf.code[p]);
                break;
            }
            ";" | "(" => return,
            _ => p += 1,
        }
    }
    let Some(open) = open else { return };
    let Some(close) = tf.match_of(open) else {
        return;
    };
    // Walk `name : Type ,` sequences at depth 0 of the field group.
    let toks = &tf.tokens;
    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if matches!(t.text.as_str(), "(" | "[" | "{") {
            i = tf.match_of(i).map_or(i + 1, |m| m + 1);
            continue;
        }
        if t.kind == crate::lexer::TokenKind::Ident
            && i + 1 < close
            && next_code_text(tf, i) == Some(":")
        {
            // Field type runs to the `,` (or group end) at depth 0.
            let name = t.text.clone();
            let line = t.line;
            let mut j = i + 1;
            let mut is_atomic = false;
            while j < close {
                let tj = &toks[j];
                if tj.is_comment() {
                    j += 1;
                    continue;
                }
                if matches!(tj.text.as_str(), "(" | "[" | "{") {
                    j = tf.match_of(j).map_or(j + 1, |m| m + 1);
                    continue;
                }
                if tj.text == "," {
                    break;
                }
                if tj.kind == crate::lexer::TokenKind::Ident && tj.text.starts_with("Atomic") {
                    is_atomic = true;
                }
                j += 1;
            }
            if is_atomic {
                ix.atomics.push(AtomicField { name, file, line });
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// The next non-comment token text after raw index `i`.
fn next_code_text(tf: &TokenFile, i: usize) -> Option<&str> {
    tf.tokens[i + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.text.as_str())
}

/// Finds the body range of the `fn` at code position `c`: the first
/// `{ … }` group before a `;` at group depth 0, skipping the parameter
/// list and any bracketed return-type components.
fn fn_body_range(tf: &TokenFile, c: usize) -> Option<(usize, usize)> {
    let mut p = c + 1;
    while p < tf.code.len() {
        let ti = tf.code[p];
        let t = &tf.tokens[ti];
        match t.text.as_str() {
            ";" => return None, // trait method declaration
            "{" => {
                let close = tf.match_of(ti)?;
                return Some((ti + 1, close));
            }
            "(" | "[" => {
                let close = tf.match_of(ti)?;
                // Continue after the group.
                p = tf.code.iter().position(|&x| x == close)? + 1;
            }
            _ => p += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn index(path: &str, src: &str) -> ItemIndex {
        let tf = parse(src).expect("fixture parses");
        let mut ix = ItemIndex::default();
        ix.add_file(path, &tf);
        ix
    }

    const LIB: &str = "crates/core/src/x.rs";

    #[test]
    fn indexes_free_fns_methods_and_owners() {
        let ix = index(
            LIB,
            "fn free() {}\n\
             impl Foo { pub fn method(&self) -> u8 { 0 } }\n\
             impl Display for Bar { fn fmt(&self) {} }\n\
             trait T { fn decl(&self); fn dflt(&self) {} }",
        );
        let names: Vec<(&str, Option<&str>)> = ix
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            [
                ("free", None),
                ("method", Some("Foo")),
                ("fmt", Some("Bar")),
                ("decl", Some("T")),
                ("dflt", Some("T")),
            ]
        );
        assert!(ix.fns[3].body.is_none(), "trait decl has no body");
        assert!(ix.fns[4].body.is_some(), "default method has a body");
        assert_eq!(ix.impls.len(), 2);
        assert_eq!(ix.impls[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(ix.traits.len(), 1);
        assert_eq!(ix.traits[0].name, "T");
    }

    #[test]
    fn generic_impl_header_resolves_self_type() {
        let ix = index(
            LIB,
            "impl<T: Iterator<Item = u8>> Wrapper<T> { fn go(&self) {} }",
        );
        assert_eq!(ix.fns[0].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn annotations_are_read_from_the_comment_block() {
        let ix = index(
            LIB,
            "// lbq-check: hot — root of the steady-state path\n\
             #[inline]\n\
             pub fn a() {}\n\
             // lbq-check: cold — mutation path\n\
             fn b() {}\n\
             // lbq-check: no-panic\n\
             fn c() {}\n\
             // lbq-check: allow(float-eq) — not an annotation\n\
             fn d() {}",
        );
        assert!(ix.fns[0].ann.hot);
        assert!(!ix.fns[0].ann.cold);
        assert!(ix.fns[1].ann.cold);
        assert!(ix.fns[2].ann.no_panic);
        assert_eq!(ix.fns[3].ann, Annotations::default());
    }

    #[test]
    fn test_code_is_marked() {
        let ix = index(
            LIB,
            "fn lib_code() {}\n\
             #[test]\n\
             fn unit() {}\n\
             #[cfg(test)]\n\
             mod tests { fn helper() {} }",
        );
        assert!(!ix.fns[0].is_test);
        assert!(ix.fns[1].is_test, "#[test] fn");
        assert!(ix.fns[2].is_test, "fn inside #[cfg(test)] mod");
        let tix = index("crates/core/tests/t.rs", "fn anything() {}");
        assert!(tix.fns[0].is_test, "integration-test file");
    }

    #[test]
    fn statics_and_atomic_fields() {
        let ix = index(
            LIB,
            "static NEXT_ID: AtomicU64 = AtomicU64::new(0);\n\
             static NAME: &str = \"x\";\n\
             struct S { hits: AtomicU64, label: String, flag: std::sync::atomic::AtomicBool }\n\
             struct Unit;\n\
             struct Tup(u8);",
        );
        assert_eq!(ix.statics.len(), 2);
        assert_eq!(ix.statics[0].name, "NEXT_ID");
        assert!(ix.statics[0].ty.contains("Atomic"));
        let atomics: Vec<&str> = ix.atomics.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(atomics, ["NEXT_ID", "hits", "flag"]);
    }

    #[test]
    fn by_name_resolves_every_same_named_fn() {
        let ix = index(
            LIB,
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn other() {}",
        );
        assert_eq!(ix.by_name["go"].len(), 2);
        assert_eq!(ix.by_name["other"].len(), 1);
    }

    #[test]
    fn body_range_covers_exactly_the_braces() {
        let src = "fn f(a: [u8; 2]) -> [u8; 2] { a }";
        let tf = parse(src).expect("parses");
        let mut ix = ItemIndex::default();
        ix.add_file(LIB, &tf);
        let (s, e) = ix.fns[0].body.expect("has body");
        let inner: Vec<&str> = tf.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(inner, ["a"]);
    }
}
