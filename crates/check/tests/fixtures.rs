//! Golden-file corpus for every lint rule.
//!
//! Each `tests/fixtures/<rule>/{pos,neg}/` directory is a miniature
//! workspace (fixture `.rs` files are analyzed, never compiled) with an
//! `expected.txt` golden listing the findings the analyzer must produce
//! there — `<rule> <file>:<line>` per line, `#` comments and blank
//! lines ignored, empty meaning "clean". The `pos` case pins that the
//! rule still fires on its canonical trigger; the `neg` case pins the
//! boundary that keeps it quiet (crate scoping, a cold barrier, a
//! justified allow, a dropped guard).
//!
//! The main workspace walk skips directories named `fixtures`, so these
//! trees are invisible to `lbq-check` runs on the real repo.

use std::fs;
use std::path::{Path, PathBuf};

fn sorted_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    out
}

#[test]
fn fixture_corpus_matches_goldens() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut cases = 0usize;
    let mut rules_seen: Vec<String> = Vec::new();
    for rule_dir in sorted_dirs(&root) {
        let rule = rule_dir
            .file_name()
            .expect("rule dir name")
            .to_string_lossy()
            .into_owned();
        assert!(
            lbq_check::RULE_NAMES.contains(&rule.as_str()),
            "fixture dir {rule} is not a known rule"
        );
        rules_seen.push(rule.clone());
        let case_dirs = sorted_dirs(&rule_dir);
        let names: Vec<_> = case_dirs
            .iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert_eq!(names, ["neg", "pos"], "{rule} needs exactly pos and neg");
        for case in case_dirs {
            let golden = case.join("expected.txt");
            let mut want: Vec<String> = fs::read_to_string(&golden)
                .unwrap_or_else(|e| panic!("read {}: {e}", golden.display()))
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect();
            want.sort();
            let diags = lbq_check::check_workspace(&case)
                .unwrap_or_else(|e| panic!("analyze {}: {e}", case.display()));
            let mut got: Vec<String> = diags
                .iter()
                .map(|d| format!("{} {}:{}", d.rule, d.file, d.line))
                .collect();
            got.sort();
            assert_eq!(got, want, "case {}", case.display());
            // A pos golden must exercise the rule the directory names.
            if case.ends_with("pos") {
                assert!(
                    diags.iter().any(|d| d.rule == rule),
                    "pos case of {rule} produced no {rule} finding: {diags:?}"
                );
            }
            cases += 1;
        }
    }
    assert_eq!(
        rules_seen.len(),
        lbq_check::RULE_NAMES.len(),
        "every rule needs a fixture pair; missing: {:?}",
        lbq_check::RULE_NAMES
            .iter()
            .filter(|r| !rules_seen.iter().any(|s| s == *r))
            .collect::<Vec<_>>()
    );
    assert_eq!(cases, 2 * lbq_check::RULE_NAMES.len());
}
