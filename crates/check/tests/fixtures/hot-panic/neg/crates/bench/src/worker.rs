//! Fixture: hot-panic negative case.

// lbq-check: no-panic — the loop must outlive any single bad job
fn drain(jobs: &[u8]) -> u8 {
    step(jobs)
}

fn step(jobs: &[u8]) -> u8 {
    jobs.first().copied().unwrap_or(0)
}
