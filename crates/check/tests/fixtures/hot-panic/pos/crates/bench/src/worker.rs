//! Fixture: hot-panic positive case.

// lbq-check: no-panic — the loop must outlive any single bad job
fn drain(jobs: &[u8]) -> u8 {
    step(jobs)
}

fn step(jobs: &[u8]) -> u8 {
    jobs[0]
}
