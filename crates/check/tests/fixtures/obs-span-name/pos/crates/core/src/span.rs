//! Fixture: obs-span-name positive case.

fn traced(name: &str) {
    let _s = lbq_obs::span("Query_KNN");
    let _e = lbq_obs::span(name);
    let _h = lbq_obs::heatmap("HotTiles");
    lbq_obs::snapshot_field(name, 1u64);
}
