//! Fixture: obs-span-name negative case.

fn traced() {
    let _s = lbq_obs::span("query-knn");
    let _h = lbq_obs::heatmap("serve-tile-heat");
    lbq_obs::snapshot_field("serve-config-workers", 4u64);
}
