//! Fixture: obs-span-name negative case.

fn traced() {
    let _s = lbq_obs::span("query-knn");
}
