//! Fixture: no-unwrap-core positive case.

fn first(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}
