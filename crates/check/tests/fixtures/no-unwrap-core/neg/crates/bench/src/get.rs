//! Fixture: no-unwrap-core negative case — bench is not a panic-free crate.

fn first(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}
