//! Fixture: hot-alloc positive case.

/// Query entry point: `_in` in rtree lib code seeds the hot set.
pub fn probe_in(depth: usize) -> usize {
    descend(depth)
}

fn descend(depth: usize) -> usize {
    let names: Vec<usize> = Vec::with_capacity(depth);
    names.len() + depth
}
