//! Fixture: hot-alloc negative case — the cold barrier stops propagation.

/// Query entry point; the setup helper it calls is cold.
pub fn probe_in(depth: usize) -> usize {
    warm(depth)
}

// lbq-check: cold — setup-time warm-up, never on the steady-state query path
fn warm(depth: usize) -> usize {
    let names: Vec<usize> = Vec::with_capacity(depth);
    names.len()
}
