//! Fixture: float-eq negative case.

/// Tolerance-based comparison keeps the rule quiet.
pub fn same(a: f64, b: f64) -> bool {
    (a - b).abs() < 0.5
}
