//! Fixture: float-eq positive case.

/// Exact float comparison — the thing the rule exists to catch.
pub fn same(a: f64, b: f64) -> bool {
    a == 1.0 && b != 2.5
}
