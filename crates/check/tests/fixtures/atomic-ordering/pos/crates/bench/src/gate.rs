//! Fixture: atomic-ordering positive case.

struct Gate {
    ready: AtomicBool,
}

impl Gate {
    fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    fn peek(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }
}
