//! Fixture: atomic-ordering negative case — a justified allow silences the site.

struct Gate {
    ready: AtomicBool,
}

impl Gate {
    fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    fn peek(&self) -> bool {
        // lbq-check: allow(atomic-ordering) — monitoring probe; staleness is acceptable
        self.ready.load(Ordering::Relaxed)
    }
}
