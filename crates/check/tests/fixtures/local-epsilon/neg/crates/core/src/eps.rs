//! Fixture: local-epsilon negative case.

/// A coarse threshold outside the epsilon range is not a tolerance.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-3
}
