//! Fixture: local-epsilon positive case.

/// A hand-rolled tolerance instead of the shared lbq_geom constants.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
