//! Fixture: pub-doc negative case.

/// Documented function.
pub fn covered() {}

/// Documented struct.
pub struct Covered {
    x: u8,
}

pub(crate) fn restricted() {}
