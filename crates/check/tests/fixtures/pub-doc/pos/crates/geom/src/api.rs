//! Fixture: pub-doc positive case.

/// Documented, so the module doc above cannot mask the items below.
pub fn covered() {}

pub fn naked() {}

pub struct Bare {
    x: u8,
}
