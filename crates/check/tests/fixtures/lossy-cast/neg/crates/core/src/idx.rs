//! Fixture: lossy-cast negative case — the rule is scoped to crates/rtree.

fn to_id(i: usize) -> u32 {
    i as u32
}
