//! Fixture: lossy-cast positive case.

fn to_id(i: usize) -> u32 {
    i as u32
}
