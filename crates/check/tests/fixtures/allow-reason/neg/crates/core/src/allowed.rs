//! Fixture: allow-reason negative case.

/// A justified escape hatch silences both rules.
pub fn close(a: f64, b: f64) -> bool {
    // lbq-check: allow(local-epsilon) — deliberate sub-EPS guard, not a tolerance
    (a - b).abs() < 1e-9
}
