//! Fixture: allow-reason positive case.

/// A reasonless escape hatch — the directive itself is the finding.
pub fn close(a: f64, b: f64) -> bool {
    // lbq-check: allow(local-epsilon)
    (a - b).abs() < 1e-9
}
