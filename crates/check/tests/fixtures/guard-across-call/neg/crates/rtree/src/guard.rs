//! Fixture: guard-across-call negative case — dropping the guard first is fine.

/// Query entry point (hot root).
pub fn walk_in(depth: usize) -> usize {
    depth
}

fn good(m: &std::sync::Mutex<usize>) -> usize {
    let g = m.lock();
    drop(g);
    walk_in(3)
}
