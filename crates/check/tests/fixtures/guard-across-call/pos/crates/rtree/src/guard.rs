//! Fixture: guard-across-call positive case.

/// Query entry point (hot root).
pub fn walk_in(depth: usize) -> usize {
    depth
}

fn bad(m: &std::sync::Mutex<usize>) -> usize {
    let g = m.lock();
    walk_in(3)
}
