//! Exporter schema round-trip: `lbq_obs::render_snapshot` output must
//! parse with the workspace's own hand-rolled JSON parser
//! ([`lbq_bench::jsonv`]) and carry the versioned frame the snapshot
//! consumers (the `pr7_bench --serve-smoke` validator, offline tooling)
//! key on. Lives in `lbq-bench` — the obs crate cannot depend on the
//! parser without a cycle — and in its own process because it arms the
//! process-global recorder.

use lbq_bench::jsonv::{self, Json};
use lbq_obs::{QueryEvent, QueryKind, RecorderConfig, StageNanos};

#[test]
fn snapshot_round_trips_through_jsonv() {
    // Populate every line type: metrics, a heatmap, recorder + a
    // guaranteed slow capture (floor 0, multiplier 1, tiny warmup).
    lbq_obs::counter("export-rt-counter").add(3);
    lbq_obs::gauge("export-rt-gauge").set(17);
    let h = lbq_obs::histogram("export-rt-latency");
    for i in 0..300u64 {
        h.record_ns(100 + i);
    }
    let heat = lbq_obs::heatmap("export-rt-heat");
    heat.record(5, 1_000);
    heat.record(4095, 2_000);
    lbq_obs::snapshot_field("export-rt-field", 42u64);
    let rec = lbq_obs::init_recorder(RecorderConfig {
        capacity: 64,
        slow_min_samples: 8,
        slow_multiplier: 1,
        slow_floor_ns: 0,
    });
    let mut ev = QueryEvent {
        query_id: 0,
        kind: QueryKind::Knn,
        k: 8,
        tier: lbq_obs::CacheTier::Tree,
        tile: 5,
        latency_ns: 1_000,
        node_accesses: 4,
        page_accesses: 1,
        stages: StageNanos::default(),
    };
    for i in 0..32 {
        ev.query_id = i;
        ev.latency_ns = 1_000;
        rec.record(&ev);
    }
    // The slow outlier: far above the rolling p99 of the 1µs crowd.
    ev.query_id = 99;
    ev.latency_ns = 50_000_000;
    rec.record(&ev);
    assert!(rec.stats().slow_captured >= 1, "outlier must be captured");

    let text = lbq_obs::render_snapshot(7);
    let mut saw = (false, false, false, false, false); // metric, heatmap, recorder, slow, end
    let mut lines = 0u64;
    for line in text.lines() {
        lines += 1;
        let v = jsonv::parse(line).unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        match v.get("type").and_then(Json::as_str) {
            Some("snapshot") => {
                assert_eq!(
                    v.get("version").and_then(Json::as_f64),
                    Some(lbq_obs::SNAPSHOT_VERSION as f64)
                );
                assert_eq!(v.get("seq").and_then(Json::as_f64), Some(7.0));
                let fields = v.get("fields").expect("header fields object");
                assert_eq!(
                    fields.get("export-rt-field").and_then(Json::as_f64),
                    Some(42.0)
                );
            }
            Some("metric") => {
                saw.0 = true;
                let name = v.get("name").and_then(Json::as_str).expect("metric name");
                match v.get("kind").and_then(Json::as_str) {
                    Some("counter") | Some("gauge") => {
                        assert!(v.get("value").and_then(Json::as_f64).is_some(), "{name}");
                    }
                    Some("histogram") => {
                        for f in ["count", "p50-ns", "p95-ns", "p99-ns", "mean-ns"] {
                            assert!(
                                v.get(f).and_then(Json::as_f64).is_some(),
                                "histogram {name} missing {f}"
                            );
                        }
                    }
                    other => panic!("metric {name} has unknown kind {other:?}"),
                }
            }
            Some("heatmap") => {
                if v.get("name").and_then(Json::as_str) == Some("export-rt-heat") {
                    saw.1 = true;
                    assert_eq!(v.get("tiles-total").and_then(Json::as_f64), Some(2.0));
                    let tiles = v.get("tiles").and_then(Json::as_arr).expect("tiles");
                    // [tile, hits, total-ns] triples, tile-ascending.
                    assert_eq!(tiles.len(), 2);
                    let first = tiles[0].as_arr().expect("triple");
                    assert_eq!(first[0].as_f64(), Some(5.0));
                    assert_eq!(first[1].as_f64(), Some(1.0));
                    assert_eq!(first[2].as_f64(), Some(1_000.0));
                }
            }
            Some("recorder") => {
                saw.2 = true;
                for f in ["capacity", "total", "slow-captured", "threshold-ns"] {
                    assert!(v.get(f).and_then(Json::as_f64).is_some(), "recorder {f}");
                }
            }
            Some("slow-query") => {
                saw.3 = true;
                assert_eq!(v.get("query-id").and_then(Json::as_f64), Some(99.0));
                assert_eq!(v.get("latency-ns").and_then(Json::as_f64), Some(5e7));
                assert!(v.get("stages").is_some(), "slow line carries stages");
            }
            Some("snapshot-end") => {
                saw.4 = true;
                assert_eq!(v.get("seq").and_then(Json::as_f64), Some(7.0));
                assert_eq!(
                    v.get("lines").and_then(Json::as_f64),
                    Some(lines as f64),
                    "trailer line count must match actual lines"
                );
            }
            other => panic!("unknown line type {other:?} in {line:?}"),
        }
    }
    assert!(saw.0, "no metric lines");
    assert!(saw.1, "no heatmap line for export-rt-heat");
    assert!(saw.2, "no recorder line");
    assert!(saw.3, "no slow-query line");
    assert!(saw.4, "no snapshot-end trailer");
}
