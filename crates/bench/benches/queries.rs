//! Micro-benchmarks: server-side latency of every query type the
//! paper's server executes, at N = 100k uniform points with the paper's
//! page geometry.
//!
//! These complement the NA/PA tables (the paper's cost metric is I/O;
//! this is the CPU side of the same operations). Formerly criterion;
//! now a plain `harness = false` main over
//! [`lbq_bench::microbench::bench`] so the workspace builds offline.
//!
//! Run with `cargo bench -p lbq-bench --bench queries`.

use lbq_bench::microbench::bench;
use lbq_core::{retrieve_influence_set, window_with_validity};
use lbq_data::{paper_query_points, uniform_unit};
use lbq_geom::{Point, Rect, Vec2};
use lbq_rtree::{Item, RTree, RTreeConfig, TpBound};

fn setup(n: usize) -> (RTree, Rect, Vec<Point>) {
    let data = uniform_unit(n, 2003);
    let tree = RTree::bulk_load(data.items.clone(), RTreeConfig::paper());
    let queries = paper_query_points(&data, 7);
    (tree, data.universe, queries)
}

fn bench_knn() {
    let (tree, _, queries) = setup(100_000);
    for k in [1usize, 10, 100] {
        let mut i = 0;
        bench(&format!("knn/best_first/{k}"), || {
            i = (i + 1) % queries.len();
            tree.knn(queries[i], k)
        });
        let mut i = 0;
        bench(&format!("knn/depth_first/{k}"), || {
            i = (i + 1) % queries.len();
            tree.knn_depth_first(queries[i], k)
        });
    }
}

fn bench_tpnn_bounds() {
    let (tree, _, queries) = setup(100_000);
    let inners: Vec<(Point, Vec<Item>)> = queries
        .iter()
        .take(64)
        .map(|&q| (q, tree.knn(q, 1).into_iter().map(|(i, _)| i).collect()))
        .collect();
    for (name, bound) in [("loose", TpBound::Loose), ("exact", TpBound::Exact)] {
        let mut i = 0;
        bench(&format!("tpnn_bound/{name}"), || {
            i = (i + 1) % inners.len();
            let (q, inner) = &inners[i];
            tree.tp_knn_with_bound(*q, Vec2::new(0.6, 0.8), 0.1, inner, bound)
        });
    }
}

fn bench_location_based_nn() {
    for n in [10_000usize, 100_000] {
        let (tree, universe, queries) = setup(n);
        for k in [1usize, 10] {
            let mut i = 0;
            bench(&format!("location_based_nn/n{n}/{k}"), || {
                i = (i + 1) % queries.len();
                let q = queries[i];
                let inner: Vec<Item> = tree.knn(q, k).into_iter().map(|(it, _)| it).collect();
                retrieve_influence_set(&tree, q, &inner, universe)
            });
        }
    }
}

fn bench_location_based_window() {
    let (tree, universe, queries) = setup(100_000);
    for frac in [0.0001f64, 0.001, 0.01] {
        let h = frac.sqrt() / 2.0;
        let mut i = 0;
        bench(&format!("location_based_window/qs{frac}"), || {
            i = (i + 1) % queries.len();
            window_with_validity(&tree, queries[i], h, h, universe)
        });
    }
}

fn bench_client_check() {
    // The client-side validity check the paper sizes its wire format
    // around: a handful of distance comparisons.
    let (tree, universe, queries) = setup(100_000);
    let q = queries[0];
    let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
    let (validity, _) = retrieve_influence_set(&tree, q, &inner, universe);
    let probe = Point::new(q.x + 1e-4, q.y - 1e-4);
    bench("client_validity_check", || {
        validity.contains(std::hint::black_box(probe))
    });
}

fn main() {
    // `LBQ_TRACE=text|jsonl` streams every query span to stderr.
    lbq_obs::install_from_env();
    bench_knn();
    bench_tpnn_bounds();
    bench_location_based_nn();
    bench_location_based_window();
    bench_client_check();
    // Global counters accumulated by the rtree probes over the run.
    println!();
    lbq_obs::print_metrics("bench totals");
}
