//! Criterion micro-benchmarks: server-side latency of every query type
//! the paper's server executes, at N = 100k uniform points with the
//! paper's page geometry.
//!
//! These complement the NA/PA tables (the paper's cost metric is I/O;
//! this is the CPU side of the same operations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbq_core::{retrieve_influence_set, window_with_validity};
use lbq_data::{paper_query_points, uniform_unit};
use lbq_geom::{Point, Rect, Vec2};
use lbq_rtree::{Item, RTree, RTreeConfig, TpBound};

fn setup(n: usize) -> (RTree, Rect, Vec<Point>) {
    let data = uniform_unit(n, 2003);
    let tree = RTree::bulk_load(data.items.clone(), RTreeConfig::paper());
    let queries = paper_query_points(&data, 7);
    (tree, data.universe, queries)
}

fn bench_knn(c: &mut Criterion) {
    let (tree, _, queries) = setup(100_000);
    let mut group = c.benchmark_group("knn");
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("best_first", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                tree.knn(queries[i], k)
            });
        });
        group.bench_with_input(BenchmarkId::new("depth_first", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                tree.knn_depth_first(queries[i], k)
            });
        });
    }
    group.finish();
}

fn bench_tpnn_bounds(c: &mut Criterion) {
    let (tree, _, queries) = setup(100_000);
    let inners: Vec<(Point, Vec<Item>)> = queries
        .iter()
        .take(64)
        .map(|&q| (q, tree.knn(q, 1).into_iter().map(|(i, _)| i).collect()))
        .collect();
    let mut group = c.benchmark_group("tpnn_bound");
    for (name, bound) in [("loose", TpBound::Loose), ("exact", TpBound::Exact)] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % inners.len();
                let (q, inner) = &inners[i];
                tree.tp_knn_with_bound(*q, Vec2::new(0.6, 0.8), 0.1, inner, bound)
            });
        });
    }
    group.finish();
}

fn bench_location_based_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("location_based_nn");
    for n in [10_000usize, 100_000] {
        let (tree, universe, queries) = setup(n);
        for k in [1usize, 10] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), k),
                &k,
                |b, &k| {
                    let mut i = 0;
                    b.iter(|| {
                        i = (i + 1) % queries.len();
                        let q = queries[i];
                        let inner: Vec<Item> =
                            tree.knn(q, k).into_iter().map(|(it, _)| it).collect();
                        retrieve_influence_set(&tree, q, &inner, universe)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_location_based_window(c: &mut Criterion) {
    let (tree, universe, queries) = setup(100_000);
    let mut group = c.benchmark_group("location_based_window");
    for frac in [0.0001f64, 0.001, 0.01] {
        let h = frac.sqrt() / 2.0;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("qs{frac}")),
            &h,
            |b, &h| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % queries.len();
                    window_with_validity(&tree, queries[i], h, h, universe)
                });
            },
        );
    }
    group.finish();
}

fn bench_client_check(c: &mut Criterion) {
    // The client-side validity check the paper sizes its wire format
    // around: a handful of distance comparisons.
    let (tree, universe, queries) = setup(100_000);
    let q = queries[0];
    let inner: Vec<Item> = tree.knn(q, 1).into_iter().map(|(i, _)| i).collect();
    let (validity, _) = retrieve_influence_set(&tree, q, &inner, universe);
    let probe = Point::new(q.x + 1e-4, q.y - 1e-4);
    c.bench_function("client_validity_check", |b| {
        b.iter(|| validity.contains(std::hint::black_box(probe)))
    });
}

criterion_group!(
    benches,
    bench_knn,
    bench_tpnn_bounds,
    bench_location_based_nn,
    bench_location_based_window,
    bench_client_check
);
criterion_main!(benches);
