//! Criterion micro-benchmarks for the substrates: R\*-tree construction
//! and maintenance, Delaunay/Voronoi construction (the `[ZL01]`
//! precomputation the paper argues against), and Minskew builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lbq_data::uniform_unit;
use lbq_hist::Minskew;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_voronoi::VoronoiDiagram;

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let data = uniform_unit(n, 5);
        group.bench_with_input(BenchmarkId::new("bulk_str", n), &n, |b, _| {
            b.iter(|| RTree::bulk_load(data.items.clone(), RTreeConfig::paper()))
        });
    }
    // One-by-one R* insertion (small n — it is O(n log n) with heavy
    // constants, which is exactly why bulk loading exists).
    let data = uniform_unit(10_000, 5);
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = RTree::new(RTreeConfig::paper());
            for &item in &data.items {
                t.insert(item);
            }
            t
        })
    });
    group.finish();
}

fn bench_voronoi_precompute(c: &mut Criterion) {
    // The [ZL01] server-side precomputation; compare against
    // `location_based_nn` in queries.rs to see the paper's point: one
    // diagram build pays for a great many on-the-fly validity regions.
    let mut group = c.benchmark_group("voronoi_precompute");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let data = uniform_unit(n, 9);
        let pts = data.points();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| VoronoiDiagram::build(&pts, data.universe))
        });
    }
    group.finish();
}

fn bench_minskew_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("minskew_build");
    group.sample_size(10);
    let data = uniform_unit(100_000, 4);
    let pts = data.points();
    group.bench_function("100k_500buckets", |b| {
        b.iter(|| Minskew::paper(&pts, data.universe))
    });
    group.finish();
}

criterion_group!(benches, bench_tree_build, bench_voronoi_precompute, bench_minskew_build);
criterion_main!(benches);
