//! Micro-benchmarks for the substrates: R\*-tree construction and
//! maintenance, Delaunay/Voronoi construction (the `[ZL01]`
//! precomputation the paper argues against), and Minskew builds.
//!
//! Formerly criterion; now a plain `harness = false` main over
//! [`lbq_bench::microbench::bench`] so the workspace builds offline.
//!
//! Run with `cargo bench -p lbq-bench --bench substrates`.

use lbq_bench::microbench::bench;
use lbq_data::uniform_unit;
use lbq_hist::Minskew;
use lbq_rtree::{RTree, RTreeConfig};
use lbq_voronoi::VoronoiDiagram;

fn bench_tree_build() {
    for n in [10_000usize, 100_000] {
        let data = uniform_unit(n, 5);
        bench(&format!("rtree_build/bulk_str/{n}"), || {
            RTree::bulk_load(data.items.clone(), RTreeConfig::paper())
        });
    }
    // One-by-one R* insertion (small n — it is O(n log n) with heavy
    // constants, which is exactly why bulk loading exists).
    let data = uniform_unit(10_000, 5);
    bench("rtree_build/insert_10k", || {
        let mut t = RTree::new(RTreeConfig::paper());
        for &item in &data.items {
            t.insert(item);
        }
        t
    });
}

fn bench_voronoi_precompute() {
    // The [ZL01] server-side precomputation; compare against
    // `location_based_nn` in queries.rs to see the paper's point: one
    // diagram build pays for a great many on-the-fly validity regions.
    for n in [1_000usize, 5_000] {
        let data = uniform_unit(n, 9);
        let pts = data.points();
        bench(&format!("voronoi_precompute/{n}"), || {
            VoronoiDiagram::build(&pts, data.universe)
        });
    }
}

fn bench_minskew_build() {
    let data = uniform_unit(100_000, 4);
    let pts = data.points();
    bench("minskew_build/100k_500buckets", || {
        Minskew::paper(&pts, data.universe)
    });
}

fn main() {
    bench_tree_build();
    bench_voronoi_precompute();
    bench_minskew_build();
}
