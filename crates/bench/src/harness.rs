//! Experiment plumbing: configuration and result tables.

use std::fmt;

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Queries per data point in a series (the paper uses 500).
    pub queries: usize,
    /// Multiplier on dataset cardinalities (1.0 = paper scale).
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
}

impl ExpConfig {
    /// Full paper-scale configuration.
    pub fn paper() -> Self {
        ExpConfig {
            queries: 500,
            scale: 1.0,
            seed: 2003,
        }
    }

    /// ~10× cheaper smoke-run configuration.
    pub fn quick() -> Self {
        ExpConfig {
            queries: 100,
            scale: 0.1,
            seed: 2003,
        }
    }

    /// The paper's uniform-data cardinality sweep (10k…1000k), scaled.
    /// Clamping at small scales can collide values; duplicates are
    /// removed so sweeps stay strictly increasing.
    pub fn cardinalities(&self) -> Vec<usize> {
        let mut v: Vec<usize> = [10_000, 30_000, 100_000, 300_000, 1_000_000]
            .into_iter()
            .map(|n| ((n as f64 * self.scale) as usize).max(1_000))
            .collect();
        v.dedup();
        v
    }

    /// The paper's k sweep.
    pub fn ks(&self) -> Vec<usize> {
        vec![1, 3, 10, 30, 100]
    }

    /// The paper's window-size sweep as fractions of the universe
    /// (0.01%…10%).
    pub fn window_fractions(&self) -> Vec<f64> {
        vec![0.0001, 0.001, 0.01, 0.1]
    }

    /// The paper's absolute window areas for real datasets, in km²
    /// (100…10,000).
    pub fn window_km2(&self) -> Vec<f64> {
        vec![100.0, 300.0, 1_000.0, 3_000.0, 10_000.0]
    }

    /// Cardinality of the GR-like dataset (23,268 at full scale).
    pub fn gr_n(&self) -> usize {
        ((23_268.0 * self.scale) as usize).max(2_000)
    }

    /// Cardinality of the NA-like dataset (569,120 at full scale).
    pub fn na_n(&self) -> usize {
        ((569_120.0 * self.scale) as usize).max(10_000)
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A result table: header row plus numeric rows, printable as both an
/// aligned table and CSV.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure id, e.g. `"fig22a"`.
    pub id: String,
    /// What the paper's figure shows.
    pub caption: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, caption: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            caption: caption.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(row);
    }

    /// Column index by name (panics when absent — tables are
    /// harness-internal).
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column {name} in {}", self.id))
    }

    /// The values of one column.
    pub fn column(&self, name: &str) -> Vec<f64> {
        let i = self.col(name);
        self.rows.iter().map(|r| r[i]).collect()
    }

    /// Renders as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut s = self.columns.join(",");
        s.push('\n');
        for r in &self.rows {
            s.push_str(
                &r.iter()
                    .map(|v| format_num(*v))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            s.push('\n');
        }
        s
    }
}

/// Compact numeric formatting: scientific for very small/large values,
/// plain otherwise.
pub fn format_num(v: f64) -> String {
    // lbq-check: allow(float-eq) — formatting dispatch, exact zero only
    if v == 0.0 {
        "0".into()
    } else if v.abs() < 1e-3 || v.abs() >= 1e7 {
        format!("{v:.3e}")
    // lbq-check: allow(float-eq) — fract() is exact for integers
    } else if v.fract() == 0.0 && v.abs() < 1e7 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.caption)?;
        let cells: Vec<Vec<String>> = std::iter::once(self.columns.clone())
            .chain(
                self.rows
                    .iter()
                    .map(|r| r.iter().map(|v| format_num(*v)).collect()),
            )
            .collect();
        let widths: Vec<usize> = (0..self.columns.len())
            .map(|c| cells.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for (i, row) in cells.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}"))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
            if i == 0 {
                writeln!(
                    f,
                    "  {}",
                    widths
                        .iter()
                        .map(|w| "-".repeat(*w))
                        .collect::<Vec<_>>()
                        .join("  ")
                )?;
            }
        }
        Ok(())
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("figX", "test", &["n", "actual", "estimated"]);
        t.push(vec![10_000.0, 1.3e-4, 1.28e-4]);
        t.push(vec![100_000.0, 1.3e-5, 1.28e-5]);
        assert_eq!(t.column("n"), vec![10_000.0, 100_000.0]);
        let csv = t.to_csv();
        assert!(csv.starts_with("n,actual,estimated\n"));
        assert_eq!(csv.lines().count(), 3);
        let shown = format!("{t}");
        assert!(shown.contains("figX"));
        assert!(shown.contains("estimated"));
    }

    #[test]
    #[should_panic]
    fn row_length_checked() {
        let mut t = Table::new("x", "c", &["a", "b"]);
        t.push(vec![1.0]);
    }

    #[test]
    fn config_scaling() {
        let q = ExpConfig::quick();
        assert!(q.cardinalities()[4] <= 100_000);
        assert!(q.gr_n() >= 2_000);
        let p = ExpConfig::paper();
        assert_eq!(p.cardinalities()[4], 1_000_000);
        assert_eq!(p.na_n(), 569_120);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(42.0), "42");
        assert_eq!(format_num(0.12345), "0.1235");
        assert!(format_num(1.3e-6).contains('e'));
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
