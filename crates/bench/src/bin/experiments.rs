//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! experiments --all [--quick] [--csv]
//! experiments --fig 22a [--fig 29 ...] [--quick] [--csv]
//! experiments --list
//! ```
//!
//! Figure ids match the paper (22a, 22b, 23, …, 35) plus the extras
//! `savings`, `ablation-tpnn`, `ablation-buffer`. `--quick` runs at
//! ~1/10 scale for smoke tests; EXPERIMENTS.md records full-scale runs.

use lbq_bench::figures::{all_figure_ids, run_all, run_figure};
use lbq_bench::harness::ExpConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figs: Vec<String> = Vec::new();
    let mut quick = false;
    let mut csv = false;
    let mut all = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => all = true,
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--list" => {
                for id in all_figure_ids() {
                    println!("{id}");
                }
                return;
            }
            "--fig" => {
                i += 1;
                figs.push(
                    args.get(i)
                        .unwrap_or_else(|| die("--fig needs an id"))
                        .clone(),
                );
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::paper()
    };
    if all {
        // The shared-sweep path: Figs. 23/26/28 and 30/32/35 reuse one
        // expensive run per dataset.
        eprintln!("# lbq experiments — full evaluation (shared sweeps)");
        let start = std::time::Instant::now();
        for t in run_all(&cfg) {
            if csv {
                println!("# {} — {}", t.id, t.caption);
                print!("{}", t.to_csv());
            } else {
                println!("{t}");
            }
        }
        eprintln!("# all figures done in {:.1?}", start.elapsed());
        return;
    }
    if figs.is_empty() {
        die("nothing to do: pass --all, --fig <id> or --list");
    }
    let known = all_figure_ids();
    for f in &figs {
        if !known.contains(&f.as_str()) {
            die(&format!("unknown figure id {f}; try --list"));
        }
    }

    eprintln!(
        "# lbq experiments — {} figure(s), {} queries per point, scale {}",
        figs.len(),
        cfg.queries,
        cfg.scale
    );
    for f in &figs {
        let start = std::time::Instant::now();
        let tables = run_figure(f, &cfg);
        let elapsed = start.elapsed();
        for t in &tables {
            if csv {
                println!("# {} — {}", t.id, t.caption);
                print!("{}", t.to_csv());
            } else {
                println!("{t}");
            }
        }
        eprintln!("# fig {f} done in {elapsed:.1?}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
